//! The small-step dynamic semantics of paper Fig. 6: configurations
//! `⟨𝒳, TT, DT, E, e, S⟩`, the derivation cache with Definition 1
//! invalidation and Definition 2 upgrading, and the blame rules used by the
//! soundness theorem.

use crate::syntax::{Cls, Expr, MTy, Mth, PreMethod, Val, VarId};
use crate::typing::{check_method_body, type_check, Deriv, TEnv, TypeTable};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// One-hole context frames (the grammar `C` of Fig. 4, as a path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtxFrame {
    /// `x = C`
    AssignR(VarId),
    /// `C; e`
    SeqL(Rc<Expr>),
    /// `C.m(e)`
    CallRecv(Mth, Rc<Expr>),
    /// `v.m(C)`
    CallArg(Val, Mth),
    /// `if C then e else e`
    IfCond(Rc<Expr>, Rc<Expr>),
}

/// A context is a path of frames from the root to the hole.
pub type Ctx = Vec<CtxFrame>;

/// Rebuilds `C[e]`.
pub fn plug(ctx: &Ctx, e: Expr) -> Expr {
    let mut out = e;
    for frame in ctx.iter().rev() {
        out = match frame {
            CtxFrame::AssignR(x) => Expr::Assign(*x, Rc::new(out)),
            CtxFrame::SeqL(e2) => Expr::Seq(Rc::new(out), e2.clone()),
            CtxFrame::CallRecv(m, a) => Expr::Call(Rc::new(out), *m, a.clone()),
            CtxFrame::CallArg(v, m) => Expr::Call(Rc::new(v.to_expr()), *m, Rc::new(out)),
            CtxFrame::IfCond(t, f) => Expr::If(Rc::new(out), t.clone(), f.clone()),
        };
    }
    out
}

/// Decomposes a non-value expression into `(C, redex)` — the unique
/// decomposition of (EContext).
pub fn decompose(e: &Expr) -> Option<(Ctx, Expr)> {
    if e.is_value() {
        return None;
    }
    let mut ctx = Ctx::new();
    let mut cur = e.clone();
    loop {
        match cur {
            Expr::Assign(x, ref rhs) if !rhs.is_value() => {
                ctx.push(CtxFrame::AssignR(x));
                cur = rhs.as_ref().clone();
            }
            Expr::Seq(ref l, ref r) if !l.is_value() => {
                ctx.push(CtxFrame::SeqL(r.clone()));
                cur = l.as_ref().clone();
            }
            Expr::If(ref c, ref t, ref f) if !c.is_value() => {
                ctx.push(CtxFrame::IfCond(t.clone(), f.clone()));
                cur = c.as_ref().clone();
            }
            Expr::Call(ref r, m, ref a) if !r.is_value() => {
                ctx.push(CtxFrame::CallRecv(m, a.clone()));
                cur = r.as_ref().clone();
            }
            Expr::Call(ref r, m, ref a) if !a.is_value() => {
                let v = r.as_value().expect("receiver is a value here");
                ctx.push(CtxFrame::CallArg(v, m));
                cur = a.as_ref().clone();
            }
            redex => return Some((ctx, redex)),
        }
    }
}

/// The dynamic class table `DT`.
#[derive(Debug, Clone, Default)]
pub struct DynTable {
    entries: BTreeMap<(Cls, Mth), PreMethod>,
}

impl DynTable {
    /// `DT[A.m ↦ λx.e]`.
    pub fn insert(&mut self, c: Cls, m: Mth, pm: PreMethod) {
        self.entries.insert((c, m), pm);
    }

    /// `DT(A.m)`.
    pub fn get(&self, c: Cls, m: Mth) -> Option<&PreMethod> {
        self.entries.get(&(c, m))
    }
}

/// A cache entry `(DM, D≤)` plus the data Definition 7 (cache consistency)
/// relates it to: the premethod and method type it was checked against and
/// the type table stored inside the derivation.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    pub deriv: Deriv,
    pub premethod: PreMethod,
    pub mty: MTy,
    /// The `TT` captured in the derivation; Definition 2 upgrading replaces
    /// it wholesale.
    pub tt: TypeTable,
}

/// The cache `𝒳`.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    entries: BTreeMap<(Cls, Mth), CacheEntry>,
}

impl Cache {
    /// `𝒳(A.m)`.
    pub fn get(&self, c: Cls, m: Mth) -> Option<&CacheEntry> {
        self.entries.get(&(c, m))
    }

    /// Number of cached derivations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Definition 1, `𝒳 \ A.m`: removes the entry for `A.m` and every
    /// entry whose derivation applies (TApp) with `A.m`.
    pub fn invalidate(&mut self, c: Cls, m: Mth) {
        self.entries.remove(&(c, m));
        self.entries
            .retain(|_, e| !e.deriv.tapp_uses.contains(&(c, m)));
    }

    /// Definition 2, `𝒳[TT']`: replaces the type table inside every stored
    /// derivation.
    pub fn upgrade(&mut self, tt: &TypeTable) {
        for e in self.entries.values_mut() {
            e.tt = tt.clone();
        }
    }

    fn insert(&mut self, c: Cls, m: Mth, entry: CacheEntry) {
        self.entries.insert((c, m), entry);
    }

    /// Definition 7 consistency: every cached derivation re-derives under
    /// the current tables and matches `DT`/`TT`.
    pub fn consistent_with(&self, tt: &TypeTable, dt: &DynTable) -> bool {
        self.entries.iter().all(|((c, m), e)| {
            if &e.tt != tt {
                return false;
            }
            let Some(pm) = dt.get(*c, *m) else {
                return false;
            };
            if pm != &e.premethod {
                return false;
            }
            let Some(mty) = tt.get(*c, *m) else {
                return false;
            };
            if mty != e.mty {
                return false;
            }
            check_method_body(tt, *c, pm.param, &pm.body, mty).is_ok()
        })
    }
}

/// Why evaluation blamed (the paper's three blame cases plus the (EType)
/// stack side condition, which we surface as blame so the machine is total;
/// see DESIGN.md).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Blame {
    /// Invoking a method on nil.
    NilReceiver(Mth),
    /// Calling a method with a type signature but no definition.
    UndefinedMethod(Cls, Mth),
    /// Calling a method with a definition but no type signature.
    UntypedMethod(Cls, Mth),
    /// The body failed its just-in-time check at (EAppMiss).
    BodyIllTyped(Cls, Mth),
    /// The runtime argument does not match the declared domain.
    ArgMismatch(Cls, Mth),
    /// `type A.m` while `A.m ∈ TApp(S)` — (EType)'s side condition.
    TypeUpdateOnStack(Cls, Mth),
}

/// A stack frame `(E, C)` plus which method body it was executing (used to
/// over-approximate `TApp(S)`).
#[derive(Debug, Clone)]
pub struct StackFrame {
    pub env: BTreeMap<VarId, Val>,
    pub self_val: Val,
    pub ctx: Ctx,
    pub active: Option<(Cls, Mth)>,
}

/// A machine configuration `⟨𝒳, TT, DT, E, e, S⟩`.
#[derive(Debug, Clone)]
pub struct Config {
    pub cache: Cache,
    pub tt: TypeTable,
    pub dt: DynTable,
    pub env: BTreeMap<VarId, Val>,
    pub self_val: Val,
    pub expr: Expr,
    pub stack: Vec<StackFrame>,
    /// Method whose body is currently executing (None at top level).
    pub active: Option<(Cls, Mth)>,
    /// (TApp) uses of the top-level program's typing derivation.
    pub toplevel_uses: BTreeSet<(Cls, Mth)>,
    /// Number of (EAppMiss) body checks run — the formal analogue of the
    /// engine's `checks_performed`.
    pub checks_run: u64,
    /// Number of (EAppHit) fast paths taken.
    pub cache_hits: u64,
}

/// The result of one step.
#[derive(Debug, Clone)]
pub enum Step {
    Continue,
    Done(Val),
    Blamed(Blame),
    Stuck(String),
}

/// The result of running to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunResult {
    Value(Val),
    Blamed(Blame),
    OutOfFuel,
    Stuck(String),
}

impl Config {
    /// A starting configuration for a closed program.
    pub fn initial(e: Expr) -> Config {
        let toplevel_uses = type_check(&TypeTable::new(), &TEnv::new(), &e)
            .map(|d| d.tapp_uses)
            .unwrap_or_default();
        Config {
            cache: Cache::default(),
            tt: TypeTable::new(),
            dt: DynTable::default(),
            env: BTreeMap::new(),
            self_val: Val::Nil,
            expr: e,
            stack: Vec::new(),
            active: None,
            toplevel_uses,
            checks_run: 0,
            cache_hits: 0,
        }
    }

    /// Over-approximates the paper's `TApp(S)`: the (TApp) uses of every
    /// derivation covering code on the stack (active method bodies plus the
    /// top level).
    fn tapp_stack(&self) -> BTreeSet<(Cls, Mth)> {
        let mut out = self.toplevel_uses.clone();
        let actives = self
            .stack
            .iter()
            .map(|f| f.active)
            .chain(std::iter::once(self.active));
        for a in actives.flatten() {
            if let Some(e) = self.cache.get(a.0, a.1) {
                out.extend(e.deriv.tapp_uses.iter().copied());
            }
            out.insert(a);
        }
        out
    }

    /// Takes one small step.
    pub fn step(&mut self) -> Step {
        if let Some(v) = self.expr.as_value() {
            // (ERet) or final value.
            return match self.stack.pop() {
                None => Step::Done(v),
                Some(frame) => {
                    self.env = frame.env;
                    self.self_val = frame.self_val;
                    self.active = frame.active;
                    self.expr = plug(&frame.ctx, v.to_expr());
                    Step::Continue
                }
            };
        }
        let Some((ctx, redex)) = decompose(&self.expr) else {
            return Step::Stuck("no decomposition".to_string());
        };
        match redex {
            // (EVar)
            Expr::Var(x) => match self.env.get(&x) {
                Some(v) => {
                    self.expr = plug(&ctx, v.to_expr());
                    Step::Continue
                }
                None => Step::Stuck(format!("read of unwritten variable {x}")),
            },
            // (ESelf)
            Expr::SelfE => {
                self.expr = plug(&ctx, self.self_val.to_expr());
                Step::Continue
            }
            // (EAssn)
            Expr::Assign(x, rhs) => {
                let v = rhs.as_value().expect("redex invariant");
                self.env.insert(x, v);
                self.expr = plug(&ctx, v.to_expr());
                Step::Continue
            }
            // (ENew)
            Expr::New(c) => {
                self.expr = plug(&ctx, Expr::Inst(c));
                Step::Continue
            }
            // (ESeq)
            Expr::Seq(l, r) => {
                debug_assert!(l.is_value());
                self.expr = plug(&ctx, r.as_ref().clone());
                Step::Continue
            }
            // (EIfTrue) / (EIfFalse)
            Expr::If(c, t, f) => {
                let v = c.as_value().expect("redex invariant");
                let branch = if matches!(v, Val::Nil) { f } else { t };
                self.expr = plug(&ctx, branch.as_ref().clone());
                Step::Continue
            }
            // (EDef)
            Expr::Def(c, m, pm) => {
                self.cache.invalidate(c, m);
                self.dt.insert(c, m, pm);
                self.expr = plug(&ctx, Expr::Nil);
                Step::Continue
            }
            // (EType)
            Expr::TypeDecl(c, m, mty) => {
                if self.tapp_stack().contains(&(c, m)) {
                    // The paper's side condition A.m ∉ TApp(S); surfaced as
                    // blame so the machine is total (see DESIGN.md).
                    return Step::Blamed(Blame::TypeUpdateOnStack(c, m));
                }
                self.tt.insert(c, m, mty);
                self.cache.invalidate(c, m);
                let tt = self.tt.clone();
                self.cache.upgrade(&tt);
                self.expr = plug(&ctx, Expr::Nil);
                Step::Continue
            }
            // (EAppMiss) / (EAppHit) / blame rules
            Expr::Call(r, m, a) => {
                let recv = r.as_value().expect("redex invariant");
                let arg = a.as_value().expect("redex invariant");
                let cls = match recv {
                    Val::Nil => return Step::Blamed(Blame::NilReceiver(m)),
                    Val::Inst(c) => c,
                };
                let Some(mty) = self.tt.get(cls, m) else {
                    return Step::Blamed(Blame::UntypedMethod(cls, m));
                };
                let Some(pm) = self.dt.get(cls, m).cloned() else {
                    return Step::Blamed(Blame::UndefinedMethod(cls, m));
                };
                if !arg.type_of().subtype(mty.dom) {
                    return Step::Blamed(Blame::ArgMismatch(cls, m));
                }
                if self.cache.get(cls, m).is_none() {
                    // (EAppMiss): check the body now, against the current TT.
                    self.checks_run += 1;
                    match check_method_body(&self.tt, cls, pm.param, &pm.body, mty) {
                        Ok(deriv) => {
                            self.cache.insert(
                                cls,
                                m,
                                CacheEntry {
                                    deriv,
                                    premethod: pm.clone(),
                                    mty,
                                    tt: self.tt.clone(),
                                },
                            );
                        }
                        Err(_) => return Step::Blamed(Blame::BodyIllTyped(cls, m)),
                    }
                } else {
                    self.cache_hits += 1;
                }
                // Push (E, C); enter the body.
                let mut frame_env = BTreeMap::new();
                frame_env.insert(pm.param, arg);
                self.stack.push(StackFrame {
                    env: std::mem::replace(&mut self.env, frame_env),
                    self_val: std::mem::replace(&mut self.self_val, recv),
                    ctx,
                    active: self.active.replace((cls, m)),
                });
                self.expr = pm.body.as_ref().clone();
                Step::Continue
            }
            v => Step::Stuck(format!("unexpected redex {v}")),
        }
    }

    /// Runs to completion within `fuel` steps, optionally validating cache
    /// consistency (Definition 7) at every step.
    pub fn run(&mut self, fuel: u64, validate: bool) -> RunResult {
        for _ in 0..fuel {
            if validate && !self.cache.consistent_with(&self.tt, &self.dt) {
                return RunResult::Stuck("cache inconsistent".to_string());
            }
            match self.step() {
                Step::Continue => {}
                Step::Done(v) => return RunResult::Value(v),
                Step::Blamed(b) => return RunResult::Blamed(b),
                Step::Stuck(s) => return RunResult::Stuck(s),
            }
        }
        RunResult::OutOfFuel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Ty;

    const A: Cls = Cls(0);
    const B: Cls = Cls(1);
    const M: Mth = Mth(0);
    const N: Mth = Mth(1);
    const X: VarId = VarId(0);

    fn seq(es: Vec<Expr>) -> Expr {
        let mut it = es.into_iter().rev();
        let mut out = it.next().unwrap();
        for e in it {
            out = Expr::Seq(Rc::new(e), Rc::new(out));
        }
        out
    }

    fn ident_method(c: Cls, m: Mth) -> Expr {
        Expr::Def(
            c,
            m,
            PreMethod {
                param: X,
                body: Rc::new(Expr::Var(X)),
            },
        )
    }

    fn ty(c: Cls, m: Mth, dom: Ty, rng: Ty) -> Expr {
        Expr::TypeDecl(c, m, MTy { dom, rng })
    }

    fn call(r: Expr, m: Mth, a: Expr) -> Expr {
        Expr::Call(Rc::new(r), m, Rc::new(a))
    }

    #[test]
    fn decompose_plug_roundtrip() {
        let e = call(
            Expr::Seq(Rc::new(Expr::New(A)), Rc::new(Expr::New(B))),
            M,
            Expr::Nil,
        );
        let (ctx, redex) = decompose(&e).unwrap();
        // The leftmost-innermost redex is New(A) inside the Seq inside the
        // call receiver.
        assert_eq!(redex, Expr::New(A));
        assert_eq!(ctx.len(), 2);
        assert_eq!(plug(&ctx, redex), e);
    }

    #[test]
    fn simple_program_runs_to_value() {
        // type A.m : A -> A; def A.m = λx.x; A.new.m(A.new)
        let p = seq(vec![
            ty(A, M, Ty::Cls(A), Ty::Cls(A)),
            ident_method(A, M),
            call(Expr::New(A), M, Expr::New(A)),
        ]);
        // Note: the top level does NOT type check under the empty initial
        // TT — exactly the paper's §3 restriction (type expressions only
        // take effect dynamically). The machine still runs it; the body
        // check happens just in time at the call.
        assert!(type_check(&TypeTable::new(), &TEnv::new(), &p).is_err());
        let mut cfg = Config::initial(p);
        assert_eq!(cfg.run(1000, true), RunResult::Value(Val::Inst(A)));
        assert_eq!(cfg.checks_run, 1);
    }

    #[test]
    fn second_call_hits_cache() {
        let p = seq(vec![
            ty(A, M, Ty::Cls(A), Ty::Cls(A)),
            ident_method(A, M),
            call(Expr::New(A), M, Expr::New(A)),
            call(Expr::New(A), M, Expr::New(A)),
            call(Expr::New(A), M, Expr::New(A)),
        ]);
        let mut cfg = Config::initial(p);
        assert!(matches!(cfg.run(1000, true), RunResult::Value(_)));
        assert_eq!(cfg.checks_run, 1, "checked once");
        assert_eq!(cfg.cache_hits, 2, "two hits");
    }

    #[test]
    fn redefinition_invalidates_cache() {
        // def, call (check), redef, call (recheck).
        let p = seq(vec![
            ty(A, M, Ty::Cls(A), Ty::Cls(A)),
            ident_method(A, M),
            call(Expr::New(A), M, Expr::New(A)),
            ident_method(A, M),
            call(Expr::New(A), M, Expr::New(A)),
        ]);
        let mut cfg = Config::initial(p);
        assert!(matches!(cfg.run(1000, true), RunResult::Value(_)));
        assert_eq!(cfg.checks_run, 2);
    }

    #[test]
    fn retyping_invalidates_dependents() {
        // B.n calls A.m. After retyping A.m, calling B.n again must recheck
        // B.n (its derivation used (TApp) on A.m — Definition 1 case 2).
        let bn_body = call(Expr::Var(X), M, Expr::Var(X));
        let p = seq(vec![
            ty(A, M, Ty::Cls(A), Ty::Cls(A)),
            ident_method(A, M),
            ty(B, N, Ty::Cls(A), Ty::Cls(A)),
            Expr::Def(
                B,
                N,
                PreMethod {
                    param: X,
                    body: Rc::new(bn_body),
                },
            ),
            call(Expr::New(B), N, Expr::New(A)), // checks B.n (and A.m at its call)
            ty(A, M, Ty::Cls(A), Ty::Cls(A)),    // re-type A.m (same type, still invalidates)
            call(Expr::New(B), N, Expr::New(A)), // must re-check B.n
        ]);
        let mut cfg = Config::initial(p);
        assert!(matches!(cfg.run(2000, true), RunResult::Value(_)));
        // B.n checked twice, A.m once (its own entry was invalidated too,
        // but A.m is called inside B.n, so it rechecks as well).
        assert_eq!(cfg.checks_run, 4);
    }

    #[test]
    fn body_ill_typed_blames_at_call() {
        // def A.m = λx. x.n(x) where nothing types n: definition is fine,
        // the call blames.
        let p = seq(vec![
            ty(A, M, Ty::Cls(A), Ty::Cls(A)),
            Expr::Def(
                A,
                M,
                PreMethod {
                    param: X,
                    body: Rc::new(call(Expr::Var(X), N, Expr::Var(X))),
                },
            ),
            call(Expr::New(A), M, Expr::New(A)),
        ]);
        let mut cfg = Config::initial(p);
        assert_eq!(
            cfg.run(1000, true),
            RunResult::Blamed(Blame::BodyIllTyped(A, M))
        );
    }

    #[test]
    fn nil_receiver_blames() {
        let p = seq(vec![
            ty(A, M, Ty::Cls(A), Ty::Cls(A)),
            ident_method(A, M),
            call(Expr::Nil, M, Expr::New(A)),
        ]);
        let mut cfg = Config::initial(p);
        assert_eq!(
            cfg.run(1000, true),
            RunResult::Blamed(Blame::NilReceiver(M))
        );
    }

    #[test]
    fn typed_but_undefined_blames() {
        let p = seq(vec![
            ty(A, M, Ty::Cls(A), Ty::Cls(A)),
            call(Expr::New(A), M, Expr::New(A)),
        ]);
        let mut cfg = Config::initial(p);
        assert_eq!(
            cfg.run(1000, true),
            RunResult::Blamed(Blame::UndefinedMethod(A, M))
        );
    }

    #[test]
    fn runtime_arg_mismatch_blames() {
        // A.m : B -> B, so passing [A] from an untyped context... the
        // top-level program must still type check, so route the bad value
        // through nil-typed flow: nil <= B statically, but at run time we
        // pass [A].
        // x = if nil then B.new else A.new  — joins to error statically, so
        // instead: the argument expression has static type nil via a
        // variable assigned nil, then reassigned dynamically — the formal
        // language has no such laundering, so arg mismatch can only occur
        // via nil-typed positions holding non-nil... which cannot happen.
        // We exercise the rule directly instead.
        let mut cfg = Config::initial(Expr::Nil);
        cfg.tt.insert(
            A,
            M,
            MTy {
                dom: Ty::Cls(B),
                rng: Ty::Nil,
            },
        );
        cfg.dt.insert(
            A,
            M,
            PreMethod {
                param: X,
                body: Rc::new(Expr::Nil),
            },
        );
        cfg.expr = call(Expr::New(A), M, Expr::New(A));
        assert_eq!(
            cfg.run(100, true),
            RunResult::Blamed(Blame::ArgMismatch(A, M))
        );
    }

    #[test]
    fn paper_section3_example_blames() {
        // def A.m = λx.(def B.m; type B.m; B.new.m(nil)) — the body cannot
        // type check at the first call because B.m is not yet in TT.
        let body = seq(vec![
            Expr::Def(
                B,
                M,
                PreMethod {
                    param: X,
                    body: Rc::new(Expr::Var(X)),
                },
            ),
            ty(B, M, Ty::Nil, Ty::Nil),
            call(Expr::New(B), M, Expr::Nil),
        ]);
        let p = seq(vec![
            ty(A, M, Ty::Nil, Ty::Nil),
            Expr::Def(
                A,
                M,
                PreMethod {
                    param: X,
                    body: Rc::new(body),
                },
            ),
            call(Expr::New(A), M, Expr::Nil),
        ]);
        let mut cfg = Config::initial(p);
        assert_eq!(
            cfg.run(1000, true),
            RunResult::Blamed(Blame::BodyIllTyped(A, M))
        );
    }

    #[test]
    fn cache_consistency_holds_through_updates() {
        let p = seq(vec![
            ty(A, M, Ty::Cls(A), Ty::Cls(A)),
            ident_method(A, M),
            call(Expr::New(A), M, Expr::New(A)),
            ty(B, N, Ty::Nil, Ty::Nil),
            Expr::Def(
                B,
                N,
                PreMethod {
                    param: X,
                    body: Rc::new(Expr::Nil),
                },
            ),
            call(Expr::New(B), N, Expr::Nil),
        ]);
        let mut cfg = Config::initial(p);
        // validate=true asserts Definition 7 at every step.
        assert!(matches!(cfg.run(2000, true), RunResult::Value(_)));
        assert_eq!(cfg.cache.len(), 2);
    }
}
