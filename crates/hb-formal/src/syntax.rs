//! The core language of paper Fig. 4.

use std::fmt;
use std::rc::Rc;

/// Class ids `A` (a small closed universe keeps generation simple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cls(pub u8);

/// Method ids `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mth(pub u8);

/// Variable ids `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u8);

impl fmt::Display for Cls {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", (b'A' + self.0) as char)
    }
}

impl fmt::Display for Mth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Value types `τ ::= A | nil`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    Nil,
    Cls(Cls),
}

impl Ty {
    /// Subtyping: `nil ≤ A` and `A ≤ A`.
    pub fn subtype(self, other: Ty) -> bool {
        match (self, other) {
            (Ty::Nil, _) => true,
            (Ty::Cls(a), Ty::Cls(b)) => a == b,
            (Ty::Cls(_), Ty::Nil) => false,
        }
    }

    /// Least upper bound: `A ⊔ A = A`, `nil ⊔ τ = τ ⊔ nil = τ`; undefined
    /// for distinct classes.
    pub fn lub(self, other: Ty) -> Option<Ty> {
        match (self, other) {
            (Ty::Nil, t) | (t, Ty::Nil) => Some(t),
            (Ty::Cls(a), Ty::Cls(b)) if a == b => Some(self),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Nil => write!(f, "nil"),
            Ty::Cls(c) => write!(f, "{c}"),
        }
    }
}

/// Method types `τm ::= τ → τ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MTy {
    pub dom: Ty,
    pub rng: Ty,
}

impl fmt::Display for MTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.dom, self.rng)
    }
}

/// Premethods `λx.e`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PreMethod {
    pub param: VarId,
    pub body: Rc<Expr>,
}

/// Expressions (Fig. 4). `self` is [`Expr::SelfE`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    Nil,
    /// An instance value `[A]`.
    Inst(Cls),
    Var(VarId),
    SelfE,
    Assign(VarId, Rc<Expr>),
    Seq(Rc<Expr>, Rc<Expr>),
    New(Cls),
    If(Rc<Expr>, Rc<Expr>, Rc<Expr>),
    /// `e1.m(e2)`
    Call(Rc<Expr>, Mth, Rc<Expr>),
    /// `def A.m = λx.e`
    Def(Cls, Mth, PreMethod),
    /// `type A.m : τ → τ'`
    TypeDecl(Cls, Mth, MTy),
}

impl Expr {
    /// Is this expression a value (`nil` or `[A]`)?
    pub fn is_value(&self) -> bool {
        matches!(self, Expr::Nil | Expr::Inst(_))
    }

    /// The runtime value, if this is one.
    pub fn as_value(&self) -> Option<Val> {
        match self {
            Expr::Nil => Some(Val::Nil),
            Expr::Inst(c) => Some(Val::Inst(*c)),
            _ => None,
        }
    }
}

/// Runtime values `v ::= nil | [A]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Val {
    Nil,
    Inst(Cls),
}

impl Val {
    /// Embeds a value back into expression syntax.
    pub fn to_expr(self) -> Expr {
        match self {
            Val::Nil => Expr::Nil,
            Val::Inst(c) => Expr::Inst(c),
        }
    }

    /// The paper's `type_of`: `type_of(nil) = nil`, `type_of([A]) = A`.
    pub fn type_of(self) -> Ty {
        match self {
            Val::Nil => Ty::Nil,
            Val::Inst(c) => Ty::Cls(c),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Nil => write!(f, "nil"),
            Expr::Inst(c) => write!(f, "[{c}]"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::SelfE => write!(f, "self"),
            Expr::Assign(x, e) => write!(f, "{x} = {e}"),
            Expr::Seq(a, b) => write!(f, "({a}; {b})"),
            Expr::New(c) => write!(f, "{c}.new"),
            Expr::If(c, t, e) => write!(f, "if {c} then {t} else {e}"),
            Expr::Call(r, m, a) => write!(f, "{r}.{m}({a})"),
            Expr::Def(c, m, pm) => write!(f, "def {c}.{m} = \u{3bb}{}.{}", pm.param, pm.body),
            Expr::TypeDecl(c, m, t) => write!(f, "type {c}.{m} : {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtyping_per_paper() {
        let a = Ty::Cls(Cls(0));
        let b = Ty::Cls(Cls(1));
        assert!(Ty::Nil.subtype(a));
        assert!(a.subtype(a));
        assert!(!a.subtype(b));
        assert!(!a.subtype(Ty::Nil));
    }

    #[test]
    fn lub_per_paper() {
        let a = Ty::Cls(Cls(0));
        let b = Ty::Cls(Cls(1));
        assert_eq!(Ty::Nil.lub(a), Some(a));
        assert_eq!(a.lub(Ty::Nil), Some(a));
        assert_eq!(a.lub(a), Some(a));
        assert_eq!(a.lub(b), None);
    }

    #[test]
    fn values() {
        assert!(Expr::Nil.is_value());
        assert!(Expr::Inst(Cls(0)).is_value());
        assert!(!Expr::New(Cls(0)).is_value());
        assert_eq!(Val::Inst(Cls(1)).type_of(), Ty::Cls(Cls(1)));
    }

    #[test]
    fn display() {
        let e = Expr::Call(Rc::new(Expr::New(Cls(0))), Mth(0), Rc::new(Expr::Nil));
        assert_eq!(e.to_string(), "A.new.m0(nil)");
    }
}
