//! The type checking system of paper Fig. 5, producing derivation trees.
//!
//! Judgments have the form `TT ⊢ ⟨Γ, e⟩ ⇒ ⟨Γ', τ⟩`. Derivations record the
//! `(A, m)` pairs used by rule (TApp) so the machine can implement
//! Definition 1 (cache invalidation) exactly.

use crate::syntax::{Cls, Expr, MTy, Mth, Ty, VarId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The type table `TT : cls ids → mth ids → mth typs`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypeTable {
    entries: BTreeMap<(Cls, Mth), MTy>,
}

impl TypeTable {
    /// An empty table.
    pub fn new() -> TypeTable {
        TypeTable::default()
    }

    /// `TT[A.m ↦ τm]`.
    pub fn insert(&mut self, c: Cls, m: Mth, t: MTy) {
        self.entries.insert((c, m), t);
    }

    /// `TT(A.m)`.
    pub fn get(&self, c: Cls, m: Mth) -> Option<MTy> {
        self.entries.get(&(c, m)).copied()
    }
}

/// The type environment `Γ : var ids → val typs` (plus `self`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TEnv {
    vars: BTreeMap<VarId, Ty>,
    pub self_ty: Option<Ty>,
}

impl TEnv {
    /// An empty environment.
    pub fn new() -> TEnv {
        TEnv::default()
    }

    /// Binds a variable.
    pub fn bind(&mut self, x: VarId, t: Ty) {
        self.vars.insert(x, t);
    }

    /// Reads a variable.
    pub fn get(&self, x: VarId) -> Option<Ty> {
        self.vars.get(&x).copied()
    }

    /// Variables bound in this environment.
    pub fn domain(&self) -> impl Iterator<Item = (&VarId, &Ty)> {
        self.vars.iter()
    }

    /// The paper's `Γ1 ⊔ Γ2`: defined on common variables with a defined
    /// type lub; other variables are dropped.
    pub fn join(&self, other: &TEnv) -> TEnv {
        let mut out = TEnv::new();
        out.self_ty = match (self.self_ty, other.self_ty) {
            (Some(a), Some(b)) => a.lub(b),
            _ => None,
        };
        for (x, t) in &self.vars {
            if let Some(u) = other.vars.get(x) {
                if let Some(j) = t.lub(*u) {
                    out.vars.insert(*x, j);
                }
            }
        }
        out
    }
}

/// A typing derivation `DM` with the rule name, conclusion and the (TApp)
/// uses needed by Definition 1(2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deriv {
    pub rule: &'static str,
    pub expr: Expr,
    pub env_out: TEnv,
    pub ty: Ty,
    pub children: Vec<Deriv>,
    /// All `(A, m)` pairs this derivation's (TApp) instances used.
    pub tapp_uses: BTreeSet<(Cls, Mth)>,
}

/// A static type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeErr(pub String);

impl fmt::Display for TypeErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

/// Runs the Fig. 5 rules: `TT ⊢ ⟨Γ, e⟩ ⇒ ⟨Γ', τ⟩`.
///
/// # Errors
///
/// Returns [`TypeErr`] when no rule applies.
pub fn type_check(tt: &TypeTable, env: &TEnv, e: &Expr) -> Result<Deriv, TypeErr> {
    match e {
        // (TNil)
        Expr::Nil => Ok(leaf("TNil", e, env.clone(), Ty::Nil)),
        // (TObject)
        Expr::Inst(c) => Ok(leaf("TObject", e, env.clone(), Ty::Cls(*c))),
        // (TSelf)
        Expr::SelfE => match env.self_ty {
            Some(t) => Ok(leaf("TSelf", e, env.clone(), t)),
            None => Err(TypeErr("self unbound".into())),
        },
        // (TVar)
        Expr::Var(x) => match env.get(*x) {
            Some(t) => Ok(leaf("TVar", e, env.clone(), t)),
            None => Err(TypeErr(format!("variable {x} unbound"))),
        },
        // (TSeq)
        Expr::Seq(e1, e2) => {
            let d1 = type_check(tt, env, e1)?;
            let d2 = type_check(tt, &d1.env_out, e2)?;
            let mut uses = d1.tapp_uses.clone();
            uses.extend(d2.tapp_uses.iter().copied());
            Ok(Deriv {
                rule: "TSeq",
                expr: e.clone(),
                env_out: d2.env_out.clone(),
                ty: d2.ty,
                children: vec![d1, d2],
                tapp_uses: uses,
            })
        }
        // (TAssn)
        Expr::Assign(x, rhs) => {
            let d = type_check(tt, env, rhs)?;
            let mut out = d.env_out.clone();
            out.bind(*x, d.ty);
            let uses = d.tapp_uses.clone();
            let ty = d.ty;
            Ok(Deriv {
                rule: "TAssn",
                expr: e.clone(),
                env_out: out,
                ty,
                children: vec![d],
                tapp_uses: uses,
            })
        }
        // (TNew)
        Expr::New(c) => Ok(leaf("TNew", e, env.clone(), Ty::Cls(*c))),
        // (TDef)
        Expr::Def(..) => Ok(leaf("TDef", e, env.clone(), Ty::Nil)),
        // (TType)
        Expr::TypeDecl(..) => Ok(leaf("TType", e, env.clone(), Ty::Nil)),
        // (TIf)
        Expr::If(c, t, f) => {
            let d0 = type_check(tt, env, c)?;
            let d1 = type_check(tt, &d0.env_out, t)?;
            let d2 = type_check(tt, &d0.env_out, f)?;
            let ty = d1
                .ty
                .lub(d2.ty)
                .ok_or_else(|| TypeErr(format!("no lub for {} and {}", d1.ty, d2.ty)))?;
            let env_out = d1.env_out.join(&d2.env_out);
            let mut uses = d0.tapp_uses.clone();
            uses.extend(d1.tapp_uses.iter().copied());
            uses.extend(d2.tapp_uses.iter().copied());
            Ok(Deriv {
                rule: "TIf",
                expr: e.clone(),
                env_out,
                ty,
                children: vec![d0, d1, d2],
                tapp_uses: uses,
            })
        }
        // (TApp)
        Expr::Call(recv, m, arg) => {
            let d0 = type_check(tt, env, recv)?;
            let a = match d0.ty {
                Ty::Cls(a) => a,
                Ty::Nil => return Err(TypeErr(format!("receiver of {m} has type nil"))),
            };
            let d1 = type_check(tt, &d0.env_out, arg)?;
            let mty = tt
                .get(a, *m)
                .ok_or_else(|| TypeErr(format!("no type for {a}.{m}")))?;
            if !d1.ty.subtype(mty.dom) {
                return Err(TypeErr(format!(
                    "argument {} not a subtype of {}",
                    d1.ty, mty.dom
                )));
            }
            let env_out = d1.env_out.clone();
            let mut uses = d0.tapp_uses.clone();
            uses.extend(d1.tapp_uses.iter().copied());
            uses.insert((a, *m));
            Ok(Deriv {
                rule: "TApp",
                expr: e.clone(),
                env_out,
                ty: mty.rng,
                children: vec![d0, d1],
                tapp_uses: uses,
            })
        }
    }
}

/// Checks a method body against a declared type, exactly as (EAppMiss)
/// does: `TT ⊢ ⟨[x ↦ τ1, self ↦ A], e⟩ ⇒ ⟨Γ', τ⟩` and `τ ≤ τ2`.
///
/// # Errors
///
/// Type errors in the body or a return-type mismatch.
pub fn check_method_body(
    tt: &TypeTable,
    class: Cls,
    param: VarId,
    body: &Expr,
    mty: MTy,
) -> Result<Deriv, TypeErr> {
    let mut env = TEnv::new();
    env.bind(param, mty.dom);
    env.self_ty = Some(Ty::Cls(class));
    let d = type_check(tt, &env, body)?;
    if !d.ty.subtype(mty.rng) {
        return Err(TypeErr(format!(
            "body type {} not a subtype of declared {}",
            d.ty, mty.rng
        )));
    }
    Ok(d)
}

fn leaf(rule: &'static str, e: &Expr, env: TEnv, ty: Ty) -> Deriv {
    Deriv {
        rule,
        expr: e.clone(),
        env_out: env,
        ty,
        children: vec![],
        tapp_uses: BTreeSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    const A: Cls = Cls(0);
    const B: Cls = Cls(1);
    const M: Mth = Mth(0);
    const X: VarId = VarId(0);

    fn call(r: Expr, m: Mth, a: Expr) -> Expr {
        Expr::Call(Rc::new(r), m, Rc::new(a))
    }

    #[test]
    fn literals_and_vars() {
        let tt = TypeTable::new();
        let mut env = TEnv::new();
        env.bind(X, Ty::Cls(A));
        assert_eq!(type_check(&tt, &env, &Expr::Nil).unwrap().ty, Ty::Nil);
        assert_eq!(type_check(&tt, &env, &Expr::Var(X)).unwrap().ty, Ty::Cls(A));
        assert!(type_check(&tt, &env, &Expr::Var(VarId(9))).is_err());
    }

    #[test]
    fn assignment_is_flow_sensitive() {
        let tt = TypeTable::new();
        let env = TEnv::new();
        let e = Expr::Assign(X, Rc::new(Expr::New(A)));
        let d = type_check(&tt, &env, &e).unwrap();
        assert_eq!(d.env_out.get(X), Some(Ty::Cls(A)));
    }

    #[test]
    fn tapp_requires_type_and_checks_arg() {
        let mut tt = TypeTable::new();
        let env = TEnv::new();
        let e = call(Expr::New(A), M, Expr::Nil);
        // No type: error (the paper's §3 B.m example).
        assert!(type_check(&tt, &env, &e).is_err());
        tt.insert(
            A,
            M,
            MTy {
                dom: Ty::Cls(B),
                rng: Ty::Nil,
            },
        );
        // nil <= B, fine.
        let d = type_check(&tt, &env, &e).unwrap();
        assert_eq!(d.ty, Ty::Nil);
        assert!(d.tapp_uses.contains(&(A, M)));
        // [A] is not a subtype of B.
        let bad = call(Expr::New(A), M, Expr::Inst(A));
        assert!(type_check(&tt, &env, &bad).is_err());
    }

    #[test]
    fn if_joins_envs_and_types() {
        let tt = TypeTable::new();
        let env = TEnv::new();
        // if nil then (x = A.new) else (x = A.new) : both branches bind x.
        let e = Expr::If(
            Rc::new(Expr::Nil),
            Rc::new(Expr::Assign(X, Rc::new(Expr::New(A)))),
            Rc::new(Expr::Assign(X, Rc::new(Expr::New(A)))),
        );
        let d = type_check(&tt, &env, &e).unwrap();
        assert_eq!(d.env_out.get(X), Some(Ty::Cls(A)));
        // One-sided binding is dropped.
        let e = Expr::If(
            Rc::new(Expr::Nil),
            Rc::new(Expr::Assign(X, Rc::new(Expr::New(A)))),
            Rc::new(Expr::Nil),
        );
        let d = type_check(&tt, &env, &e).unwrap();
        assert_eq!(d.env_out.get(X), None);
        assert_eq!(d.ty, Ty::Cls(A)); // A lub nil = A
    }

    #[test]
    fn incompatible_branches_fail() {
        let tt = TypeTable::new();
        let env = TEnv::new();
        let e = Expr::If(
            Rc::new(Expr::Nil),
            Rc::new(Expr::New(A)),
            Rc::new(Expr::New(B)),
        );
        assert!(type_check(&tt, &env, &e).is_err());
    }

    #[test]
    fn def_and_type_are_nil_typed_without_body_checks() {
        let tt = TypeTable::new();
        let env = TEnv::new();
        // The body is nonsense (unbound var) but (TDef) does not look.
        let d = type_check(
            &tt,
            &env,
            &Expr::Def(
                A,
                M,
                crate::syntax::PreMethod {
                    param: X,
                    body: Rc::new(Expr::Var(VarId(7))),
                },
            ),
        )
        .unwrap();
        assert_eq!(d.rule, "TDef");
        assert_eq!(d.ty, Ty::Nil);
    }

    #[test]
    fn method_body_checking() {
        let mut tt = TypeTable::new();
        tt.insert(
            A,
            M,
            MTy {
                dom: Ty::Cls(A),
                rng: Ty::Cls(A),
            },
        );
        // λx. x  with A -> A: fine.
        let d = check_method_body(
            &tt,
            A,
            X,
            &Expr::Var(X),
            MTy {
                dom: Ty::Cls(A),
                rng: Ty::Cls(A),
            },
        )
        .unwrap();
        assert_eq!(d.ty, Ty::Cls(A));
        // λx. self with B self: not a subtype of A.
        assert!(check_method_body(
            &tt,
            B,
            X,
            &Expr::SelfE,
            MTy {
                dom: Ty::Cls(A),
                rng: Ty::Cls(A)
            },
        )
        .is_err());
    }
}
