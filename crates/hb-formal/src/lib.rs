//! The Hummingbird paper's core calculus (§3, Figs. 4–6), executable.
//!
//! [`syntax`] is the core Ruby-like language; [`typing`] the flow-sensitive
//! type system producing derivation trees; [`machine`] the small-step
//! semantics with the derivation cache 𝒳, Definition 1 invalidation,
//! Definition 2 upgrading, and the blame rules of the soundness theorem.
//! Property tests in `tests/soundness.rs` exercise Theorem 1: well-typed
//! programs reduce to a value, reduce to blame, or diverge — never get
//! stuck — while cache consistency (Definition 7) holds at every step.

pub mod machine;
pub mod syntax;
pub mod typing;

pub use machine::{Blame, Cache, Config, DynTable, RunResult, Step};
pub use syntax::{Cls, Expr, MTy, Mth, PreMethod, Ty, Val, VarId};
pub use typing::{check_method_body, type_check, Deriv, TEnv, TypeErr, TypeTable};
