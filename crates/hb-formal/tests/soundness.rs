//! Property-based soundness testing (paper Theorem 1) and machine
//! invariants.
//!
//! We generate random programs over a small universe of classes, methods
//! and variables, shaped like real Hummingbird programs: interleaved `type`
//! / `def` declarations and calls, with random sub-expressions in method
//! bodies. The machine must be *total* — every run ends in a value, blame,
//! or fuel exhaustion — with the single exception of unwritten-variable
//! reads, which the paper classifies as errors that the type system rules
//! out: programs whose top level is well-typed must never hit them.
//! Definition 7 (cache consistency) is validated at every step of every
//! run.

use hb_formal::{
    type_check, Cls, Config, Expr, MTy, Mth, PreMethod, RunResult, TEnv, Ty, TypeTable, Val, VarId,
};
use proptest::prelude::*;
use std::rc::Rc;

fn arb_ty() -> impl Strategy<Value = Ty> {
    prop_oneof![Just(Ty::Nil), Just(Ty::Cls(Cls(0))), Just(Ty::Cls(Cls(1))),]
}

fn arb_small_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::Nil),
        Just(Expr::SelfE),
        Just(Expr::Var(VarId(0))),
        Just(Expr::Var(VarId(1))),
        Just(Expr::New(Cls(0))),
        Just(Expr::New(Cls(1))),
        Just(Expr::Inst(Cls(0))),
    ];
    leaf.prop_recursive(3, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Seq(Rc::new(a), Rc::new(b))),
            (any::<u8>(), inner.clone()).prop_map(|(x, e)| Expr::Assign(VarId(x % 2), Rc::new(e))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| Expr::If(
                Rc::new(c),
                Rc::new(t),
                Rc::new(f)
            )),
            (inner.clone(), any::<u8>(), inner).prop_map(|(r, m, a)| Expr::Call(
                Rc::new(r),
                Mth(m % 2),
                Rc::new(a)
            )),
        ]
    })
}

/// One top-level statement, weighted toward the declaration forms that make
/// programs interesting (types, defs, calls).
fn arb_stmt() -> impl Strategy<Value = Expr> {
    prop_oneof![
        // type A.m : τ → τ'
        (any::<u8>(), any::<u8>(), arb_ty(), arb_ty()).prop_map(|(c, m, d, r)| {
            Expr::TypeDecl(Cls(c % 2), Mth(m % 2), MTy { dom: d, rng: r })
        }),
        // def A.m = λx0. body
        (any::<u8>(), any::<u8>(), arb_small_expr()).prop_map(|(c, m, body)| {
            Expr::Def(
                Cls(c % 2),
                Mth(m % 2),
                PreMethod {
                    param: VarId(0),
                    body: Rc::new(body),
                },
            )
        }),
        // a random expression (often a call)
        arb_small_expr(),
    ]
}

fn arb_program() -> impl Strategy<Value = Expr> {
    prop::collection::vec(arb_stmt(), 1..8).prop_map(|stmts| {
        let mut it = stmts.into_iter().rev();
        let mut out = it.next().unwrap();
        for s in it {
            out = Expr::Seq(Rc::new(s), Rc::new(out));
        }
        out
    })
}

const FUEL: u64 = 2_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Machine totality with Definition 7 validated each step: arbitrary
    /// programs never get stuck except on unwritten-variable reads.
    #[test]
    fn machine_is_total_and_cache_consistent(p in arb_program()) {
        let mut cfg = Config::initial(p);
        match cfg.run(FUEL, true) {
            RunResult::Value(_) | RunResult::Blamed(_) | RunResult::OutOfFuel => {}
            RunResult::Stuck(msg) => {
                prop_assert!(
                    msg.contains("unwritten variable"),
                    "machine stuck: {msg}"
                );
            }
        }
    }

    /// Theorem 1: programs whose top level type checks under the empty
    /// table reduce to a value, blame, or diverge — never stuck at all.
    #[test]
    fn well_typed_programs_never_get_stuck(p in arb_program()) {
        if type_check(&TypeTable::new(), &TEnv::new(), &p).is_err() {
            // Outside the theorem's hypothesis.
            return Ok(());
        }
        let mut cfg = Config::initial(p.clone());
        match cfg.run(FUEL, true) {
            RunResult::Value(_) | RunResult::Blamed(_) | RunResult::OutOfFuel => {}
            RunResult::Stuck(msg) => {
                prop_assert!(false, "well-typed program stuck: {msg} in {p}");
            }
        }
    }

    /// Well-typed programs that terminate with a value produce a value
    /// whose type is a subtype of the static type (the observable corollary
    /// of preservation).
    #[test]
    fn final_value_matches_static_type(p in arb_program()) {
        let Ok(d) = type_check(&TypeTable::new(), &TEnv::new(), &p) else {
            return Ok(());
        };
        let mut cfg = Config::initial(p);
        if let RunResult::Value(v) = cfg.run(FUEL, true) {
            prop_assert!(
                v.type_of().subtype(d.ty),
                "value {v:?} (type {}) vs static {}",
                v.type_of(),
                d.ty
            );
        }
    }

    /// The cache never re-checks an unchanged method: runs where no def or
    /// type redeclaration occurs check each called method at most once.
    #[test]
    fn at_most_one_check_per_method_without_updates(
        calls in 1usize..6,
    ) {
        // type A.m0 : A→A; def A.m0 = λx.x; then `calls` identical calls.
        let mut stmts = vec![
            Expr::TypeDecl(Cls(0), Mth(0), MTy { dom: Ty::Cls(Cls(0)), rng: Ty::Cls(Cls(0)) }),
            Expr::Def(Cls(0), Mth(0), PreMethod { param: VarId(0), body: Rc::new(Expr::Var(VarId(0))) }),
        ];
        for _ in 0..calls {
            stmts.push(Expr::Call(
                Rc::new(Expr::New(Cls(0))),
                Mth(0),
                Rc::new(Expr::New(Cls(0))),
            ));
        }
        let mut it = stmts.into_iter().rev();
        let mut p = it.next().unwrap();
        for s in it {
            p = Expr::Seq(Rc::new(s), Rc::new(p));
        }
        let mut cfg = Config::initial(p);
        prop_assert_eq!(cfg.run(FUEL, true), RunResult::Value(Val::Inst(Cls(0))));
        prop_assert_eq!(cfg.checks_run, 1);
        prop_assert_eq!(cfg.cache_hits, (calls - 1) as u64);
    }
}

#[test]
fn blame_cases_are_observable() {
    use hb_formal::Blame;
    // nil receiver.
    let p = Expr::Call(Rc::new(Expr::Nil), Mth(0), Rc::new(Expr::Nil));
    let mut cfg = Config::initial(p);
    assert!(matches!(
        cfg.run(100, true),
        RunResult::Blamed(Blame::NilReceiver(_))
    ));
    // untyped method.
    let p = Expr::Call(Rc::new(Expr::New(Cls(0))), Mth(0), Rc::new(Expr::Nil));
    let mut cfg = Config::initial(p);
    assert!(matches!(
        cfg.run(100, true),
        RunResult::Blamed(Blame::UntypedMethod(_, _))
    ));
}
