//! Periodic task class: a timer that enqueues a recurring job onto the
//! pool at a fixed interval.
//!
//! The fleet daemon's maintenance work — background snapshot writeback,
//! LRU compaction — is recurring, cheap to trigger, and must share the
//! pool's panic containment rather than owning ad-hoc threads. A
//! [`PeriodicTask`] owns one lightweight timer thread that submits the
//! job via [`Scheduler::submit_job`] each tick; the job itself runs on a
//! pool worker under `catch_unwind`, so a panicking maintenance pass is
//! contained exactly like a panicking check.
//!
//! The timer holds the scheduler **weakly**: a dropped pool ends the
//! timer instead of the timer keeping the pool alive. Dropping the
//! [`PeriodicTask`] cancels the timer and joins the thread — no tick
//! fires after `drop` returns (a tick already *on* the pool may still be
//! executing; quiesce the pool if that matters).

use crate::pool::Scheduler;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// A cancellable recurring submission onto a [`Scheduler`] (see the
/// module docs). Created by [`Scheduler::submit_periodic`].
pub struct PeriodicTask {
    stop: Arc<(Mutex<bool>, Condvar)>,
    ticks: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl PeriodicTask {
    fn spawn(
        sched: &Arc<Scheduler>,
        interval: Duration,
        job: impl Fn() + Send + Sync + 'static,
    ) -> PeriodicTask {
        let stop: Arc<(Mutex<bool>, Condvar)> = Arc::new((Mutex::new(false), Condvar::new()));
        let ticks = Arc::new(AtomicU64::new(0));
        let weak: Weak<Scheduler> = Arc::downgrade(sched);
        let job: Arc<dyn Fn() + Send + Sync> = Arc::new(job);
        let handle = {
            let stop = stop.clone();
            let ticks = ticks.clone();
            std::thread::Builder::new()
                .name("hb-periodic".into())
                .spawn(move || loop {
                    {
                        let (lock, cv) = &*stop;
                        let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                        while !*stopped {
                            let (guard, timeout) = cv
                                .wait_timeout(stopped, interval)
                                .unwrap_or_else(|e| e.into_inner());
                            stopped = guard;
                            if timeout.timed_out() {
                                break;
                            }
                        }
                        if *stopped {
                            return;
                        }
                    }
                    // The pool is held weakly: a dropped scheduler (or one
                    // that refuses the job because it is shutting down)
                    // ends the timer.
                    let Some(sched) = weak.upgrade() else { return };
                    let job = job.clone();
                    if !sched.submit_job(move || job()) {
                        return;
                    }
                    ticks.fetch_add(1, Ordering::Relaxed);
                })
                .expect("spawning the periodic timer thread")
        };
        PeriodicTask {
            stop,
            ticks,
            handle: Some(handle),
        }
    }

    /// Ticks submitted so far (submissions, not completions — the job
    /// may still be queued or running on a worker).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

impl Drop for PeriodicTask {
    fn drop(&mut self) {
        {
            let (lock, cv) = &*self.stop;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Scheduler {
    /// Submits `job` to run on the pool every `interval`, starting one
    /// interval from now. The returned [`PeriodicTask`] cancels (and
    /// joins its timer) on drop; the scheduler is held weakly, so the
    /// timer also ends when the pool is dropped or begins shutdown.
    pub fn submit_periodic(
        self: &Arc<Self>,
        interval: Duration,
        job: impl Fn() + Send + Sync + 'static,
    ) -> PeriodicTask {
        PeriodicTask::spawn(self, interval, job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn periodic_job_fires_and_cancels() {
        let sched = Arc::new(Scheduler::new(2));
        let fired = Arc::new(AtomicUsize::new(0));
        let task = {
            let fired = fired.clone();
            sched.submit_periodic(Duration::from_millis(5), move || {
                fired.fetch_add(1, Ordering::SeqCst);
            })
        };
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while fired.load(Ordering::SeqCst) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(fired.load(Ordering::SeqCst) >= 3, "ticks keep firing");
        drop(task);
        let after = fired.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(30));
        // A tick in flight at cancel time may land, but the stream stops.
        assert!(
            fired.load(Ordering::SeqCst) <= after + 1,
            "no new ticks after drop"
        );
    }

    #[test]
    fn dropped_scheduler_ends_the_timer() {
        let sched = Arc::new(Scheduler::new(1));
        let task = sched.submit_periodic(Duration::from_millis(5), || {});
        let weak = Arc::downgrade(&sched);
        drop(sched);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while weak.upgrade().is_some() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            weak.upgrade().is_none(),
            "the timer's weak handle does not keep the pool alive"
        );
        drop(task);
    }
}
