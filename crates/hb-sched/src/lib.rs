//! # hb-sched: the concurrent check scheduler
//!
//! Hummingbird's just-in-time static checks are pure functions of a
//! method's lowered body, the type table and the class hierarchy (Ren &
//! Foster, PLDI 2016) — nothing about them requires the interpreter
//! thread. This crate supplies the subsystem that exploits that purity:
//!
//! * [`CheckTask`] — an owned, `Send` capture of one `check_sig`
//!   invocation: the CFG, the signature and blame metadata, the captured
//!   type environment, and an [`WorldSnapshot`] of the table/hierarchy
//!   with its epoch fingerprints. Extracted at the engine layer on the
//!   interpreter thread; executable anywhere.
//! * [`Scheduler`] — a work-stealing pool of worker threads executing
//!   tasks. Panics are contained per task ([`TaskVerdict::Panicked`]);
//!   the pool survives.
//! * [`CompletionQueue`] — the per-engine channel results travel back
//!   through. The engine validates each completion's fingerprints against
//!   its *current* state before anything lands: matching results are
//!   adopted (cached locally, published to the shared tier for other
//!   tenants); stale results are discarded, never adopted.
//!
//! Two consumers live in the `hummingbird` core crate: parallel
//! whole-program linting (`Hummingbird::check_all_parallel`, `hb_lint
//! --jobs N`) and asynchronous JIT admission
//! (`hb_rdl::CheckPolicy::Deferred`, where a cold call enqueues its task
//! and proceeds immediately under full dynamic checks).

pub mod periodic;
pub mod pool;
pub mod task;
pub mod world;

pub use periodic::PeriodicTask;
pub use pool::{Job, Scheduler};
pub use task::{CheckTask, CompletionQueue, DepFact, TaskCompletion, TaskVerdict};
pub use world::WorldSnapshot;
