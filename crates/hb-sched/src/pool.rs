//! The work-stealing worker pool.
//!
//! Each worker owns a deque; submissions distribute round-robin across
//! the workers' deques (plus a shared injector for overflow while a deque
//! is contended), and an idle worker pops its own deque from the back,
//! then steals from the injector and from other workers' fronts. With
//! heterogeneous check costs (a six-app lint mixes sub-microsecond
//! accessors with multi-millisecond controller bodies) stealing is what
//! keeps all cores busy until the last task, which is exactly the
//! `check_all_parallel` wall-clock bound.
//!
//! Panic containment: every task executes under `catch_unwind`. A
//! panicking check poisons only its own task — the worker thread, the
//! deques and every other queued task survive — and the panic surfaces as
//! a [`TaskVerdict::Panicked`] completion for the engine to report as a
//! structured `HB0011` diagnostic (the scheduler-side analogue of the
//! shared tier's poisoned-shard recovery).

use crate::task::{CheckTask, TaskVerdict};
use hb_rdl::MethodKey;
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A generic unit of pool work: an engine check task or an opaque job
/// closure (the analysis fan-out path). Jobs reuse the same deques,
/// stealing and panic containment as checks.
enum PoolTask {
    Check(CheckTask),
    Job(Job),
}

/// An opaque job: runs once on a worker. Result delivery is the
/// closure's business (send over a channel, fill an `Arc<Mutex<..>>`);
/// a job dropped unrun (pool shutdown) must fail safe — channel senders
/// do, since dropping them closes the channel.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    /// Per-worker deques: owner pops the back, thieves steal the front.
    queues: Vec<Mutex<VecDeque<PoolTask>>>,
    /// Overflow queue for submissions that found their deque contended.
    injector: Mutex<VecDeque<PoolTask>>,
    /// Parking gate for idle workers.
    gate: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    paused: AtomicBool,
    /// Round-robin submission cursor.
    next: AtomicUsize,
    /// Tasks executed over the pool's lifetime (including panicked ones).
    executed: AtomicU64,
    /// Tasks whose execution panicked (and was contained).
    panicked: AtomicU64,
    /// Test instrumentation: keys whose tasks deliberately panic on the
    /// worker (exercises the containment path end to end).
    panic_keys: Mutex<HashSet<MethodKey>>,
}

impl PoolShared {
    /// Pops work for worker `me`: own back, injector front, then steal
    /// other fronts.
    fn grab(&self, me: usize) -> Option<PoolTask> {
        if let Some(t) = self.queues[me]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_back()
        {
            return Some(t);
        }
        if let Some(t) = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some(t);
        }
        for i in 1..self.queues.len() {
            let victim = (me + i) % self.queues.len();
            if let Some(t) = self.queues[victim]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                return Some(t);
            }
        }
        None
    }

    fn execute(&self, task: PoolTask) {
        match task {
            PoolTask::Check(t) => self.execute_check(t),
            PoolTask::Job(j) => self.execute_job(j),
        }
    }

    /// Runs one opaque job under the same containment as a check: a
    /// panicking job is caught and counted, the worker survives.
    fn execute_job(&self, job: Job) {
        let result = catch_unwind(AssertUnwindSafe(job));
        if result.is_err() {
            self.panicked.fetch_add(1, Ordering::Relaxed);
        }
        self.executed.fetch_add(1, Ordering::Relaxed);
    }

    fn execute_check(&self, task: CheckTask) {
        let t0 = Instant::now();
        let queue_ns = task
            .submitted_at
            .map(|s| t0.saturating_duration_since(s).as_nanos() as u64)
            .unwrap_or(0);
        let deliberate = self
            .panic_keys
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&task.cache_key);
        // The task's data is fully owned, so observing it after a caught
        // unwind is safe; the catch is the containment boundary.
        let result = catch_unwind(AssertUnwindSafe(|| {
            if deliberate {
                panic!(
                    "deliberate test panic while checking {}",
                    task.cache_key.display()
                );
            }
            task.run()
        }));
        let verdict = match result {
            Ok(v) => v,
            Err(payload) => {
                self.panicked.fetch_add(1, Ordering::Relaxed);
                TaskVerdict::Panicked(panic_message(payload))
            }
        };
        self.executed.fetch_add(1, Ordering::Relaxed);
        let duration_ns = t0.elapsed().as_nanos() as u64;
        let completions = task.completions.clone();
        completions.complete(task.into_completion(verdict, duration_ns, queue_ns));
    }

    fn worker_loop(&self, me: usize) {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if !self.paused.load(Ordering::Acquire) {
                if let Some(task) = self.grab(me) {
                    self.execute(task);
                    continue;
                }
            }
            // Park. The timeout is a belt-and-braces fallback against a
            // lost wakeup race; submissions notify under the gate, so the
            // common-case latency is the notify itself.
            let guard = self.gate.lock().unwrap_or_else(|e| e.into_inner());
            match self.wake.wait_timeout(guard, Duration::from_millis(20)) {
                Ok((g, _)) => drop(g),
                Err(poisoned) => drop(poisoned.into_inner()),
            }
        }
    }
}

/// The concurrent check scheduler: a fixed pool of worker threads
/// executing [`CheckTask`]s off the interpreter thread. Share one pool
/// across tenants (it is `Send + Sync` behind `Arc`); each task carries
/// its submitting engine's completion queue, so results route themselves.
pub struct Scheduler {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Spawns a pool of `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Scheduler {
        let jobs = jobs.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            gate: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            panic_keys: Mutex::new(HashSet::new()),
        });
        let workers = (0..jobs)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("hb-sched-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.shared.queues.len()
    }

    /// Submits a task, returning whether the pool accepted it. The task's
    /// completion queue is registered before the task becomes visible to
    /// workers, so a quiesce that races the submission still waits for
    /// it. A shut-down pool rejects the task (returns `false`) after
    /// un-registering it — the submitter must not leave per-key in-flight
    /// state latched on a task that will never run.
    pub fn submit(&self, task: CheckTask) -> bool {
        task.completions.register();
        if self.shared.shutdown.load(Ordering::Acquire) {
            // Shut-down pool: the task will never run.
            task.completions.abandon();
            return false;
        }
        let n = self.shared.queues.len();
        let slot = self.shared.next.fetch_add(1, Ordering::Relaxed) % n;
        self.enqueue(slot, PoolTask::Check(task));
        true
    }

    /// Submits an opaque job closure (the analysis fan-out path). Returns
    /// `false` — dropping the closure unrun — if the pool is shut down;
    /// callers must make dropped jobs fail safe (channel senders do).
    pub fn submit_job(&self, job: impl FnOnce() + Send + 'static) -> bool {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        let n = self.shared.queues.len();
        let slot = self.shared.next.fetch_add(1, Ordering::Relaxed) % n;
        self.enqueue(slot, PoolTask::Job(Box::new(job)));
        true
    }

    fn enqueue(&self, slot: usize, task: PoolTask) {
        match self.shared.queues[slot].try_lock() {
            Ok(mut q) => q.push_back(task),
            Err(_) => self
                .shared
                .injector
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task),
        }
        let _gate = self.shared.gate.lock().unwrap_or_else(|e| e.into_inner());
        self.shared.wake.notify_all();
    }

    /// Pauses execution: queued tasks stay queued until
    /// [`resume`](Scheduler::resume). Test hook for reload-during-inflight
    /// scenarios; tasks already running finish normally.
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::Release);
    }

    /// Resumes a paused pool.
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::Release);
        let _gate = self.shared.gate.lock().unwrap_or_else(|e| e.into_inner());
        self.shared.wake.notify_all();
    }

    /// Tasks executed so far (including contained panics).
    pub fn tasks_executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Tasks whose execution panicked and was contained.
    pub fn tasks_panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Test instrumentation: make every task for `key` panic on the
    /// worker, exercising the containment path.
    pub fn panic_on(&self, key: MethodKey) {
        self.shared
            .panic_keys
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key);
    }

    /// Clears [`panic_on`](Scheduler::panic_on) instrumentation.
    pub fn clear_panic_keys(&self) {
        self.shared
            .panic_keys
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _gate = self.shared.gate.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.wake.notify_all();
        }
        for h in self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = h.join();
        }
        // Abandon anything still queued so quiescing engines do not hang
        // on tasks that will never run. (Leftover jobs are dropped unrun,
        // which closes their result channels.)
        let leftovers: Vec<PoolTask> = {
            let mut all = Vec::new();
            for q in self.shared.queues.iter() {
                all.extend(q.lock().unwrap_or_else(|e| e.into_inner()).drain(..));
            }
            all.extend(
                self.shared
                    .injector
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .drain(..),
            );
            all
        };
        for t in leftovers {
            if let PoolTask::Check(t) = t {
                t.completions.abandon();
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Scheduler>();
        assert_send_sync::<Arc<Scheduler>>();
    }

    #[test]
    fn drop_joins_workers() {
        let s = Scheduler::new(3);
        assert_eq!(s.worker_count(), 3);
        drop(s); // must not hang
    }

    #[test]
    fn jobs_run_and_results_arrive() {
        let s = Scheduler::new(2);
        let (tx, rx) = std::sync::mpsc::channel::<usize>();
        for i in 0..16 {
            let tx = tx.clone();
            assert!(s.submit_job(move || {
                let _ = tx.send(i);
            }));
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_job_is_contained_and_channel_closes() {
        let s = Scheduler::new(2);
        let (tx, rx) = std::sync::mpsc::channel::<usize>();
        {
            let tx = tx.clone();
            assert!(s.submit_job(move || {
                let _ = &tx; // held across the panic, dropped by unwind
                panic!("job panic");
            }));
        }
        let tx2 = tx.clone();
        assert!(s.submit_job(move || {
            let _ = tx2.send(7);
        }));
        drop(tx);
        // The panicking job's sender drops during unwind, so the channel
        // still closes and the surviving job's result arrives.
        let got: Vec<usize> = rx.iter().collect();
        assert_eq!(got, vec![7]);
        // The unwind drops the sender before the worker bumps the
        // counter, so give the increment a moment to land.
        for _ in 0..1000 {
            if s.tasks_panicked() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(s.tasks_panicked(), 1);
    }
}
