//! The `Send` check-task capture and its completion channel.
//!
//! A [`CheckTask`] is an owned snapshot of everything one `check_sig`
//! invocation needs — the lowered CFG, the signature under check, the
//! blame metadata of the triggering `CheckRequest`, the captured-local
//! type environment, and an `Arc`'d [`WorldSnapshot`] of the table and
//! hierarchy with its epoch fingerprints. Extraction happens at the
//! engine layer on the interpreter thread; execution happens on any
//! worker; the result travels back through the submitting engine's
//! [`CompletionQueue`] and is validated against the engine's *current*
//! state before anything lands (stale results are discarded, never
//! adopted).

use crate::world::WorldSnapshot;
use hb_check::{check_sig, CheckOptions, CheckRequest};
use hb_il::MethodCfg;
use hb_rdl::{CheckPolicy, MethodKey, Resolution};
use hb_syntax::{Span, TypeDiagnostic};
use hb_types::{MethodSig, TypeEnv};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One dependency fact of a passing worker derivation: the (TApp)
/// resolution witness plus the signature version and content fingerprint
/// the target had *in the task's world snapshot*. The engine validates
/// these against its current table at publication (the same shape as the
/// shared tier's `SharedDep` replay) and publishes them onward so other
/// tenants adopt the worker's derivation exactly as they adopt a
/// tenant-published one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepFact {
    pub resolution: Resolution,
    /// Version of the target's entry at capture time (0 for negative
    /// witnesses).
    pub sig_version: u64,
    /// Content fingerprint of the target's signature at capture time.
    pub sig_fingerprint: u64,
}

/// How a scheduled check ended on the worker.
#[derive(Debug, Clone)]
pub enum TaskVerdict {
    /// The derivation succeeded against the task's world snapshot.
    Pass {
        /// Dependency facts (witnesses + at-capture versions/fingerprints).
        deps: Vec<DepFact>,
        /// Distinct `rdl_cast` sites the derivation encountered.
        cast_sites: Vec<(u32, u32, u32)>,
    },
    /// The check blamed; the structured diagnostic is exactly what a
    /// synchronous check would have produced.
    Blame(TypeDiagnostic),
    /// The check panicked. The panic is contained to this task — the
    /// worker thread and the pool survive — and surfaced as the payload
    /// message for the engine to turn into an `HB0011` diagnostic.
    Panicked(String),
}

/// A completed task travelling back to the submitting engine: the task's
/// identity and capture-time fingerprints (what staleness is judged
/// against) plus the verdict.
#[derive(Debug, Clone)]
pub struct TaskCompletion {
    pub cache_key: MethodKey,
    pub ann_key: MethodKey,
    /// Method-table entry id the checked CFG was lowered from.
    pub entry_id: u64,
    /// Annotation version the body was checked against.
    pub sig_version: u64,
    /// Cross-process body fingerprint (`None` for bodies without a stable
    /// source identity — those check fine but are not published to the
    /// shared tier).
    pub body_fp: Option<u64>,
    /// Content fingerprint of the checked method's own signature.
    pub own_sig_fp: u64,
    /// The world snapshot's `(table_fp, hier_fp, var_fp)` at capture.
    pub epochs: (u64, u64, u64),
    /// The triggering call site for deferred JIT admissions (`None` for
    /// eager parallel linting).
    pub trigger: Option<Span>,
    /// Whether the engine should record a blame diagnostic from this
    /// task (deferred admissions record; parallel-lint tasks leave blame
    /// reporting to the deterministic serial sweep).
    pub record_blame: bool,
    /// The policy the task ran under.
    pub policy: CheckPolicy,
    pub verdict: TaskVerdict,
    /// Wall-clock nanoseconds the worker spent on the check.
    pub duration_ns: u64,
    /// Nanoseconds the task sat queued between submission and a worker
    /// picking it up (0 when the submitter did not stamp
    /// [`CheckTask::submitted_at`]).
    pub queue_ns: u64,
}

/// An owned, `Send` capture of one static check (see the module docs).
pub struct CheckTask {
    /// The receiver-class cache key the derivation will be stored under.
    pub cache_key: MethodKey,
    /// The annotation providing the signature (may sit on an ancestor).
    pub ann_key: MethodKey,
    /// Where that annotation was registered.
    pub ann_span: Span,
    /// The (possibly intersection) signature under check.
    pub sig: MethodSig,
    /// Method-table entry id of the captured body.
    pub entry_id: u64,
    /// Annotation version under check.
    pub sig_version: u64,
    /// Cross-process body fingerprint, when the body has one.
    pub body_fp: Option<u64>,
    /// Content fingerprint of the annotation's signature.
    pub own_sig_fp: u64,
    /// The lowered body.
    pub cfg: Arc<MethodCfg>,
    /// Captured-local types for `define_method` proc bodies.
    pub captured: Option<TypeEnv>,
    /// The table/hierarchy world the check runs against.
    pub world: Arc<WorldSnapshot>,
    /// The enforcement policy the check runs under.
    pub policy: CheckPolicy,
    /// The triggering call site (deferred JIT admission) or `None`
    /// (parallel eager linting).
    pub trigger: Option<Span>,
    /// See [`TaskCompletion::record_blame`].
    pub record_blame: bool,
    /// Checker tunables.
    pub opts: CheckOptions,
    /// The submitting engine's completion channel.
    pub completions: Arc<CompletionQueue>,
    /// When the submitter enqueued the task. Stamped only when the
    /// submitting engine collects observability metrics; the worker
    /// turns it into [`TaskCompletion::queue_ns`].
    pub submitted_at: Option<Instant>,
}

impl CheckTask {
    /// Runs the check against the task's world snapshot and folds the
    /// outcome into a [`TaskVerdict`]. Pure with respect to the snapshot —
    /// callable from any thread.
    pub fn run(&self) -> TaskVerdict {
        let req = CheckRequest {
            cfg: &self.cfg,
            self_class: self.cache_key.class.as_str(),
            class_level: self.cache_key.class_level,
            sig: &self.sig,
            ann_key: self.ann_key,
            ann_span: self.ann_span,
            info: self.world.as_ref(),
            rdl: self.world.as_ref(),
            captured: self.captured.as_ref(),
            opts: &self.opts,
            policy: self.policy,
        };
        match check_sig(&req) {
            Ok(outcome) => {
                // Attach each dependency's at-capture version/fingerprint,
                // exactly as a tenant publishing to the shared tier does.
                let deps = outcome
                    .resolutions
                    .iter()
                    .map(|res| {
                        let (v, fp) = res
                            .target
                            .and_then(|t| self.world.table_entry(&t))
                            .map_or((0, 0), |e| (e.version, hb_intern::fingerprint64(&e.sig)));
                        DepFact {
                            resolution: *res,
                            sig_version: v,
                            sig_fingerprint: fp,
                        }
                    })
                    .collect();
                TaskVerdict::Pass {
                    deps,
                    cast_sites: outcome.cast_sites.iter().copied().collect(),
                }
            }
            Err(e) => TaskVerdict::Blame(e.into_diagnostic()),
        }
    }

    /// Folds this task and a verdict into the completion record sent back
    /// to the submitting engine.
    pub fn into_completion(
        self,
        verdict: TaskVerdict,
        duration_ns: u64,
        queue_ns: u64,
    ) -> TaskCompletion {
        TaskCompletion {
            cache_key: self.cache_key,
            ann_key: self.ann_key,
            entry_id: self.entry_id,
            sig_version: self.sig_version,
            body_fp: self.body_fp,
            own_sig_fp: self.own_sig_fp,
            epochs: self.world.epochs,
            trigger: self.trigger,
            record_blame: self.record_blame,
            policy: self.policy,
            verdict,
            duration_ns,
            queue_ns,
        }
    }
}

#[derive(Default)]
struct QueueState {
    done: Vec<TaskCompletion>,
    /// Tasks submitted but not yet completed (or abandoned).
    pending: usize,
}

/// The per-engine completion channel: workers push [`TaskCompletion`]s,
/// the owning engine drains them on its own thread (where the live table
/// and registry are reachable for staleness validation).
///
/// `has_ready` is a single relaxed atomic load, cheap enough for the
/// dispatch hot path to poll every intercepted call.
#[derive(Default)]
pub struct CompletionQueue {
    state: Mutex<QueueState>,
    idle: Condvar,
    ready: AtomicUsize,
}

impl CompletionQueue {
    /// An empty queue.
    pub fn new() -> CompletionQueue {
        CompletionQueue::default()
    }

    /// Registers one submitted task (balanced by [`complete`] or
    /// [`abandon`]).
    ///
    /// [`complete`]: CompletionQueue::complete
    /// [`abandon`]: CompletionQueue::abandon
    pub fn register(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).pending += 1;
    }

    /// Delivers a completed task and wakes quiescing waiters.
    pub fn complete(&self, c: TaskCompletion) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.done.push(c);
        st.pending = st.pending.saturating_sub(1);
        self.ready.fetch_add(1, Ordering::Release);
        drop(st);
        self.idle.notify_all();
    }

    /// Un-registers a task that will never run (scheduler shut down with
    /// the task still queued) so quiescing callers do not hang.
    pub fn abandon(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.pending = st.pending.saturating_sub(1);
        drop(st);
        self.idle.notify_all();
    }

    /// True when completions are waiting to be drained (one atomic load).
    pub fn has_ready(&self) -> bool {
        self.ready.load(Ordering::Acquire) > 0
    }

    /// Takes every delivered completion, in delivery order.
    pub fn drain(&self) -> Vec<TaskCompletion> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.ready.store(0, Ordering::Release);
        std::mem::take(&mut st.done)
    }

    /// Blocks until every registered task has completed (or been
    /// abandoned). Completions delivered meanwhile stay queued for the
    /// caller's next [`drain`](CompletionQueue::drain).
    pub fn wait_idle(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.pending > 0 {
            st = self.idle.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Tasks submitted but not yet completed.
    pub fn pending(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_and_completion_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CheckTask>();
        assert_send::<TaskCompletion>();
        assert_send::<Arc<CompletionQueue>>();
    }

    #[test]
    fn queue_tracks_pending_and_ready() {
        let q = CompletionQueue::new();
        q.register();
        q.register();
        assert_eq!(q.pending(), 2);
        assert!(!q.has_ready());
        q.abandon();
        assert_eq!(q.pending(), 1);
        let c = TaskCompletion {
            cache_key: MethodKey::instance("A", "m"),
            ann_key: MethodKey::instance("A", "m"),
            entry_id: 1,
            sig_version: 1,
            body_fp: None,
            own_sig_fp: 0,
            epochs: (0, 0, 0),
            trigger: None,
            record_blame: false,
            policy: CheckPolicy::Deferred,
            verdict: TaskVerdict::Panicked("x".into()),
            duration_ns: 1,
            queue_ns: 0,
        };
        q.complete(c);
        assert!(q.has_ready());
        q.wait_idle(); // returns immediately: nothing pending
        assert_eq!(q.drain().len(), 1);
        assert!(!q.has_ready());
    }
}
