//! The owned world snapshot a [`crate::CheckTask`] carries: everything
//! `check_sig` reads — ancestor chains, the annotation table, variable
//! declarations — captured as plain owned maps so the capture is `Send`
//! and a worker thread checks against *exactly* the state the task was
//! extracted from, no matter what the interpreter thread does meanwhile.
//!
//! The snapshot also remembers the capture-time epoch fingerprints
//! (type-table, class-hierarchy shape, variable types). They are what
//! makes asynchronous results safe to land: at publication the engine
//! compares them (or replays the outcome's resolution witnesses) against
//! its *current* state, and a mismatch discards the result as stale —
//! never adopted.

use hb_check::{ClassInfo, TypeTable};
use hb_rdl::{MethodKey, TableEntry};
use hb_syntax::Span;
use hb_types::Type;
use std::collections::HashMap;

/// An owned, `Send + Sync` capture of the checker-visible world: class
/// hierarchy + type table + variable declarations + epoch fingerprints.
/// Built once per (table, hierarchy, variable) state by the engine and
/// shared across every task extracted at that state via `Arc`.
pub struct WorldSnapshot {
    /// Class → full ancestor chain (the class itself first, `Object`
    /// last), mirroring the live registry's resolution chains.
    chains: HashMap<String, Vec<String>>,
    /// The annotation table (owned copies of every entry).
    table: HashMap<MethodKey, TableEntry>,
    /// Instance-variable declarations keyed `(class, name)`.
    ivars: HashMap<(String, String), (Type, Span)>,
    /// Class-variable declarations keyed `(class, name)`.
    cvars: HashMap<(String, String), (Type, Span)>,
    /// Global-variable declarations.
    gvars: HashMap<String, (Type, Span)>,
    /// Capture-time `(table_fp, hierarchy_fp, var_fp)` epoch
    /// fingerprints — compared at publication to detect staleness.
    pub epochs: (u64, u64, u64),
}

impl WorldSnapshot {
    /// Assembles a snapshot from its captured parts (the engine-side
    /// extraction walks the live registry and `RdlState`).
    pub fn new(
        chains: HashMap<String, Vec<String>>,
        table: HashMap<MethodKey, TableEntry>,
        ivars: HashMap<(String, String), (Type, Span)>,
        cvars: HashMap<(String, String), (Type, Span)>,
        gvars: HashMap<String, (Type, Span)>,
        epochs: (u64, u64, u64),
    ) -> WorldSnapshot {
        WorldSnapshot {
            chains,
            table,
            ivars,
            cvars,
            gvars,
            epochs,
        }
    }

    /// The captured entry for `key`, if any (used to attach each
    /// dependency's at-check signature version and fingerprint to a
    /// passing outcome).
    pub fn table_entry(&self, key: &MethodKey) -> Option<&TableEntry> {
        self.table.get(key)
    }

    /// Number of captured annotation entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// A copy of this snapshot with `entries` overlaid on the captured
    /// table — the *hypothesis world* the inference pass verifies
    /// candidates against: every candidate signature is visible to every
    /// other candidate's check, so mutually-recursive unannotated methods
    /// can verify in the same round. Existing entries for the same key
    /// are shadowed (the overlay wins); chains, variable declarations and
    /// epochs are shared unchanged.
    pub fn overlay(
        &self,
        entries: impl IntoIterator<Item = (MethodKey, TableEntry)>,
    ) -> WorldSnapshot {
        let mut table = self.table.clone();
        for (k, e) in entries {
            table.insert(k, e);
        }
        WorldSnapshot {
            chains: self.chains.clone(),
            table,
            ivars: self.ivars.clone(),
            cvars: self.cvars.clone(),
            gvars: self.gvars.clone(),
            epochs: self.epochs,
        }
    }
}

impl ClassInfo for WorldSnapshot {
    fn ancestors(&self, class: &str) -> Vec<String> {
        match self.chains.get(class) {
            Some(chain) => chain.clone(),
            // Unknown classes degrade exactly like the live registry view.
            None => vec![class.to_string(), "Object".to_string()],
        }
    }

    fn is_descendant(&self, sub: &str, sup: &str) -> bool {
        sub == sup
            || sup == "Object"
            || self
                .chains
                .get(sub)
                .is_some_and(|c| c.iter().any(|a| a == sup))
    }

    fn class_exists(&self, name: &str) -> bool {
        self.chains.contains_key(name)
    }
}

impl TypeTable for WorldSnapshot {
    fn lookup_along_names(
        &self,
        classes: &[String],
        class_level: bool,
        method: &str,
    ) -> Option<(MethodKey, TableEntry)> {
        let method = hb_intern::Sym::intern(method);
        for class in classes {
            let key = MethodKey {
                class: hb_intern::Sym::intern(class),
                class_level,
                method,
            };
            if let Some(e) = self.table.get(&key) {
                return Some((key, e.clone()));
            }
        }
        None
    }

    fn ivar_decl(&self, classes: &[String], ivar: &str) -> Option<(Type, Span)> {
        for c in classes {
            if let Some(d) = self.ivars.get(&(c.clone(), ivar.to_string())) {
                return Some(d.clone());
            }
        }
        None
    }

    fn cvar_decl(&self, classes: &[String], cvar: &str) -> Option<(Type, Span)> {
        for c in classes {
            if let Some(d) = self.cvars.get(&(c.clone(), cvar.to_string())) {
                return Some(d.clone());
            }
        }
        None
    }

    fn gvar_decl(&self, gvar: &str) -> Option<(Type, Span)> {
        self.gvars.get(gvar).cloned()
    }

    /// Usage statistics are re-marked against the live table when the
    /// derivation is adopted; marking a snapshot would be lost work.
    fn mark_used(&self, _key: &MethodKey) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_rdl::AnnotationSource;
    use hb_types::{parse_method_type, MethodSig};

    fn snap() -> WorldSnapshot {
        let mut chains = HashMap::new();
        chains.insert(
            "Talk".to_string(),
            vec!["Talk".to_string(), "Base".to_string(), "Object".to_string()],
        );
        chains.insert(
            "Base".to_string(),
            vec!["Base".to_string(), "Object".to_string()],
        );
        let mut table = HashMap::new();
        table.insert(
            MethodKey::instance("Base", "save"),
            TableEntry {
                sig: MethodSig::single(parse_method_type("() -> %bool").unwrap()),
                check: false,
                always_dyn_check: false,
                source: AnnotationSource::Static,
                version: 3,
                span: Span::dummy(),
            },
        );
        WorldSnapshot::new(
            chains,
            table,
            HashMap::new(),
            HashMap::new(),
            HashMap::new(),
            (1, 2, 3),
        )
    }

    #[test]
    fn chain_queries_mirror_the_live_view() {
        let w = snap();
        assert_eq!(w.ancestors("Talk"), vec!["Talk", "Base", "Object"]);
        assert_eq!(w.ancestors("Zzz"), vec!["Zzz", "Object"]);
        assert!(w.is_descendant("Talk", "Base"));
        assert!(w.is_descendant("Talk", "Object"));
        assert!(!w.is_descendant("Base", "Talk"));
        assert!(w.class_exists("Base"));
        assert!(!w.class_exists("Zzz"));
    }

    #[test]
    fn table_resolves_along_chains() {
        let w = snap();
        let chain: Vec<String> = w.ancestors("Talk");
        let (key, e) = TypeTable::lookup_along_names(&w, &chain, false, "save").unwrap();
        assert_eq!(key, MethodKey::instance("Base", "save"));
        assert_eq!(e.version, 3);
        assert!(TypeTable::lookup_along_names(&w, &chain, false, "missing").is_none());
    }

    #[test]
    fn overlay_shadows_and_extends_the_table() {
        let w = snap();
        let cand = TableEntry {
            sig: MethodSig::single(parse_method_type("(Fixnum) -> Fixnum").unwrap()),
            check: true,
            always_dyn_check: false,
            source: AnnotationSource::Inferred,
            version: 1,
            span: Span::dummy(),
        };
        let o = w.overlay([
            (MethodKey::instance("Talk", "bump"), cand.clone()),
            (MethodKey::instance("Base", "save"), cand.clone()),
        ]);
        // New key visible, existing key shadowed, base snapshot untouched.
        assert_eq!(o.table_len(), 2);
        assert!(o
            .table_entry(&MethodKey::instance("Talk", "bump"))
            .is_some());
        assert_eq!(
            o.table_entry(&MethodKey::instance("Base", "save"))
                .unwrap()
                .source,
            AnnotationSource::Inferred
        );
        assert_eq!(
            w.table_entry(&MethodKey::instance("Base", "save"))
                .unwrap()
                .source,
            AnnotationSource::Static
        );
        assert_eq!(o.epochs, w.epochs);
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WorldSnapshot>();
    }
}
