# Rolify workload driver: roles are added one at a time, so type
# generation and static checking interleave (many phases, unlike the
# annotate-everything-then-run apps).

def rolify_roles
  ["admin", "editor", "viewer", "author", "reviewer", "chair", "speaker", "student", "professor", "guest"]
end

def rolify_workload(n)
  user = RoleUser.new
  i = 0
  while i < n
    rolify_roles.each do |r|
      user.add_role(r)
      user.send("is_" + r + "?")
    end
    user.role_count
    user.role_list
    user.has_role?("admin")
    i += 1
  end
  nil
end
