# Rolify annotations: static types for the library's entry points and the
# Fig. 2 pre-hook generating a type per dynamic role method.

var_type RoleUser, "@roles", "Array<String>"

type RoleUser, "has_role?", "(String) -> %bool", { "check" => true }
type RoleUser, "add_role", "(String) -> String", { "check" => true }
type RoleUser, "role_count", "() -> Fixnum", { "check" => true }
type RoleUser, "role_list", "() -> String", { "check" => true }
type RoleUser, "define_dynamic_method", "(String) -> %any"

pre RoleUser, "define_dynamic_method" do |role_name|
  type "is_#{role_name}?", "() -> %bool", { "check" => true }
  true
end
