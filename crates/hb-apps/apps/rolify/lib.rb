# Rolify (paper Fig. 2): a metaprogramming library that defines role-query
# methods on demand. The pre-hook in annotations.rb types each generated
# method at the moment it is created.

module Rolify
end

module Rolify::Dynamic
  def define_dynamic_method(role_name)
    self.class.class_eval do
      define_method("is_#{role_name}?".to_sym) do
        has_role?("#{role_name}")
      end if !method_defined?("is_#{role_name}?".to_sym)
    end
  end
end

class RoleUser
  include Rolify::Dynamic

  def initialize
    @roles = []
  end

  def add_role(role)
    @roles << role
    define_dynamic_method(role)
    role
  end

  def has_role?(role)
    @roles.include?(role)
  end

  def role_count
    @roles.size
  end

  def role_list
    @roles.sort.join(",")
  end
end
