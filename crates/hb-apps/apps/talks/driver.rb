# Talks workload driver: routes, seed data, and the request script the
# evaluation replays. Driver methods are never annotated, so they are never
# statically checked — they play the role of the outside world.

$router = Router.new
$router.draw("GET", "/talks", TalksController, :index)
$router.draw("GET", "/talks/show", TalksController, :show)
$router.draw("POST", "/talks/create", TalksController, :create)
$router.draw("GET", "/talks/edit", TalksController, :edit)
$router.draw("POST", "/talks/complete", TalksController, :complete)
$router.draw("GET", "/lists/show", ListsController, :show)
$router.draw("GET", "/lists/subscribed", ListsController, :subscribed)

def talks_seed
  DB.clear
  User.create({ "name" => "alice", "email" => "alice@example.com", "password" => "secret", "admin" => true })
  User.create({ "name" => "bob", "email" => "bob@example.com", "password" => "hunter2", "admin" => false })
  TalkList.create({ "name" => "PLDI", "owner_id" => 1 })
  Talk.create({ "title" => "JIT checking", "abstract" => "Types at run time", "speaker" => "Ren", "owner_id" => 1, "talk_list_id" => 1, "completed" => false })
  Talk.create({ "title" => "Gradual typing", "abstract" => "More types", "speaker" => "Foster", "owner_id" => 2, "talk_list_id" => 1, "completed" => false })
  Subscription.create({ "user_id" => 2, "talk_list_id" => 1 })
  nil
end

def talks_requests
  $router.dispatch("GET", "/talks")
  $router.dispatch("GET", "/talks/show", { :id => 1 })
  $router.dispatch("POST", "/talks/create", { :title => "New talk", :speaker => "Someone", :user_id => 1 })
  $router.dispatch("GET", "/talks/edit", { :id => 1 })
  $router.dispatch("GET", "/lists/show", { :id => 1 })
  $router.dispatch("GET", "/lists/subscribed", { :user_id => 2 })
  $router.dispatch("POST", "/talks/complete", { :id => 2 })
  nil
end

def talks_workload(n)
  i = 0
  while i < n
    talks_requests
    i += 1
  end
  nil
end
