# v1: head's body changes (stars instead of double equals). Its dependent
# row must re-check; page (which depends on row, not head) stays cached.

class TalkFormatter
  def head(talk)
    "** " + talk.display_title + " **"
  end

  def row(talk)
    head(talk) + " by " + talk.speaker
  end

  def page(list)
    rows = list.upcoming.map { |t| row(t) }
    list.name + "\n" + rows.join("\n")
  end

  def footer
    "-- end of page --"
  end
end
