# v6: a sweeping restyle — four method bodies change (head, row, footer,
# banner); page and sidebar are untouched.

class TalkFormatter
  def head(talk)
    "# " + talk.display_title
  end

  def row(talk)
    head(talk) + " — " + talk.speaker
  end

  def page(list)
    rows = list.upcoming.map { |t| row(t) }
    list.name + "\n" + rows.join("\n")
  end

  def footer
    "(c) talks"
  end

  def banner(list)
    "~ " + list.name + " ~"
  end

  def sidebar(list)
    "lists: " + list.name
  end
end
