# Types for the TalkFormatter under live update. banner/sidebar are typed
# before they exist — annotations for not-yet-defined methods are inert
# until the method appears (no ordering dependency, paper Section 3).

type TalkFormatter, "head", "(Talk) -> String", { "check" => true }
type TalkFormatter, "row", "(Talk) -> String", { "check" => true }
type TalkFormatter, "page", "(TalkList) -> String", { "check" => true }
type TalkFormatter, "footer", "() -> String", { "check" => true }
type TalkFormatter, "banner", "(TalkList) -> String", { "check" => true }
type TalkFormatter, "sidebar", "(TalkList) -> String", { "check" => true }
