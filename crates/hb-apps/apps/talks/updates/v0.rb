# Update experiment v0: the initial TalkFormatter.
# Dependency shape: row -> head, page -> row; footer stands alone.

class TalkFormatter
  def head(talk)
    "== " + talk.display_title + " =="
  end

  def row(talk)
    head(talk) + " by " + talk.speaker
  end

  def page(list)
    rows = list.upcoming.map { |t| row(t) }
    list.name + "\n" + rows.join("\n")
  end

  def footer
    "-- end of page --"
  end
end
