# v3: byte-for-byte identical bodies to v2 (a comment-only edit). The CFG
# differ must find nothing changed and nothing re-checks.

class TalkFormatter
  def head(talk)
    "** " + talk.display_title + " **"
  end

  def row(talk)
    head(talk) + " presented by " + talk.speaker
  end

  def page(list)
    rows = list.upcoming.map { |t| row(t) }
    list.name + "\n" + rows.join("\n")
  end

  def footer
    "-- fin --"
  end

  def banner(list)
    "[ " + list.name + " ]"
  end
end
