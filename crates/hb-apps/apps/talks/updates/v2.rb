# v2: two methods change (row, footer) and banner is added.

class TalkFormatter
  def head(talk)
    "** " + talk.display_title + " **"
  end

  def row(talk)
    head(talk) + " presented by " + talk.speaker
  end

  def page(list)
    rows = list.upcoming.map { |t| row(t) }
    list.name + "\n" + rows.join("\n")
  end

  def footer
    "-- fin --"
  end

  def banner(list)
    "[ " + list.name + " ]"
  end
end
