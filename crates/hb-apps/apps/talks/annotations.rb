# Talks annotations: schema-driven generated types for the four models plus
# checked types for every app method.

annotate_model(User)
annotate_model(Talk)
annotate_model(TalkList)
annotate_model(Subscription)

type User, "subscribed_talks", "(Symbol) -> Array<Talk>", { "check" => true }

type Talk, "owner?", "(User) -> %bool", { "check" => true }
type Talk, "display_title", "() -> String", { "check" => true }
type Talk, "summary", "() -> String", { "check" => true }
type Talk, "mark_completed", "() -> %bool", { "check" => true }

type TalkList, "upcoming", "() -> Array<Talk>", { "check" => true }

type ApplicationController, "current_user", "() -> User", { "check" => true }
type TalksHelper, "format_talk_row", "(Talk) -> String", { "check" => true }

type TalksController, "index", "() -> String", { "check" => true }
type TalksController, "show", "() -> String", { "check" => true }
type TalksController, "create", "() -> String", { "check" => true }
type TalksController, "edit", "() -> String", { "check" => true }
type TalksController, "compute_edit_fields", "(Talk) -> String", { "check" => true }
type TalksController, "complete", "() -> String", { "check" => true }

type ListsController, "show", "() -> String", { "check" => true }
type ListsController, "subscribed", "() -> String", { "check" => true }
