# Talks models (paper Section 5, the first subject app).

class User < ActiveRecord::Base
  has_many :talks, { :class_name => "Talk", :foreign_key => "owner_id" }

  def subscribed_talks(scope)
    list_ids = Subscription.where("user_id", id).map { |s| s.talk_list_id }
    talks = Talk.all
    if scope == :all
      talks.select { |t| list_ids.include?(t.talk_list_id) }
    else
      talks.select { |t| list_ids.include?(t.talk_list_id) && !t.completed }
    end
  end
end

class Talk < ActiveRecord::Base
  belongs_to :owner, { :class_name => "User" }
  belongs_to :talk_list, { :class_name => "TalkList" }

  def owner?(user)
    owner == user
  end

  def display_title
    "#{title} (#{speaker})"
  end

  def summary
    display_title + ": " + abstract
  end

  def mark_completed
    update_attribute("completed", true)
  end
end

class TalkList < ActiveRecord::Base
  belongs_to :owner, { :class_name => "User" }
  has_many :talks, { :class_name => "Talk", :foreign_key => "talk_list_id" }

  def upcoming
    talks.reject { |t| t.completed }
  end
end

class Subscription < ActiveRecord::Base
  belongs_to :user, { :class_name => "User" }
  belongs_to :talk_list, { :class_name => "TalkList" }
end
