# Talks controllers and view helper.

class ApplicationController < ActionController::Base
  def current_user
    uid = params[:user_id]
    if uid
      User.find(uid.rdl_cast("Fixnum"))
    else
      User.find(1)
    end
  end
end

module TalksHelper
  def format_talk_row(t)
    "| " + t.display_title + " | " + t.speaker + " |"
  end
end

class TalksController < ApplicationController
  include TalksHelper

  def index
    rows = Talk.all.map { |t| format_talk_row(t) }
    render(rows.join("\n"))
  end

  def show
    t = Talk.find(params[:id].rdl_cast("Fixnum"))
    mine = t.owner?(current_user)
    if mine
      render(t.summary + " (yours)")
    else
      render(t.summary)
    end
  end

  def create
    t = Talk.new({
      "title" => params[:title].rdl_cast("String"),
      "abstract" => "TBD",
      "speaker" => params[:speaker].rdl_cast("String"),
      "owner_id" => current_user.id,
      "talk_list_id" => 1,
      "completed" => false
    })
    t.save
    redirect_to("/talks")
  end

  def edit
    t = Talk.find(params[:id].rdl_cast("Fixnum"))
    render(compute_edit_fields(t))
  end

  def compute_edit_fields(t)
    "title=" + t.title + "&speaker=" + t.speaker
  end

  def complete
    t = Talk.find(params[:id].rdl_cast("Fixnum"))
    t.mark_completed
    redirect_to("/talks")
  end
end

class ListsController < ApplicationController
  def show
    l = TalkList.find(params[:id].rdl_cast("Fixnum"))
    up = l.upcoming
    render(l.name + ": " + up.map { |t| t.display_title }.join(","))
  end

  def subscribed
    user = current_user
    talks = user.subscribed_talks(:all)
    render(talks.map { |t| t.display_title }.join(","))
  end
end
