# CCT annotations: Fig. 3's add_types call generates the Struct accessor
# types; the processing pipeline is statically checked against them.

Transaction.add_types("String", "String", "String")

var_type Account, "@name", "String"
var_type Account, "@credits", "Fixnum"
var_type Account, "@debits", "Fixnum"

type Account, "holder", "() -> String", { "check" => true }
type Account, "apply", "(Transaction) -> Account", { "check" => true }
type Account, "balance", "() -> Fixnum", { "check" => true }

type ApplicationRunner, "process_transactions", "(Array<Transaction>) -> Array<String>", { "check" => true }
type ApplicationRunner, "run", "(Array<Transaction>) -> Array<String>", { "check" => true }
