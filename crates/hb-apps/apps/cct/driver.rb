# CCT workload driver: builds batches of string-encoded transactions (as
# if parsed from a CSV) and runs them through the checked pipeline.

def cct_build_transactions(count)
  names = ["alice", "bob", "carol", "dave"]
  out = []
  i = 0
  while i < count
    kind = i % 2 == 0 ? "credit" : "debit"
    out << Transaction.new(kind, names[i % 4], (i * 10).to_s)
    i += 1
  end
  out
end

def cct_run_once(count)
  runner = ApplicationRunner.new
  runner.run(cct_build_transactions(count))
end

def cct_workload(n, count)
  i = 0
  while i < n
    cct_run_once(count)
    i += 1
  end
  nil
end
