# Boxroom annotations.

annotate_model(BoxUser)
annotate_model(Folder)
annotate_model(UserFile)

type Folder, "file_names", "() -> Array<String>", { "check" => true }
type Folder, "total_size", "() -> Fixnum", { "check" => true }
type Folder, "big_files", "(Fixnum) -> Array<UserFile>", { "check" => true }

type UserFile, "human_size", "() -> String", { "check" => true }
type UserFile, "uploaded_by?", "(BoxUser) -> %bool", { "check" => true }

type FoldersController, "index", "() -> String", { "check" => true }
type FoldersController, "show", "() -> String", { "check" => true }
type FoldersController, "large", "() -> String", { "check" => true }

type FilesController, "index", "() -> String", { "check" => true }
type FilesController, "create", "() -> String", { "check" => true }
