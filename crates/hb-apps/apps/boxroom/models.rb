# Boxroom models: a file-sharing app (folders, files, users).

class BoxUser < ActiveRecord::Base
end

class Folder < ActiveRecord::Base
  has_many :user_files, { :class_name => "UserFile", :foreign_key => "folder_id" }

  def file_names
    user_files.map { |f| f.name }
  end

  def total_size
    user_files.map { |f| f.size_bytes }.sum
  end

  def big_files(limit)
    user_files.select { |f| f.size_bytes > limit }
  end
end

class UserFile < ActiveRecord::Base
  belongs_to :folder, { :class_name => "Folder" }
  belongs_to :uploader, { :class_name => "BoxUser" }

  def human_size
    "#{name}: #{size_bytes} bytes"
  end

  def uploaded_by?(user)
    uploader == user
  end
end
