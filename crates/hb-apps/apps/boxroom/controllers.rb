# Boxroom controllers.

class FoldersController < ActionController::Base
  def index
    render(Folder.all.map { |f| f.name }.join(","))
  end

  def show
    f = Folder.find(params[:id].rdl_cast("Fixnum"))
    render(f.name + ": " + f.file_names.join(",") + " (" + f.total_size.to_s + " bytes)")
  end

  def large
    f = Folder.find(params[:id].rdl_cast("Fixnum"))
    names = f.big_files(1000).map { |x| x.name }
    render(names.join(","))
  end
end

class FilesController < ActionController::Base
  def index
    render(UserFile.all.map { |f| f.human_size }.join("\n"))
  end

  def create
    f = UserFile.new({
      "name" => params[:name].rdl_cast("String"),
      "folder_id" => params[:folder_id].rdl_cast("Fixnum"),
      "size_bytes" => params[:size].rdl_cast("Fixnum"),
      "uploader_id" => 1
    })
    f.save
    redirect_to("/files")
  end
end
