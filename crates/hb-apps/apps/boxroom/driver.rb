# Boxroom workload driver.

$box_router = Router.new
$box_router.draw("GET", "/folders", FoldersController, :index)
$box_router.draw("GET", "/folders/show", FoldersController, :show)
$box_router.draw("GET", "/folders/large", FoldersController, :large)
$box_router.draw("GET", "/files", FilesController, :index)
$box_router.draw("POST", "/files/create", FilesController, :create)

def boxroom_seed
  DB.clear
  BoxUser.create({ "name" => "admin", "admin" => true })
  BoxUser.create({ "name" => "guest", "admin" => false })
  Folder.create({ "name" => "root", "parent_id" => 0 })
  Folder.create({ "name" => "papers", "parent_id" => 1 })
  UserFile.create({ "name" => "pldi16.pdf", "folder_id" => 2, "size_bytes" => 4096, "uploader_id" => 1 })
  UserFile.create({ "name" => "notes.txt", "folder_id" => 2, "size_bytes" => 128, "uploader_id" => 2 })
  UserFile.create({ "name" => "talk.key", "folder_id" => 1, "size_bytes" => 20480, "uploader_id" => 1 })
  nil
end

def boxroom_requests
  $box_router.dispatch("GET", "/folders")
  $box_router.dispatch("GET", "/folders/show", { :id => 2 })
  $box_router.dispatch("GET", "/folders/large", { :id => 2 })
  $box_router.dispatch("GET", "/files")
  $box_router.dispatch("POST", "/files/create", { :name => "new.bin", :folder_id => 1, :size => 2048 })
  UserFile.find(1).uploaded_by?(BoxUser.find(1))
  nil
end

def boxroom_workload(n)
  i = 0
  while i < n
    boxroom_requests
    i += 1
  end
  nil
end
