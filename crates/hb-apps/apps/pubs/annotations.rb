# Pubs annotations.

annotate_model(Author)
annotate_model(Publication)

type Publication, "citation", "() -> String", { "check" => true }
type Publication, "venue_line", "() -> String", { "check" => true }
type Publication, "bibtex_key", "() -> String", { "check" => true }
type Publication, "journal?", "() -> %bool", { "check" => true }

type PubsController, "index", "() -> String", { "check" => true }
type PubsController, "journals", "() -> String", { "check" => true }
type PubsController, "by_year", "() -> String", { "check" => true }
