# Pubs models: publication lists. The hot formatting methods make this the
# paper's no-cache stress case — without the derivation cache every
# citation render re-checks.

class Author < ActiveRecord::Base
  has_many :publications, { :class_name => "Publication", :foreign_key => "author_id" }
end

class Publication < ActiveRecord::Base
  belongs_to :author, { :class_name => "Author" }

  def citation
    author.name + ". " + title + ". " + venue_line
  end

  def venue_line
    venue + " " + year.to_s
  end

  def bibtex_key
    author.name.downcase + year.to_s
  end

  def journal?
    kind == "journal"
  end
end
