# Pubs workload driver. Seeds a couple dozen publications so each request
# exercises the formatting methods many times — the cache ablation's
# pressure point.

$pubs_router = Router.new
$pubs_router.draw("GET", "/pubs", PubsController, :index)
$pubs_router.draw("GET", "/pubs/journals", PubsController, :journals)
$pubs_router.draw("GET", "/pubs/year", PubsController, :by_year)

def pubs_seed
  DB.clear
  Author.create({ "name" => "Ren" })
  Author.create({ "name" => "Foster" })
  Author.create({ "name" => "Vitousek" })
  venues = ["PLDI", "POPL", "OOPSLA", "ICFP"]
  kinds = ["conference", "journal"]
  i = 0
  while i < 24
    Publication.create({
      "title" => "Paper #{i}",
      "venue" => venues[i % 4],
      "year" => 2010 + (i % 8),
      "kind" => kinds[i % 2],
      "author_id" => (i % 3) + 1
    })
    i += 1
  end
  nil
end

def pubs_requests
  $pubs_router.dispatch("GET", "/pubs")
  $pubs_router.dispatch("GET", "/pubs/journals")
  $pubs_router.dispatch("GET", "/pubs/year", { :year => 2012 })
  nil
end

def pubs_workload(n)
  i = 0
  while i < n
    pubs_requests
    i += 1
  end
  nil
end
