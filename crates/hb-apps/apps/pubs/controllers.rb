# Pubs controllers.

class PubsController < ActionController::Base
  def index
    render(Publication.all.map { |p| p.citation }.join("\n"))
  end

  def journals
    js = Publication.all.select { |p| p.journal? }
    render(js.map { |p| p.bibtex_key }.join(","))
  end

  def by_year
    y = params[:year].rdl_cast("Fixnum")
    pubs = Publication.all.select { |p| p.year == y }
    render(pubs.map { |p| p.citation }.join("\n"))
  end
end
