# Countries workload driver.

def countries_workload(n)
  i = 0
  while i < n
    idx = CountryIndex.new
    idx.codes
    idx.all.each do |c|
      c.summary
      c.german_name
      c.code
    end
    idx.total_population
    idx.currencies
    idx.names_in("Europe")
    idx.german_names
    i += 1
  end
  nil
end
