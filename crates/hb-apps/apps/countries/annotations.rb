# Countries annotations: every type is written literally at load time —
# no metaprogramming anywhere in this app (the paper's baseline row).

var_type Country, "@row", "Hash<String, %any>"
var_type CountryIndex, "@data", "Hash<String, Hash<String, %any>>"

type DataFile, "self.read", "(String) -> %any"

type Country, "initialize", "(Hash<String, %any>) -> %any", { "check" => true }
type Country, "code", "() -> String", { "check" => true }
type Country, "name", "() -> String", { "check" => true }
type Country, "region", "() -> String", { "check" => true }
type Country, "subregion", "() -> String", { "check" => true }
type Country, "currency", "() -> String", { "check" => true }
type Country, "population", "() -> Fixnum", { "check" => true }
type Country, "translations", "() -> Hash<String, String>", { "check" => true }
type Country, "german_name", "() -> String", { "check" => true }
type Country, "summary", "() -> String", { "check" => true }
type Country, "in_region?", "(String) -> %bool", { "check" => true }

type CountryIndex, "initialize", "() -> %any", { "check" => true }
type CountryIndex, "codes", "() -> Array<String>", { "check" => true }
type CountryIndex, "lookup", "(String) -> Country", { "check" => true }
type CountryIndex, "all", "() -> Array<Country>", { "check" => true }
type CountryIndex, "total_population", "() -> Fixnum", { "check" => true }
type CountryIndex, "currencies", "() -> Array<String>", { "check" => true }
type CountryIndex, "names_in", "(String) -> Array<String>", { "check" => true }
type CountryIndex, "german_names", "() -> Array<String>", { "check" => true }
