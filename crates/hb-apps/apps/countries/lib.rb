# Countries (the no-metaprogramming baseline): deserialised data of
# unknown shape is cast into typed form with rdl_cast at every read —
# paper Section 4 "Type Casts".

class Country
  def initialize(row)
    @row = row
  end

  def code
    @row["alpha2"].rdl_cast("String")
  end

  def name
    @row["name"].rdl_cast("String")
  end

  def region
    @row["region"].rdl_cast("String")
  end

  def subregion
    @row["subregion"].rdl_cast("String")
  end

  def currency
    @row["currency"].rdl_cast("String")
  end

  def population
    @row["population"].rdl_cast("Fixnum")
  end

  def translations
    @row["translations"].rdl_cast("Hash<String, String>")
  end

  def german_name
    translations["de"].rdl_cast("String")
  end

  def summary
    name + " (" + region + "/" + subregion + ") pop " + population.to_s
  end

  def in_region?(r)
    region == r
  end
end

class CountryIndex
  def initialize
    @data = DataFile.read("countries").rdl_cast("Hash<String, Hash<String, %any>>")
  end

  def codes
    @data.keys.sort
  end

  def lookup(code)
    row = @data[code].rdl_cast("Hash<String, %any>")
    Country.new(row)
  end

  def all
    codes.map { |c| lookup(c) }
  end

  def total_population
    all.map { |c| c.population }.sum
  end

  def currencies
    all.map { |c| c.currency }.uniq.sort
  end

  def names_in(region)
    all.select { |c| c.in_region?(region) }.map { |c| c.name }
  end

  def german_names
    all.map { |c| c.german_name }
  end
end
