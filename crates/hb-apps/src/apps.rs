//! App specifications: sources, annotations, workloads.

/// A subject application, fully described.
pub struct AppSpec {
    pub name: &'static str,
    pub rails: bool,
    pub needs_datafile: bool,
    /// Schema/setup files (not counted in LoC).
    pub schema: &'static [(&'static str, &'static str)],
    /// App code files (counted in LoC; contain the checked methods).
    pub sources: &'static [(&'static str, &'static str)],
    /// Annotation files (skipped in Orig mode).
    pub annotations: &'static [(&'static str, &'static str)],
    /// Workload driver files (never checked, not counted).
    pub driver: &'static [(&'static str, &'static str)],
    /// Expression run once after loading (seeding).
    pub seed: &'static str,
    /// Builds the workload call for `iters` iterations.
    pub workload_call: fn(usize) -> String,
    /// Classes owned by the app (for Table 1's App/All split).
    pub app_classes: &'static [&'static str],
}

/// The Talks Rails app (paper's first subject).
pub fn talks() -> AppSpec {
    AppSpec {
        name: "Talks",
        rails: true,
        needs_datafile: false,
        schema: &[(
            "talks/schema.rb",
            r#"
DB.create_table("users", { "name" => "String", "email" => "String", "password" => "String", "admin" => "%bool" })
DB.create_table("talks", { "title" => "String", "abstract" => "String", "speaker" => "String", "owner_id" => "Fixnum", "talk_list_id" => "Fixnum", "completed" => "%bool" })
DB.create_table("talk_lists", { "name" => "String", "owner_id" => "Fixnum" })
DB.create_table("subscriptions", { "user_id" => "Fixnum", "talk_list_id" => "Fixnum" })
"#,
        )],
        sources: &[
            ("talks/models.rb", include_str!("../apps/talks/models.rb")),
            (
                "talks/controllers.rb",
                include_str!("../apps/talks/controllers.rb"),
            ),
        ],
        annotations: &[(
            "talks/annotations.rb",
            include_str!("../apps/talks/annotations.rb"),
        )],
        driver: &[("talks/driver.rb", include_str!("../apps/talks/driver.rb"))],
        seed: "talks_seed",
        workload_call: |n| format!("talks_workload({n})"),
        app_classes: &[
            "User",
            "Talk",
            "TalkList",
            "Subscription",
            "ApplicationController",
            "TalksHelper",
            "TalksController",
            "ListsController",
            "TalkFormatter",
        ],
    }
}

/// The Boxroom Rails app (file sharing).
pub fn boxroom() -> AppSpec {
    AppSpec {
        name: "Boxroom",
        rails: true,
        needs_datafile: false,
        schema: &[(
            "boxroom/schema.rb",
            r#"
DB.create_table("box_users", { "name" => "String", "admin" => "%bool" })
DB.create_table("folders", { "name" => "String", "parent_id" => "Fixnum" })
DB.create_table("user_files", { "name" => "String", "folder_id" => "Fixnum", "size_bytes" => "Fixnum", "uploader_id" => "Fixnum" })
"#,
        )],
        sources: &[
            (
                "boxroom/models.rb",
                include_str!("../apps/boxroom/models.rb"),
            ),
            (
                "boxroom/controllers.rb",
                include_str!("../apps/boxroom/controllers.rb"),
            ),
        ],
        annotations: &[(
            "boxroom/annotations.rb",
            include_str!("../apps/boxroom/annotations.rb"),
        )],
        driver: &[(
            "boxroom/driver.rb",
            include_str!("../apps/boxroom/driver.rb"),
        )],
        seed: "boxroom_seed",
        workload_call: |n| format!("boxroom_workload({n})"),
        app_classes: &[
            "BoxUser",
            "Folder",
            "UserFile",
            "FoldersController",
            "FilesController",
        ],
    }
}

/// The Pubs Rails app (publication lists; the no-cache stress case).
pub fn pubs() -> AppSpec {
    AppSpec {
        name: "Pubs",
        rails: true,
        needs_datafile: false,
        schema: &[(
            "pubs/schema.rb",
            r#"
DB.create_table("authors", { "name" => "String" })
DB.create_table("publications", { "title" => "String", "venue" => "String", "year" => "Fixnum", "kind" => "String", "author_id" => "Fixnum" })
"#,
        )],
        sources: &[
            ("pubs/models.rb", include_str!("../apps/pubs/models.rb")),
            (
                "pubs/controllers.rb",
                include_str!("../apps/pubs/controllers.rb"),
            ),
        ],
        annotations: &[(
            "pubs/annotations.rb",
            include_str!("../apps/pubs/annotations.rb"),
        )],
        driver: &[("pubs/driver.rb", include_str!("../apps/pubs/driver.rb"))],
        seed: "pubs_seed",
        workload_call: |n| format!("pubs_workload({n})"),
        app_classes: &["Author", "Publication", "PubsController"],
    }
}

/// The Rolify library (paper Fig. 2).
pub fn rolify() -> AppSpec {
    AppSpec {
        name: "Rolify",
        rails: false,
        needs_datafile: false,
        schema: &[],
        sources: &[("rolify/lib.rb", include_str!("../apps/rolify/lib.rb"))],
        annotations: &[(
            "rolify/annotations.rb",
            include_str!("../apps/rolify/annotations.rb"),
        )],
        driver: &[("rolify/driver.rb", include_str!("../apps/rolify/driver.rb"))],
        seed: "",
        workload_call: |n| format!("rolify_workload({n})"),
        app_classes: &["Rolify::Dynamic", "RoleUser"],
    }
}

/// The Credit Card Transactions library (paper Fig. 3).
pub fn cct() -> AppSpec {
    AppSpec {
        name: "CCT",
        rails: false,
        needs_datafile: false,
        schema: &[],
        sources: &[("cct/lib.rb", include_str!("../apps/cct/lib.rb"))],
        annotations: &[(
            "cct/annotations.rb",
            include_str!("../apps/cct/annotations.rb"),
        )],
        driver: &[("cct/driver.rb", include_str!("../apps/cct/driver.rb"))],
        seed: "",
        workload_call: |n| format!("cct_workload({n}, 40)"),
        app_classes: &["Transaction", "Account", "ApplicationRunner", "Struct"],
    }
}

/// The Countries app (no metaprogramming — the baseline).
pub fn countries() -> AppSpec {
    AppSpec {
        name: "Countries",
        rails: false,
        needs_datafile: true,
        schema: &[],
        sources: &[("countries/lib.rb", include_str!("../apps/countries/lib.rb"))],
        annotations: &[(
            "countries/annotations.rb",
            include_str!("../apps/countries/annotations.rb"),
        )],
        driver: &[(
            "countries/driver.rb",
            include_str!("../apps/countries/driver.rb"),
        )],
        seed: "",
        workload_call: |n| format!("countries_workload({n})"),
        app_classes: &["Country", "CountryIndex"],
    }
}

/// All six subject apps in Table 1 order.
pub fn all_apps() -> Vec<AppSpec> {
    vec![talks(), boxroom(), pubs(), rolify(), cct(), countries()]
}
