//! The multi-tenant scenario: one *tenant* is an independent interpreter
//! stack (one `Hummingbird` per subject app) attached to a process-wide
//! [`SharedCache`]. N tenants model N app instances of the same deployment
//! running on N threads: the first instance to call a method pays the
//! static check and publishes the derivation; every other instance adopts
//! it after structural validation, without running `check_sig`.
//!
//! Used by the `tenant_probe` benchmark binary and the multi-tenant tests.

use crate::apps::all_apps;
use crate::{build_app_shared, build_app_with, run_workload};
use hummingbird::{CacheSnapshot, FleetSyncReport, Hummingbird, Mode, SharedCache};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// What one tenant did, split into the build phase (parse/load/seed) and
/// the serve phase (first requests — where the check storm lives — plus
/// the steady workload).
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantRun {
    pub tenant: usize,
    /// Wall time constructing all six apps (parsing, loading, seeding).
    pub build_ns: u64,
    /// Wall time serving the workloads, including each app's first-call
    /// check storm.
    pub serve_ns: u64,
    /// Static checks this tenant actually ran (misses in both tiers).
    pub checks_performed: u64,
    /// First calls answered by adopting another tenant's derivation.
    pub shared_hits: u64,
    /// Steady-state hot-tier hits.
    pub cache_hits: u64,
    /// Calls intercepted by the engine hook.
    pub intercepted_calls: u64,
    /// Nanoseconds this tenant spent deriving (lowering + `check_sig`).
    pub check_ns: u64,
    /// Nanoseconds this tenant spent adopting shared derivations instead.
    pub shared_adopt_ns: u64,
    /// Check tasks enqueued onto the concurrent scheduler.
    pub sched_tasks_enqueued: u64,
    /// Scheduler completions harvested.
    pub sched_tasks_completed: u64,
    /// Scheduler completions discarded as stale (fingerprint mismatch at
    /// publication).
    pub sched_tasks_stale: u64,
    /// Cold calls admitted under `CheckPolicy::Deferred`.
    pub deferred_admissions: u64,
    /// Method bodies compiled to register bytecode (zero on the
    /// tree-walk tier).
    pub bytecode_compiled: u64,
    /// `(receiver class, entry)` pairs patched onto the checked fast
    /// prologue once their derivation landed.
    pub fast_entries_patched: u64,
    /// Fast entries patched back to the guarded prologue by
    /// invalidation.
    pub deopts: u64,
    /// Full snapshot fetches from a fleet daemon (boot).
    pub fleet_fetches: u64,
    /// Delta fetches from a fleet daemon (steady state).
    pub fleet_deltas: u64,
    /// Locally derived entries published back to a fleet daemon.
    pub fleet_publishes: u64,
    /// Eviction notices sent to a fleet daemon.
    pub fleet_evictions: u64,
}

impl TenantRun {
    /// Fraction of this tenant's first-call checks satisfied by the shared
    /// tier instead of running the checker. 1.0 for a fully warm tenant.
    pub fn warm_hit_rate(&self) -> f64 {
        let first_calls = self.shared_hits + self.checks_performed;
        if first_calls == 0 {
            return 0.0;
        }
        self.shared_hits as f64 / first_calls as f64
    }

    /// Total first calls resolved (derived or adopted).
    pub fn first_calls(&self) -> u64 {
        self.shared_hits + self.checks_performed
    }

    /// Total time spent resolving first calls, derived or adopted.
    pub fn first_call_ns(&self) -> u64 {
        self.check_ns + self.shared_adopt_ns
    }

    /// Folds one app's engine statistics into this tenant's totals.
    fn absorb(&mut self, hb: &Hummingbird) {
        let s = hb.stats();
        self.checks_performed += s.checks_performed;
        self.shared_hits += s.shared_hits;
        self.cache_hits += s.cache_hits;
        self.intercepted_calls += s.intercepted_calls;
        self.check_ns += s.check_ns;
        self.shared_adopt_ns += s.shared_adopt_ns;
        self.sched_tasks_enqueued += s.sched_tasks_enqueued;
        self.sched_tasks_completed += s.sched_tasks_completed;
        self.sched_tasks_stale += s.sched_tasks_stale;
        self.deferred_admissions += s.deferred_admissions;
        self.bytecode_compiled += s.bytecode_compiled;
        self.fast_entries_patched += s.fast_entries_patched;
        self.deopts += s.deopts;
        self.fleet_fetches += s.fleet_fetches;
        self.fleet_deltas += s.fleet_deltas;
        self.fleet_publishes += s.fleet_publishes;
        self.fleet_evictions += s.fleet_evictions;
    }
}

/// Boots all six subject apps as one tenant against `shared` and serves
/// `iters` workload iterations per app. Aggregates engine statistics
/// across the apps.
pub fn run_tenant(tenant: usize, shared: &Arc<SharedCache>, iters: usize) -> TenantRun {
    let mut out = TenantRun {
        tenant,
        ..TenantRun::default()
    };
    let specs = all_apps();
    let t0 = Instant::now();
    let mut apps: Vec<_> = specs
        .iter()
        .map(|spec| build_app_shared(spec, Mode::Full, Some(shared.clone())))
        .collect();
    out.build_ns = t0.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    for (spec, hb) in specs.iter().zip(apps.iter_mut()) {
        run_workload(spec, hb, iters);
    }
    out.serve_ns = t1.elapsed().as_nanos() as u64;
    for hb in &apps {
        out.absorb(hb);
    }
    out
}

/// Boots all six subject apps as one *fleet-attached* tenant: the apps
/// share one per-tenant tier warmed over the `hb-fleetd` socket at
/// `socket` before any code loads, and locally derived entries are
/// published back with a final [`hummingbird::Hummingbird::fleet_sync`].
/// Only the first app carries the fleet session — all six share its
/// tier, so one boot fetch warms the whole tenant and one sync drains
/// every app's publications.
///
/// Returns the run together with the final sync report, or `None` when
/// the daemon was unreachable (the tenant still runs, degraded to local
/// checking — that degradation is the soundness story, not an error).
pub fn run_tenant_fleet(
    tenant: usize,
    socket: &Path,
    iters: usize,
) -> (TenantRun, Option<FleetSyncReport>) {
    let mut out = TenantRun {
        tenant,
        ..TenantRun::default()
    };
    let shared = Arc::new(SharedCache::new());
    let specs = all_apps();
    let t0 = Instant::now();
    let mut apps: Vec<Hummingbird> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut builder = Hummingbird::builder()
                .mode(Mode::Full)
                .shared_cache(shared.clone());
            if i == 0 {
                builder = builder.fleet_socket(socket);
            }
            build_app_with(spec, builder)
        })
        .collect();
    out.build_ns = t0.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    for (spec, hb) in specs.iter().zip(apps.iter_mut()) {
        run_workload(spec, hb, iters);
    }
    out.serve_ns = t1.elapsed().as_nanos() as u64;
    let report = apps[0].fleet_sync().ok();
    for hb in &apps {
        out.absorb(hb);
    }
    (out, report)
}

/// Boots one cold tenant (all six apps) against a fresh shared tier and
/// serializes the tier — the snapshot a rolling deploy would write to
/// disk at the end of a canary boot. Returns the snapshot together with
/// the cold tenant's run (the baseline the warm boot is compared to).
pub fn fleet_snapshot(iters: usize) -> (CacheSnapshot, TenantRun) {
    let shared = Arc::new(SharedCache::new());
    let cold = run_tenant(0, &shared, iters);
    (shared.snapshot(), cold)
}

/// Boots one tenant against a tier rebuilt from `snapshot` — the
/// fresh-process warm boot. The tenant's [`TenantRun::warm_hit_rate`]
/// reports how many of its first calls were resolved by adoption from
/// the snapshot instead of running `check_sig`.
///
/// # Panics
///
/// Panics if the snapshot fails to load (malformed artifact — a harness
/// defect, not a runtime condition).
pub fn run_tenant_from_snapshot(
    tenant: usize,
    snapshot: &CacheSnapshot,
    iters: usize,
) -> TenantRun {
    let shared = Arc::new(SharedCache::new());
    shared
        .load_snapshot(snapshot)
        .expect("fleet snapshot must load");
    run_tenant(tenant, &shared, iters)
}
