//! Talks history: the six historical type errors (paper §5 "Type Errors in
//! Talks") and the seven-version live-update sequence (Table 2).

use crate::apps::talks;
use crate::build_app;
use hummingbird::{ErrorKind, Hummingbird, Mode, ReloadReport, TypeDiagnostic};

/// One historical error version: the buggy code (re-opening a class), the
/// request that triggers the check, the expected blame fragment, and the
/// stable diagnostic code the structured surface reports.
pub struct ErrorVersion {
    /// The paper's version label.
    pub version: &'static str,
    pub description: &'static str,
    pub buggy_source: &'static str,
    pub trigger: &'static str,
    pub expected_fragment: &'static str,
    /// The `HBxxxx` code this error carries (both just-in-time and under
    /// eager `hb_lint` checking).
    pub expected_code: &'static str,
}

/// The six historical Talks errors, one per paper bullet.
pub fn error_versions() -> Vec<ErrorVersion> {
    vec![
        ErrorVersion {
            version: "1/8/12-4",
            description: "misspelled compute_edit_fields as copute_edit_fields",
            buggy_source: r#"
class TalksController < ApplicationController
  def edit
    t = Talk.find(params[:id].rdl_cast("Fixnum"))
    render(copute_edit_fields(t))
  end
end
"#,
            trigger: "$router.dispatch(\"GET\", \"/talks/edit\", { :id => 1 })",
            expected_fragment: "no type for TalksController#copute_edit_fields",
            expected_code: "HB0003",
        },
        ErrorVersion {
            version: "1/7/12-5",
            description: "passed a block to upcoming, whose type takes none",
            buggy_source: r#"
class ListsController < ApplicationController
  def show
    l = TalkList.find(params[:id].rdl_cast("Fixnum"))
    up = l.upcoming { |a, b| a }
    render(l.name + ": " + up.map { |t| t.display_title }.join(","))
  end
end
"#,
            trigger: "$router.dispatch(\"GET\", \"/lists/show\", { :id => 1 })",
            expected_fragment: "called with a block but its type does not take one",
            expected_code: "HB0008",
        },
        ErrorVersion {
            version: "1/26/12-3",
            description: "called subscribed_talks(true) but the argument is a Symbol",
            buggy_source: r#"
class ListsController < ApplicationController
  def subscribed
    user = current_user
    talks = user.subscribed_talks(true)
    render(talks.map { |t| t.display_title }.join(","))
  end
end
"#,
            trigger: "$router.dispatch(\"GET\", \"/lists/subscribed\", { :user_id => 2 })",
            expected_fragment: "argument type mismatch calling User#subscribed_talks",
            expected_code: "HB0002",
        },
        ErrorVersion {
            version: "1/28/12",
            description: "called .object on a String-returning method",
            buggy_source: r#"
class Talk < ActiveRecord::Base
  def display_title
    title.object
  end
end
"#,
            trigger: "$router.dispatch(\"GET\", \"/talks/show\", { :id => 1 })",
            expected_fragment: "no type for String#object",
            expected_code: "HB0003",
        },
        ErrorVersion {
            version: "2/6/12-2",
            description: "used undefined variable old_talk (treated as a no-arg method)",
            buggy_source: r#"
class TalksController < ApplicationController
  def edit
    t = Talk.find(params[:id].rdl_cast("Fixnum"))
    render(compute_edit_fields(old_talk))
  end
end
"#,
            trigger: "$router.dispatch(\"GET\", \"/talks/edit\", { :id => 1 })",
            expected_fragment: "no type for TalksController#old_talk",
            expected_code: "HB0003",
        },
        ErrorVersion {
            version: "2/6/12-3",
            description: "used undefined variable new_talk",
            buggy_source: r#"
class TalksController < ApplicationController
  def complete
    t = Talk.find(params[:id].rdl_cast("Fixnum"))
    new_talk.mark_completed
    redirect_to("/talks")
  end
end
"#,
            trigger: "$router.dispatch(\"POST\", \"/talks/complete\", { :id => 2 })",
            expected_fragment: "no type for TalksController#new_talk",
            expected_code: "HB0003",
        },
    ]
}

/// Runs one historical version and returns the blame message Hummingbird
/// reports.
///
/// # Panics
///
/// Panics if the version unexpectedly passes — the whole point is that
/// these errors are caught.
pub fn run_error_version(v: &ErrorVersion) -> String {
    let spec = talks();
    let mut hb = build_app(&spec, Mode::Full);
    hb.load_file("talks/buggy.rb", v.buggy_source)
        .unwrap_or_else(|e| panic!("{}: load failed: {e}", v.version));
    let err = hb
        .eval(v.trigger)
        .expect_err("the buggy version must blame");
    assert_eq!(err.kind, ErrorKind::TypeBlame, "{}: {err}", v.version);
    err.message
}

/// A structured view of one historical error, captured while the app (and
/// its source map) was alive: the diagnostic itself plus its resolved
/// renderings, so golden tests can assert spans and JSON without holding
/// the whole system.
#[derive(Debug, Clone)]
pub struct ErrorVersionDiag {
    pub diagnostic: TypeDiagnostic,
    /// `TypeDiagnostic::render` against the app's source map.
    pub rendered: String,
    /// `TypeDiagnostic::to_json` against the app's source map.
    pub json: String,
    /// The blamed-annotation label resolved to `(file:line:col, exact
    /// source text under the span)`, when the diagnostic carries one.
    pub blamed_at: Option<(String, String)>,
}

fn capture_diag(hb: &Hummingbird, diagnostic: TypeDiagnostic) -> ErrorVersionDiag {
    let map = hb.source_map();
    let blamed_at = diagnostic
        .label(hummingbird::LabelRole::BlamedAnnotation)
        .and_then(|l| {
            let f = map.file(l.span.file)?;
            let text = f.text.get(l.span.lo as usize..l.span.hi as usize)?;
            Some((map.describe(l.span), text.to_string()))
        });
    ErrorVersionDiag {
        rendered: diagnostic.render(map),
        json: diagnostic.to_json(map),
        blamed_at,
        diagnostic,
    }
}

/// [`run_error_version`], returning the structured diagnostic behind the
/// blame instead of the flattened message.
///
/// # Panics
///
/// Panics if the version unexpectedly passes or blames without a
/// structured diagnostic.
pub fn run_error_version_diag(v: &ErrorVersion) -> ErrorVersionDiag {
    let spec = talks();
    let mut hb = build_app(&spec, Mode::Full);
    hb.load_file("talks/buggy.rb", v.buggy_source)
        .unwrap_or_else(|e| panic!("{}: load failed: {e}", v.version));
    let err = hb
        .eval(v.trigger)
        .expect_err("the buggy version must blame");
    assert_eq!(err.kind, ErrorKind::TypeBlame, "{}: {err}", v.version);
    let diag = err
        .diagnostic()
        .unwrap_or_else(|| panic!("{}: blame without diagnostic", v.version))
        .clone();
    capture_diag(&hb, diag)
}

/// Lints one historical version *eagerly*: loads the buggy source and runs
/// [`Hummingbird::check_all`] — no triggering request — returning every
/// diagnostic found (expected: exactly one, with `v.expected_code`).
pub fn lint_error_version(v: &ErrorVersion) -> Vec<ErrorVersionDiag> {
    lint_error_version_with_jobs(v, 1)
}

/// [`lint_error_version`] fanned across `jobs` scheduler workers
/// ([`Hummingbird::check_all_parallel`]); `jobs <= 1` is exactly the
/// serial path, and the parallel path's diagnostics are byte-identical.
pub fn lint_error_version_with_jobs(v: &ErrorVersion, jobs: usize) -> Vec<ErrorVersionDiag> {
    let spec = talks();
    let mut hb = build_app(&spec, Mode::Full);
    hb.load_file("talks/buggy.rb", v.buggy_source)
        .unwrap_or_else(|e| panic!("{}: load failed: {e}", v.version));
    let diags = hb.check_all_parallel(jobs);
    diags.into_iter().map(|d| capture_diag(&hb, d)).collect()
}

/// The seven versions of the update experiment (Table 2), as file contents
/// applied as live reloads.
pub fn update_versions() -> Vec<(&'static str, &'static str)> {
    vec![
        ("v0 (initial)", include_str!("../apps/talks/updates/v0.rb")),
        ("v1", include_str!("../apps/talks/updates/v1.rb")),
        ("v2", include_str!("../apps/talks/updates/v2.rb")),
        ("v3", include_str!("../apps/talks/updates/v3.rb")),
        ("v4", include_str!("../apps/talks/updates/v4.rb")),
        ("v5", include_str!("../apps/talks/updates/v5.rb")),
        ("v6", include_str!("../apps/talks/updates/v6.rb")),
    ]
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct UpdateRow {
    pub version: String,
    pub changed: usize,
    pub added: usize,
    pub removed: usize,
    pub deps: u64,
    /// Methods newly/re-checked when the requests are replayed.
    pub checked: usize,
}

/// The request script replayed after every update (same functionality as
/// the Table 1 script plus the formatter).
const UPDATE_REQUESTS: &str = r#"
fmt = TalkFormatter.new
list = TalkList.find(1)
talk = Talk.find(1)
fmt.head(talk)
fmt.row(talk)
fmt.page(list)
fmt.footer
fmt.banner(list) if TalkFormatter.method_defined?(:banner)
fmt.sidebar(list) if TalkFormatter.method_defined?(:sidebar)
talks_requests
"#;

/// Runs the full update experiment: boot v0, replay requests, then apply
/// v1..v6 as live reloads, replaying the same requests after each.
pub fn run_update_experiment() -> Vec<UpdateRow> {
    let spec = talks();
    let mut hb = build_app(&spec, Mode::Full);
    let versions = update_versions();
    let mut rows = Vec::new();
    let mut first = true;
    for (label, src) in versions {
        let report: ReloadReport = if first {
            hb.load_file("talks/updates/formatter.rb", src)
                .expect("v0 loads");
            // Annotations reference the class, so they load after v0.
            hb.load_file(
                "talks/updates/annotations.rb",
                include_str!("../apps/talks/updates/annotations.rb"),
            )
            .expect("formatter annotations load");
            first = false;
            ReloadReport::default()
        } else {
            // Reset the database so every version runs on the same data
            // (per the paper's §5 update methodology).
            hb.eval("talks_seed").expect("reseed");
            hb.reload_file("talks/updates/formatter.rb", src)
                .expect("reload applies")
        };
        hb.engine.take_check_log();
        run_requests(&mut hb);
        let checked = hb.engine.take_check_log().len();
        rows.push(UpdateRow {
            version: label.to_string(),
            changed: report.changed.len(),
            added: report.added.len(),
            removed: report.removed.len(),
            deps: report.dependents_invalidated,
            checked,
        });
    }
    rows
}

fn run_requests(hb: &mut Hummingbird) {
    hb.eval(UPDATE_REQUESTS)
        .unwrap_or_else(|e| panic!("update requests failed: {e}"));
}
