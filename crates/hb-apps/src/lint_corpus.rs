//! The seeded-defect corpus for the `hb-analyze` lint suite: one tiny
//! program per pass, each planted with exactly the defect its pass
//! exists to catch. The `--analyze --smoke` CI gate asserts every case
//! is caught *by its exact code* — a regression here means a pass went
//! blind, not just noisy.

use hummingbird::{AnalysisReport, Hummingbird, Mode};

/// One corpus case: a program with a planted defect and the diagnostic
/// code that must catch it.
pub struct CorpusCase {
    pub name: &'static str,
    pub expected_code: &'static str,
    pub src: &'static str,
}

/// The corpus: one planted defect per lint pass.
pub fn corpus_cases() -> Vec<CorpusCase> {
    vec![
        CorpusCase {
            name: "use-before-assign",
            expected_code: "HB1001",
            // `total` is read on the right-hand side before any
            // assignment can reach it (nil in Ruby, a latent bug here).
            src: "
class Register
  def bump
    total = total + 1
    total
  end
end
",
        },
        CorpusCase {
            name: "unreachable-code",
            expected_code: "HB1002",
            // The cleanup call sits after an unconditional return.
            src: "
class Reporter
  def emit
    return \"done\"
    cleanup
  end

  def cleanup
    nil
  end
end
",
        },
        CorpusCase {
            name: "dead-store",
            expected_code: "HB1003",
            // The first assignment to `subtotal` is overwritten before
            // any read.
            src: "
class Tally
  def compute
    subtotal = 1
    subtotal = 2
    subtotal
  end
end
",
        },
        CorpusCase {
            name: "unused-local",
            expected_code: "HB1004",
            // `leftovers` is assigned and never read anywhere.
            src: "
class Audit
  def scan
    leftovers = 3
    \"ok\"
  end
end
",
        },
        CorpusCase {
            name: "stale-annotation",
            expected_code: "HB1005",
            // `forgotten` carries a check annotation but nothing in the
            // program ever reaches it.
            src: "
class Billing
  def invoice
    \"sent\"
  end

  def forgotten
    \"never\"
  end
end
type Billing, \"invoice\", \"() -> String\", { \"check\" => true }
type Billing, \"forgotten\", \"() -> String\", { \"check\" => true }
b = Billing.new
b.invoice
",
        },
        CorpusCase {
            name: "dyn-check-residue",
            expected_code: "HB1006",
            // `charge` is checked but only ever called from unchecked
            // top-level code: its guarded prologue survives elision.
            src: "
class Gateway
  def charge(amount)
    amount
  end
end
type Gateway, \"charge\", \"(Fixnum) -> Fixnum\", { \"check\" => true }
g = Gateway.new
g.charge(5)
",
        },
    ]
}

/// Loads one corpus case into a fresh system and runs the full analysis.
///
/// # Panics
///
/// Panics if the case fails to load — corpus sources are fixtures.
pub fn analyze_case(case: &CorpusCase) -> AnalysisReport {
    let mut hb = Hummingbird::builder().mode(Mode::Full).build();
    hb.load_file(&format!("corpus/{}.rb", case.name), case.src)
        .unwrap_or_else(|e| panic!("corpus case {} failed to load: {e}", case.name));
    hb.analyze(1)
}
