//! The seeded corpus for checker-verified signature inference: one tiny
//! program per behavior the pass must exhibit — a verified candidate is
//! adopted (and elides), a refuted candidate only warns (`HB2001`), a
//! recursive method converges through the hypothesis-world fixpoint,
//! disagreeing callers union the parameter, a metaprogrammed method is
//! inferable, and a reload invalidates an inferred signature so it is
//! re-derived against the new body. The `--infer --smoke` CI gate and
//! the `infer_corpus` tests assert exact adopted signatures, exact
//! codes, and exact ledger stats for every case.

use hummingbird::{Hummingbird, InferReport, Mode};

/// One corpus case: a program, the exact signatures inference must
/// adopt for it, and how many candidates the checker must refute.
pub struct InferCase {
    pub name: &'static str,
    pub src: &'static str,
    /// Exact adopted annotation lines, in adoption order.
    pub expect_adopted: &'static [&'static str],
    /// Refuted candidates — each warns `HB2001` exactly once.
    pub expect_rejected: usize,
}

/// The corpus: one case per inference behavior.
pub fn infer_cases() -> Vec<InferCase> {
    vec![
        InferCase {
            name: "verified-adopted",
            // The plain success path: argument types flow from the call
            // site, the return type from the body's dataflow; the
            // checker verifies the candidate and it is adopted.
            src: "
class Greeter
  def greet(name)
    \"hi\"
  end
end
Greeter.new.greet(\"bob\")
",
            expect_adopted: &["type Greeter, \"greet\", \"(String) -> String\""],
            expect_rejected: 0,
        },
        InferCase {
            name: "refuted-hb2001",
            // The candidate `(Fixnum) -> Fixnum` is plausible by
            // dataflow but the body assigns the Fixnum into an ivar
            // declared String — `check_sig` refutes it, so nothing is
            // adopted and the candidate surfaces as HB2001 only.
            src: "
class Box
  def fill(v)
    @content = v
    v
  end
end
var_type Box, \"@content\", \"String\"
Box.new.fill(5)
",
            expect_adopted: &[],
            expect_rejected: 1,
        },
        InferCase {
            name: "recursive",
            // The recursive call checks against the method's *own*
            // candidate inside the hypothesis world — the fixpoint the
            // overlay exists for. The self-edge is excluded from
            // parameter accumulation, so the external caller's Fixnum
            // survives instead of being poisoned by the untypable
            // recursive argument.
            src: "
class Walker
  def visit(n)
    if n > 0
      visit(n - 1)
    end
    \"done\"
  end
end
Walker.new.visit(3)
",
            expect_adopted: &["type Walker, \"visit\", \"(Fixnum) -> String\""],
            expect_rejected: 0,
        },
        InferCase {
            name: "union-candidate",
            // Callers disagree on the argument type: the candidate
            // parameter is their union, and the checker verifies the
            // body against both arms.
            src: "
class Show
  def render(v)
    \"x\"
  end
end
s = Show.new
s.render(1)
s.render(\"two\")
",
            expect_adopted: &["type Show, \"render\", \"(Fixnum or String) -> String\""],
            expect_rejected: 0,
        },
        InferCase {
            name: "metaprogrammed",
            // The method only exists because `define_method` ran: it is
            // in the registry (a dynamic definition), so the
            // whole-program view sees it and inference types it like
            // any other reachable method.
            src: "
class Widget
  define_method(:ping) do
    \"pong\"
  end
end
Widget.new.ping
",
            expect_adopted: &["type Widget, \"ping\", \"() -> String\""],
            expect_rejected: 0,
        },
        InferCase {
            name: "reload-invalidated",
            // Act one of the reload scenario: the String signature is
            // inferred and adopted. The test then reloads the file with
            // a Fixnum body — the redefinition invalidates (and
            // depatches) the inferred signature, and re-inference
            // converges on the new one instead of pinning the old.
            src: "
class Conf
  def flag
    \"on\"
  end
end
Conf.new.flag
",
            expect_adopted: &["type Conf, \"flag\", \"() -> String\""],
            expect_rejected: 0,
        },
    ]
}

/// Loads one corpus case into a fresh system and runs inference.
///
/// # Panics
///
/// Panics if the case fails to load — corpus sources are fixtures.
pub fn infer_case_with(
    case: &InferCase,
    builder: hummingbird::HummingbirdBuilder,
) -> (Hummingbird, InferReport) {
    let mut hb = builder.mode(Mode::Full).build();
    hb.load_file(&format!("corpus/{}.rb", case.name), case.src)
        .unwrap_or_else(|e| panic!("infer case {} failed to load: {e}", case.name));
    let report = hb.infer(1);
    (hb, report)
}

/// [`infer_case_with`] on a default build.
pub fn infer_case(case: &InferCase) -> (Hummingbird, InferReport) {
    infer_case_with(case, Hummingbird::builder())
}
