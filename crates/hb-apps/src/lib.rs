//! The six subject applications of the Hummingbird evaluation (paper §5)
//! and the measurement harness that regenerates Table 1's rows.
//!
//! Three apps are Rails apps over the `hb-rails` substrate (Talks, Boxroom,
//! Pubs), Rolify and CCT use other metaprogramming styles (Fig. 2 and
//! Fig. 3), and Countries is the no-metaprogramming baseline.

pub mod apps;
pub mod datafile;
pub mod infer_corpus;
pub mod lint_corpus;
pub mod table1;
pub mod talks_history;
pub mod tenant;

pub use apps::{all_apps, boxroom, cct, countries, pubs, rolify, talks, AppSpec};
pub use infer_corpus::{infer_case, infer_case_with, infer_cases, InferCase};
pub use lint_corpus::{analyze_case, corpus_cases, CorpusCase};
pub use table1::{measure_app, AppCounts, Table1Row};
pub use tenant::{
    fleet_snapshot, run_tenant, run_tenant_fleet, run_tenant_from_snapshot, TenantRun,
};

use hummingbird::{Hummingbird, HummingbirdBuilder, Mode, SharedCache};
use std::sync::Arc;

/// Builds an app in the given evaluation mode: substrates, app sources,
/// annotations (unless `Mode::Original`), seed data.
///
/// # Panics
///
/// Panics if any app file fails to load or type check at boot — these are
/// fixture defects, not runtime conditions.
pub fn build_app(spec: &AppSpec, mode: Mode) -> Hummingbird {
    build_app_with(spec, Hummingbird::builder().mode(mode))
}

/// [`build_app`] with an optional process-wide shared derivation tier:
/// the multi-tenant configuration. The tier is attached before any code
/// loads so even boot-time checks publish/adopt.
///
/// # Panics
///
/// Panics if any app file fails to load or type check at boot.
pub fn build_app_shared(
    spec: &AppSpec,
    mode: Mode,
    shared: Option<Arc<SharedCache>>,
) -> Hummingbird {
    let mut builder = Hummingbird::builder().mode(mode);
    if let Some(shared) = shared {
        builder = builder.shared_cache(shared);
    }
    build_app_with(spec, builder)
}

/// [`build_app`] over a fully configured [`HummingbirdBuilder`] — the
/// hook for embedding-style scenarios (shadow-policy canaries, bounded
/// diagnostic stores, diagnostic sinks). The builder's mode also governs
/// whether annotations load.
///
/// # Panics
///
/// Panics if any app file fails to load or type check at boot.
pub fn build_app_with(spec: &AppSpec, builder: HummingbirdBuilder) -> Hummingbird {
    let mode = builder.configured_mode();
    let mut hb = builder.build();
    if spec.rails {
        hb_rails::install_rails(&mut hb, mode != Mode::Original)
            .unwrap_or_else(|e| panic!("{}: rails install failed: {e}", spec.name));
    }
    if spec.needs_datafile {
        datafile::install_datafile(&mut hb.interp);
    }
    for (name, src) in spec.schema {
        hb.load_file(name, src)
            .unwrap_or_else(|e| panic!("{}: schema {name} failed: {e}", spec.name));
    }
    for (name, src) in spec.sources {
        hb.load_file(name, src)
            .unwrap_or_else(|e| panic!("{}: source {name} failed: {e}", spec.name));
    }
    if mode != Mode::Original {
        for (name, src) in spec.annotations {
            hb.load_file(name, src)
                .unwrap_or_else(|e| panic!("{}: annotations {name} failed: {e}", spec.name));
        }
    }
    for (name, src) in spec.driver {
        hb.load_file(name, src)
            .unwrap_or_else(|e| panic!("{}: driver {name} failed: {e}", spec.name));
    }
    if !spec.seed.is_empty() {
        hb.eval(spec.seed)
            .unwrap_or_else(|e| panic!("{}: seed failed: {e}", spec.name));
    }
    hb
}

/// Runs the app's workload for `iters` iterations.
///
/// # Panics
///
/// Panics on uncaught runtime errors (workloads are expected to pass).
pub fn run_workload(spec: &AppSpec, hb: &mut Hummingbird, iters: usize) {
    let call = (spec.workload_call)(iters);
    hb.eval(&call)
        .unwrap_or_else(|e| panic!("{}: workload failed: {e}", spec.name));
}

/// Counts non-blank, non-comment lines (the sloccount analogue for the
/// Table 1 LoC column).
pub fn count_loc(sources: &[(&str, &str)]) -> usize {
    sources
        .iter()
        .map(|(_, src)| {
            src.lines()
                .filter(|l| {
                    let t = l.trim();
                    !t.is_empty() && !t.starts_with('#')
                })
                .count()
        })
        .sum()
}
