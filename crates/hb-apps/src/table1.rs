//! The Table 1 measurement harness: annotation counts, dynamic-type
//! counts, casts, phases and the Orig / No$ / Hum timing triple.

use crate::apps::AppSpec;
use crate::{build_app, count_loc, run_workload};
use hb_rdl::AnnotationSource;
use hummingbird::{Hummingbird, Mode};
use std::time::Instant;

/// The annotation-count columns of Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppCounts {
    /// Statically-written annotations on app methods whose bodies are
    /// checked ("Chk'd").
    pub checked: usize,
    /// All statically-written annotations on app classes ("App").
    pub app: usize,
    /// "App" plus library/framework annotations the checker consulted
    /// ("All").
    pub all: usize,
    /// Dynamically generated annotations ("Gen'd").
    pub generated: usize,
    /// Generated annotations actually used during checking ("Used").
    pub used: usize,
    /// Distinct cast sites the checker encountered ("Casts").
    pub casts: usize,
    /// Annotate/check alternation groups ("Phs").
    pub phases: u64,
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub name: String,
    pub loc: usize,
    pub counts: AppCounts,
    pub orig_ms: f64,
    pub nocache_ms: f64,
    pub hum_ms: f64,
    /// Static checks performed in No$ / Hum modes (shows why caching
    /// matters — the paper's pubs 13,000-recheck anecdote).
    pub checks_nocache: u64,
    pub checks_hum: u64,
}

impl Table1Row {
    /// Hum/Orig overhead ratio (the paper's last column).
    pub fn ratio(&self) -> f64 {
        if self.orig_ms > 0.0 {
            self.hum_ms / self.orig_ms
        } else {
            f64::NAN
        }
    }

    /// No$/Orig overhead ratio.
    pub fn nocache_ratio(&self) -> f64 {
        if self.orig_ms > 0.0 {
            self.nocache_ms / self.orig_ms
        } else {
            f64::NAN
        }
    }
}

/// Computes the annotation-count columns from a system that has run the
/// app's workload in Full mode.
pub fn compute_counts(spec: &AppSpec, hb: &Hummingbird) -> AppCounts {
    let stats = hb.stats();
    let rstats = hb.rdl_stats();
    let is_app_class = |class: &str| spec.app_classes.contains(&class);
    let mut checked = 0usize;
    let mut app = 0usize;
    for (key, entry) in hb.rdl.entries() {
        if entry.source == AnnotationSource::Static && is_app_class(key.class.as_str()) {
            app += 1;
            if entry.check {
                checked += 1;
            }
        }
    }
    // "All" = App + library/framework annotations consulted during checks.
    let mut library_used = 0usize;
    for key in hb.rdl.used_keys() {
        let entry = hb.rdl.entry(&key);
        let is_static = entry
            .as_ref()
            .map(|e| e.source == AnnotationSource::Static)
            .unwrap_or(false);
        if is_static && !is_app_class(key.class.as_str()) {
            library_used += 1;
        }
    }
    AppCounts {
        checked,
        app,
        all: app + library_used,
        generated: rstats.dynamic_generated,
        used: rstats.dynamic_used,
        casts: stats.cast_sites.len(),
        phases: stats.phases,
    }
}

fn time_mode(spec: &AppSpec, mode: Mode, iters: usize, repeats: usize) -> (f64, u64) {
    let mut best_ms = f64::INFINITY;
    let mut checks = 0;
    for _ in 0..repeats {
        let mut hb = build_app(spec, mode);
        let start = Instant::now();
        run_workload(spec, &mut hb, iters);
        let ms = start.elapsed().as_secs_f64() * 1_000.0;
        best_ms = best_ms.min(ms);
        checks = hb.stats().checks_performed;
    }
    (best_ms, checks)
}

/// Measures one app across the three modes and computes its Table 1 row.
pub fn measure_app(spec: &AppSpec, iters: usize, repeats: usize) -> Table1Row {
    let (orig_ms, _) = time_mode(spec, Mode::Original, iters, repeats);
    let (nocache_ms, checks_nocache) = time_mode(spec, Mode::NoCache, iters, repeats);
    let (hum_ms, checks_hum) = time_mode(spec, Mode::Full, iters, repeats);
    // Counts come from a fresh Full run of the same workload.
    let mut hb = build_app(spec, Mode::Full);
    run_workload(spec, &mut hb, iters);
    let counts = compute_counts(spec, &hb);
    Table1Row {
        name: spec.name.to_string(),
        loc: count_loc(spec.sources),
        counts,
        orig_ms,
        nocache_ms,
        hum_ms,
        checks_nocache,
        checks_hum,
    }
}
