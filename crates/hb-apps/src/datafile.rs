//! The `DataFile` substrate for Countries: stands in for the paper's
//! `Marshal.load(File.binread(f))` — deserialized data of arbitrary type
//! that the app must `rdl_cast` into shape (paper §4 "Type Casts").

use hb_interp::{ErrorKind, Flow, HbError, Interp, Value};
use hb_syntax::Span;
use std::rc::Rc;

/// Country records: code → (name, region, subregion, currency, population,
/// German translation).
const COUNTRIES: &[(&str, &str, &str, &str, &str, i64, &str)] = &[
    (
        "us",
        "United States",
        "Americas",
        "Northern America",
        "USD",
        331_000_000,
        "Vereinigte Staaten",
    ),
    (
        "br",
        "Brazil",
        "Americas",
        "South America",
        "BRL",
        212_000_000,
        "Brasilien",
    ),
    (
        "de",
        "Germany",
        "Europe",
        "Western Europe",
        "EUR",
        83_000_000,
        "Deutschland",
    ),
    (
        "fr",
        "France",
        "Europe",
        "Western Europe",
        "EUR",
        67_000_000,
        "Frankreich",
    ),
    (
        "it",
        "Italy",
        "Europe",
        "Southern Europe",
        "EUR",
        60_000_000,
        "Italien",
    ),
    (
        "jp",
        "Japan",
        "Asia",
        "Eastern Asia",
        "JPY",
        126_000_000,
        "Japan",
    ),
    (
        "in",
        "India",
        "Asia",
        "Southern Asia",
        "INR",
        1_380_000_000,
        "Indien",
    ),
    (
        "ng",
        "Nigeria",
        "Africa",
        "Western Africa",
        "NGN",
        206_000_000,
        "Nigeria",
    ),
];

fn country_hash(rec: &(&str, &str, &str, &str, &str, i64, &str)) -> Value {
    let (code, name, region, subregion, currency, population, de) = *rec;
    Value::hash_from(vec![
        (Value::str("alpha2"), Value::str(code)),
        (Value::str("name"), Value::str(name)),
        (Value::str("region"), Value::str(region)),
        (Value::str("subregion"), Value::str(subregion)),
        (Value::str("currency"), Value::str(currency)),
        (Value::str("population"), Value::Int(population)),
        (
            Value::str("translations"),
            Value::hash_from(vec![(Value::str("de"), Value::str(de))]),
        ),
    ])
}

/// Registers the `DataFile` class with its `read` method.
pub fn install_datafile(interp: &mut Interp) {
    let cls = interp.define_class("DataFile", None);
    interp.define_builtin(
        cls,
        "read",
        true,
        Rc::new(|_i, _recv, args, _b| match args.first() {
            Some(Value::Str(s)) if &**s == "countries" => Ok(Value::hash_from(
                COUNTRIES
                    .iter()
                    .map(|rec| (Value::str(rec.0), country_hash(rec)))
                    .collect(),
            )),
            other => Err(Flow::Error(HbError::new(
                ErrorKind::ArgumentError,
                format!("DataFile.read: unknown data file {other:?}"),
                Span::dummy(),
            ))),
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datafile_returns_nested_hashes() {
        let mut i = Interp::new();
        install_datafile(&mut i);
        let v = i
            .eval_str("DataFile.read(\"countries\")[\"de\"][\"name\"]")
            .unwrap();
        assert!(v.raw_eq(&Value::str("Germany")));
        let v = i
            .eval_str("DataFile.read(\"countries\")[\"fr\"][\"translations\"][\"de\"]")
            .unwrap();
        assert!(v.raw_eq(&Value::str("Frankreich")));
        assert!(i.eval_str("DataFile.read(\"other\")").is_err());
    }
}
