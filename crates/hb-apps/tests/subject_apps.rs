//! End-to-end tests of the six subject apps: all must boot, run their
//! workloads under full checking with no type errors (the paper's headline
//! result), and produce the expected metaprogramming statistics.

use hb_apps::table1::compute_counts;
use hb_apps::talks_history::{error_versions, run_error_version, run_update_experiment};
use hb_apps::{all_apps, build_app, run_workload};
use hummingbird::Mode;

#[test]
fn all_apps_typecheck_under_full_checking() {
    for spec in all_apps() {
        let mut hb = build_app(&spec, Mode::Full);
        run_workload(&spec, &mut hb, 2);
        let stats = hb.stats();
        assert!(
            stats.checks_performed > 0,
            "{}: nothing was checked",
            spec.name
        );
        assert!(stats.cache_hits > 0, "{}: cache never hit", spec.name);
    }
}

#[test]
fn all_apps_run_in_original_mode() {
    for spec in all_apps() {
        let mut hb = build_app(&spec, Mode::Original);
        run_workload(&spec, &mut hb, 1);
        assert_eq!(hb.stats().checks_performed, 0, "{}", spec.name);
    }
}

#[test]
fn all_apps_run_without_cache() {
    for spec in all_apps() {
        let mut hb = build_app(&spec, Mode::NoCache);
        run_workload(&spec, &mut hb, 2);
        let s = hb.stats();
        assert_eq!(s.cache_hits, 0, "{}", spec.name);
        assert!(s.checks_performed > 0, "{}", spec.name);
    }
}

#[test]
fn caching_reduces_checks_dramatically() {
    // The paper's central performance claim: with the cache each method is
    // checked once; without, hot methods re-check on every call.
    let spec = hb_apps::pubs();
    let mut full = build_app(&spec, Mode::Full);
    run_workload(&spec, &mut full, 4);
    let with_cache = full.stats().checks_performed;
    let mut nocache = build_app(&spec, Mode::NoCache);
    run_workload(&spec, &mut nocache, 4);
    let without = nocache.stats().checks_performed;
    assert!(
        without > with_cache * 20,
        "expected a big blowup: cached={with_cache} uncached={without}"
    );
}

#[test]
fn rails_apps_rely_on_generated_types() {
    for spec in [hb_apps::talks(), hb_apps::boxroom(), hb_apps::pubs()] {
        let mut hb = build_app(&spec, Mode::Full);
        run_workload(&spec, &mut hb, 1);
        let counts = compute_counts(&spec, &hb);
        assert!(
            counts.generated > 0,
            "{}: no dynamically generated types",
            spec.name
        );
        assert!(
            counts.used > 0,
            "{}: generated types never used in checking",
            spec.name
        );
    }
}

#[test]
fn countries_has_casts_but_no_generated_types() {
    let spec = hb_apps::countries();
    let mut hb = build_app(&spec, Mode::Full);
    run_workload(&spec, &mut hb, 1);
    let counts = compute_counts(&spec, &hb);
    assert_eq!(counts.generated, 0, "Countries uses no metaprogramming");
    assert!(counts.casts >= 10, "Countries is cast-heavy: {counts:?}");
    assert_eq!(counts.phases, 1, "annotations load before all checks");
}

#[test]
fn rolify_interleaves_phases() {
    let spec = hb_apps::rolify();
    let mut hb = build_app(&spec, Mode::Full);
    run_workload(&spec, &mut hb, 2);
    let counts = compute_counts(&spec, &hb);
    assert!(
        counts.phases > 1,
        "Rolify generates types between checks: {counts:?}"
    );
    assert!(counts.generated >= 8, "{counts:?}");
}

#[test]
fn cct_struct_types_are_generated_and_used() {
    let spec = hb_apps::cct();
    let mut hb = build_app(&spec, Mode::Full);
    run_workload(&spec, &mut hb, 1);
    let counts = compute_counts(&spec, &hb);
    // kind/account_name/amount getters and setters.
    assert!(counts.generated >= 6, "{counts:?}");
    assert!(counts.used >= 1, "{counts:?}");
    assert!(hb
        .stats()
        .checked_methods
        .contains("ApplicationRunner#process_transactions"));
}

#[test]
fn talks_checked_methods_cover_models_and_controllers() {
    let spec = hb_apps::talks();
    let mut hb = build_app(&spec, Mode::Full);
    run_workload(&spec, &mut hb, 1);
    let checked = hb.stats().checked_methods;
    for m in [
        "Talk#owner?",
        "Talk#summary",
        "User#subscribed_talks",
        "TalksController#index",
        "TalksController#create",
        "ListsController#subscribed",
        "TalksController#format_talk_row",
    ] {
        assert!(checked.contains(m), "missing {m}: {checked:?}");
    }
}

#[test]
fn all_six_historical_errors_are_caught() {
    for v in error_versions() {
        let msg = run_error_version(&v);
        assert!(
            msg.contains(v.expected_fragment),
            "{}: got {msg:?}, wanted fragment {:?}",
            v.version,
            v.expected_fragment
        );
    }
}

#[test]
fn update_experiment_tracks_invalidation() {
    let rows = run_update_experiment();
    assert_eq!(rows.len(), 7);
    // v0: everything checks for the first time.
    assert!(rows[0].checked >= 4, "{:?}", rows[0]);
    // v1: head changed; its dependent (row) re-checks along with it.
    assert_eq!(rows[1].changed, 1, "{:?}", rows[1]);
    assert!(rows[1].deps >= 1, "{:?}", rows[1]);
    assert!(
        rows[1].checked >= 2 && rows[1].checked <= 3,
        "{:?}",
        rows[1]
    );
    // v2: two changed, one added.
    assert_eq!(rows[2].changed, 2, "{:?}", rows[2]);
    assert_eq!(rows[2].added, 1, "{:?}", rows[2]);
    // v3: identical bodies — nothing invalidated, nothing re-checked.
    assert_eq!(rows[3].changed, 0, "{:?}", rows[3]);
    assert_eq!(rows[3].checked, 0, "{:?}", rows[3]);
    // v4: footer changed (no dependents), sidebar added.
    assert_eq!(rows[4].changed, 1, "{:?}", rows[4]);
    assert_eq!(rows[4].added, 1, "{:?}", rows[4]);
    // v6: four changed methods.
    assert_eq!(rows[6].changed, 4, "{:?}", rows[6]);
}
