//! The canary-deploy scenario on real history: a Talks historical error
//! version runs TO COMPLETION under `CheckPolicy::Shadow` with its exact
//! HB-code diagnostic captured, while `Enforce` still raises — on both
//! the just-in-time path (the triggering request) and the eager
//! `check_all` path.

use hb_apps::talks_history::error_versions;
use hb_apps::{build_app_with, talks};
use hummingbird::{CheckPolicy, ErrorKind, Hummingbird};

/// "1/26/12-3": `subscribed_talks(true)` where the annotation takes a
/// `Symbol`. Statically a blame; at run time the body tolerates the
/// boolean (it falls into the non-`:all` branch) — exactly the kind of
/// type error a shadow canary observes on live traffic without an
/// outage.
const RUNNABLE_VERSION: &str = "1/26/12-3";

#[test]
fn historical_error_completes_under_shadow_with_exact_code_jit() {
    let v = error_versions()
        .into_iter()
        .find(|v| v.version == RUNNABLE_VERSION)
        .expect("version exists");

    // Enforce: the request aborts with blame (the paper's behaviour).
    let spec = talks();
    let mut enforce = build_app_with(&spec, Hummingbird::builder());
    enforce.load_file("talks/buggy.rb", v.buggy_source).unwrap();
    let err = enforce.eval(v.trigger).expect_err("enforce still raises");
    assert_eq!(err.kind, ErrorKind::TypeBlame);

    // Shadow: the same request runs to completion; the check ran, blamed,
    // and its exact HB-code diagnostic is in `diagnostics()`.
    let mut shadow = build_app_with(
        &spec,
        Hummingbird::builder().check_policy(CheckPolicy::Shadow),
    );
    shadow.load_file("talks/buggy.rb", v.buggy_source).unwrap();
    shadow
        .eval(v.trigger)
        .expect("the canary request completes under shadow");
    let stats = shadow.stats();
    assert!(
        stats.shadowed_blames >= 1,
        "the blame was shadowed: {stats:?}"
    );
    let diags = shadow.diagnostics();
    assert!(
        diags.iter().any(|d| d.code.to_string() == v.expected_code),
        "exact code {} captured; got {:?}",
        v.expected_code,
        diags.iter().map(|d| d.code.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn historical_error_is_captured_under_shadow_check_all() {
    let v = error_versions()
        .into_iter()
        .find(|v| v.version == RUNNABLE_VERSION)
        .expect("version exists");

    let spec = talks();
    let mut shadow = build_app_with(
        &spec,
        Hummingbird::builder().check_policy(CheckPolicy::Shadow),
    );
    shadow.load_file("talks/buggy.rb", v.buggy_source).unwrap();

    // Eager path: check_all finds the blame without any request...
    let found = shadow.check_all();
    assert_eq!(found.len(), 1, "exactly the historical error");
    assert_eq!(found[0].code.to_string(), v.expected_code);
    assert!(
        shadow
            .diagnostics()
            .iter()
            .any(|d| d.code.to_string() == v.expected_code),
        "and it is captured in the store"
    );

    // ...and the endpoint still serves afterwards (shadow end to end).
    shadow
        .eval(v.trigger)
        .expect("the request completes under shadow after an eager pass");

    // Enforce on the same eager-then-serve sequence: check_all reports
    // identically (it never raises), but the request aborts.
    let mut enforce = build_app_with(&spec, Hummingbird::builder());
    enforce.load_file("talks/buggy.rb", v.buggy_source).unwrap();
    let found = enforce.check_all();
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].code.to_string(), v.expected_code);
    let err = enforce.eval(v.trigger).expect_err("enforce still raises");
    assert_eq!(err.kind, ErrorKind::TypeBlame);
}
