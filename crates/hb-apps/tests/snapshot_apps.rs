//! Snapshot round trip over the six subject apps: save → bytes → load
//! into a brand-new tier → a tenant booting the identical apps adopts
//! every first call (zero re-derivations), with statistics identical to
//! an in-process warm tenant's. The *fresh-process* version of this (new
//! interner, new source maps) is gated in CI by
//! `tenant_probe --snapshot-smoke`, which re-execs the probe binary.

use hb_apps::{run_tenant, run_tenant_from_snapshot};
use hummingbird::{CacheSnapshot, SharedCache};
use std::sync::Arc;

#[test]
fn six_app_round_trip_boots_warm_with_identical_stats() {
    // Cold world: one tenant boots all six apps and publishes.
    let shared = Arc::new(SharedCache::new());
    let cold = run_tenant(0, &shared, 1);
    assert!(cold.checks_performed > 0, "cold tenant derives");
    assert_eq!(cold.shared_hits, 0);

    // Serialize the tier through the wire format.
    let bytes = shared.snapshot().to_bytes();
    let snap = CacheSnapshot::from_bytes(&bytes).expect("parses");
    assert_eq!(snap.entry_count(), shared.len());

    // Baseline: an in-process warm tenant against the original tier.
    let shared_hits_before = shared.stats().hits;
    let warm_inproc = run_tenant(1, &shared, 1);
    let inproc_hit_delta = shared.stats().hits - shared_hits_before;

    // Fresh world: a brand-new tier rebuilt from bytes. Checked twice —
    // once explicitly (so the tier's size and hit counters are
    // observable), once through the `run_tenant_from_snapshot` helper
    // the probes build on.
    let fresh = Arc::new(SharedCache::new());
    let loaded = fresh.load_snapshot(&snap).expect("loads");
    assert_eq!(loaded, snap.entry_count());
    assert_eq!(fresh.len(), shared.len(), "identical tier size after load");
    let warm_snap = run_tenant(1, &fresh, 1);
    let snap_hit_delta = fresh.stats().hits;

    let warm_helper = run_tenant_from_snapshot(2, &snap, 1);
    assert_eq!(warm_helper.checks_performed, 0);
    assert_eq!(warm_helper.shared_hits, warm_snap.shared_hits);

    // Zero re-derivations from the snapshot, and the warm boot is
    // statistically indistinguishable from the in-process one.
    assert_eq!(
        warm_snap.checks_performed, 0,
        "boot-from-snapshot never runs check_sig"
    );
    assert_eq!(warm_snap.warm_hit_rate(), 1.0);
    assert_eq!(warm_snap.shared_hits, warm_inproc.shared_hits);
    assert_eq!(warm_snap.cache_hits, warm_inproc.cache_hits);
    assert_eq!(warm_snap.intercepted_calls, warm_inproc.intercepted_calls);
    assert_eq!(
        snap_hit_delta, inproc_hit_delta,
        "the rebuilt tier serves exactly the hits the live tier served"
    );
}
