//! The seeded inference corpus: every case must produce its exact
//! adopted signatures and exact rejection count, the refuted case must
//! warn `HB2001` and nothing else, and the reload case must depatch and
//! re-derive its inferred signature against the new body.

use hb_apps::{infer_case, infer_case_with, infer_cases};
use hummingbird::{ExecTier, Hummingbird};

/// Every corpus case adopts exactly its expected signatures, refutes
/// exactly its expected count, and each refutation warns `HB2001`.
#[test]
fn corpus_cases_adopt_and_refute_exactly() {
    for case in infer_cases() {
        let (mut hb, report) = infer_case(&case);
        let adopted: Vec<&str> = report.adopted.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(
            adopted, case.expect_adopted,
            "{}: adopted signatures drifted",
            case.name
        );
        assert_eq!(
            report.rejected, case.expect_rejected,
            "{}: rejection count drifted",
            case.name
        );
        assert_eq!(
            report.diagnostics.len(),
            case.expect_rejected,
            "{}: every refutation warns exactly once",
            case.name
        );
        for d in &report.diagnostics {
            assert_eq!(
                d.code.to_string(),
                "HB2001",
                "{}: refutations must carry the stable inference code",
                case.name
            );
        }
        let stats = hb.stats();
        assert_eq!(
            stats.inferred_adopted,
            case.expect_adopted.len() as u64,
            "{}",
            case.name
        );
        assert_eq!(
            stats.inferred_rejected, case.expect_rejected as u64,
            "{}",
            case.name
        );
        assert!(
            hb.check_all_parallel(1).is_empty(),
            "{}: program must check clean after adoption",
            case.name
        );
    }
}

/// The adopted signature is not just bookkeeping: under the bytecode
/// tier the newly checked method's fast prologue is patched on the next
/// dispatch — unannotated residue became an elided fast path.
#[test]
fn adopted_signature_elides_on_next_dispatch() {
    let cases = infer_cases();
    let case = cases.iter().find(|c| c.name == "verified-adopted").unwrap();
    let (mut hb, report) =
        infer_case_with(case, Hummingbird::builder().exec_tier(ExecTier::Bytecode));
    assert_eq!(report.adopted.len(), 1);
    let before = hb.stats().fast_entries_patched;
    hb.eval("Greeter.new.greet(\"again\")").unwrap();
    let after = hb.stats().fast_entries_patched;
    assert!(
        after > before,
        "adopted signature must patch a fast entry ({before} -> {after})"
    );
}

/// The metaprogrammed case really is dynamic: the audit classifies its
/// call edges as on-dynamic-definitions and predicts its fast entry.
#[test]
fn metaprogrammed_method_is_classified_dynamic() {
    let cases = infer_cases();
    let case = cases.iter().find(|c| c.name == "metaprogrammed").unwrap();
    let (mut hb, report) = infer_case(case);
    assert_eq!(report.adopted.len(), 1);
    let audit = hb.analyze(1);
    assert!(
        audit.summary.dynamic_def_edges > 0,
        "define_method edges must classify as dynamic-definition"
    );
}

/// The reload scenario end-to-end: an inferred signature is adopted and
/// patched; reloading the file with a different body invalidates it
/// (Definition 1), depatching the fast entry; re-inference converges on
/// the *new* signature instead of pinning the stale one.
#[test]
fn reload_invalidates_and_reinfers_inferred_signature() {
    let cases = infer_cases();
    let case = cases
        .iter()
        .find(|c| c.name == "reload-invalidated")
        .unwrap();
    let (mut hb, report) =
        infer_case_with(case, Hummingbird::builder().exec_tier(ExecTier::Bytecode));
    assert_eq!(
        report
            .adopted
            .iter()
            .map(|(_, l)| l.as_str())
            .collect::<Vec<_>>(),
        ["type Conf, \"flag\", \"() -> String\""]
    );
    // Warm the fast entry under the inferred annotation.
    hb.eval("Conf.new.flag").unwrap();
    assert!(hb.stats().fast_entries_patched > 0);

    // Reload with a body that returns a Fixnum: the redefinition
    // invalidates the inferred signature and flushes the fast entry.
    let deopts_before = hb.stats().deopts;
    hb.reload_file(
        "corpus/reload-invalidated.rb",
        "
class Conf
  def flag
    1
  end
end
Conf.new.flag
",
    )
    .unwrap();
    assert!(
        hb.stats().deopts > deopts_before,
        "reload must depatch the inferred fast entry"
    );

    // Re-inference re-derives against the new body — the old inferred
    // signature does not pin the method.
    let second = hb.infer(1);
    assert_eq!(
        second
            .adopted
            .iter()
            .map(|(_, l)| l.as_str())
            .collect::<Vec<_>>(),
        ["type Conf, \"flag\", \"() -> Fixnum\""],
        "re-inference must converge on the new signature"
    );
    assert!(hb.check_all_parallel(1).is_empty());
    // And the re-inferred signature patches again on the next dispatch.
    let patched_before = hb.stats().fast_entries_patched;
    hb.eval("Conf.new.flag").unwrap();
    assert!(hb.stats().fast_entries_patched > patched_before);
}
