//! Whole-program analysis over the six subject apps: golden warning
//! sets, serial/parallel and tree-walk/bytecode determinism, and the
//! static-vs-runtime residue cross-check.

use hb_apps::{all_apps, analyze_case, build_app_with, corpus_cases, run_workload, AppSpec};
use hummingbird::{AnalysisReport, ExecTier, Hummingbird};

/// Builds `spec`, asserts it type-checks clean, and analyzes it with the
/// workload call declared as the entry point.
fn analyze(spec: &AppSpec, jobs: usize, tier: ExecTier) -> (Hummingbird, AnalysisReport) {
    let mut hb = build_app_with(spec, Hummingbird::builder().exec_tier(tier));
    let errors = hb.check_all_parallel(jobs);
    assert!(
        errors.is_empty(),
        "{}: expected 0 type errors, got {:?}",
        spec.name,
        errors
            .iter()
            .map(|d| d.code.to_string())
            .collect::<Vec<_>>()
    );
    let call = (spec.workload_call)(1);
    let report = hb.analyze_with_entries(jobs, &[("<workload>", &call)]);
    (hb, report)
}

fn rendered(hb: &Hummingbird, report: &AnalysisReport) -> Vec<String> {
    let map = hb.source_map();
    report.diagnostics.iter().map(|d| d.render(map)).collect()
}

fn code_counts(report: &AnalysisReport) -> Vec<(String, usize)> {
    let mut counts: Vec<(String, usize)> = Vec::new();
    for d in &report.diagnostics {
        let code = d.code.to_string();
        match counts.iter_mut().find(|(c, _)| *c == code) {
            Some((_, n)) => *n += 1,
            None => counts.push((code, 1)),
        }
    }
    counts
}

/// The golden warning set: every app analyzes with zero dataflow defects
/// (HB1001–HB1004) — the fixtures are clean code — while the call-graph
/// audits report a stable, meaningful shape: every Rails controller
/// action is dispatch-residue (reached only from the unchecked driver),
/// and CCT's `Account#holder`/`Account#balance` really are annotated but
/// never called by the workload.
#[test]
fn six_apps_analyze_to_golden_warning_sets() {
    let expected: &[(&str, &[(&str, usize)])] = &[
        ("Talks", &[("HB1006", 7)]),
        ("Boxroom", &[("HB1006", 6)]),
        ("Pubs", &[("HB1006", 3)]),
        ("Rolify", &[("HB1006", 4)]),
        ("CCT", &[("HB1005", 2), ("HB1006", 1)]),
        ("Countries", &[("HB1006", 10)]),
    ];
    for spec in all_apps() {
        let (_, report) = analyze(&spec, 1, ExecTier::TreeWalk);
        let got = code_counts(&report);
        let want: Vec<(String, usize)> = expected
            .iter()
            .find(|(n, _)| *n == spec.name)
            .unwrap()
            .1
            .iter()
            .map(|(c, n)| (c.to_string(), *n))
            .collect();
        assert_eq!(got, want, "{}: warning set drifted", spec.name);
        // The residue summary agrees with the per-method warnings.
        assert_eq!(
            report.summary.residual_methods.len(),
            report
                .diagnostics
                .iter()
                .filter(|d| d.code.to_string() == "HB1006")
                .count(),
            "{}: every residual method in scope warns exactly once",
            spec.name
        );
    }
}

/// Fanning the passes across scheduler workers must not change a byte of
/// output relative to the serial path.
#[test]
fn parallel_analysis_is_byte_identical_to_serial() {
    for spec in all_apps() {
        let (hb_s, serial) = analyze(&spec, 1, ExecTier::TreeWalk);
        let (hb_p, parallel) = analyze(&spec, 4, ExecTier::TreeWalk);
        assert_eq!(
            rendered(&hb_s, &serial),
            rendered(&hb_p, &parallel),
            "{}: serial vs --jobs 4 output drifted",
            spec.name
        );
        assert_eq!(serial.summary, parallel.summary, "{}", spec.name);
    }
}

/// The analysis reads the same registry/annotation state regardless of
/// execution tier, so its output is identical under both.
#[test]
fn analysis_is_identical_across_exec_tiers() {
    for spec in all_apps() {
        let (hb_t, tree) = analyze(&spec, 1, ExecTier::TreeWalk);
        let (hb_b, byte) = analyze(&spec, 1, ExecTier::Bytecode);
        assert_eq!(
            rendered(&hb_t, &tree),
            rendered(&hb_b, &byte),
            "{}: tree-walk vs bytecode analysis drifted",
            spec.name
        );
        assert_eq!(tree.summary, byte.summary, "{}", spec.name);
    }
}

/// The headline cross-check, 6/6: the residue auditor's predicted
/// fast-entry set matches the bytecode tier's runtime patch state on
/// *every* app — including Rolify, whose per-iteration `define_method`
/// churn used to force a carve-out. Two ingredients close the gap:
///
/// * the audit runs *after* the workload, so metaprogrammed methods are
///   in the registry (classified as `dynamic-definition` edges) and the
///   prediction sees the same world the engine patched;
/// * `fast_entries_patched` and `deopts` are cumulative, so the
///   steady-state invariant is `predicted == patched - deopts` — the
///   churn cancels out of the *currently patched* count.
#[test]
fn predicted_fast_entries_match_runtime_patches_on_all_six() {
    let mut matched = 0usize;
    for spec in all_apps() {
        let (mut hb, _) = analyze(&spec, 1, ExecTier::Bytecode);
        run_workload(&spec, &mut hb, 3);
        let report = hb.analyze(1);
        let stats = hb.stats();
        assert_eq!(
            report.summary.predicted_fast_entries.len() as u64,
            stats.fast_entries_patched - stats.deopts,
            "{}: static prediction vs currently patched fast entries",
            spec.name
        );
        if spec.name == "Rolify" {
            // The churn is real: methods were deopted and re-patched,
            // and the auditor saw (and classified) the dynamic
            // definitions that caused it.
            assert!(stats.deopts > 0, "Rolify: define_method churn must deopt");
            assert!(
                report.summary.dynamic_def_edges > 0,
                "Rolify: audit must classify dynamic-definition edges"
            );
        } else {
            assert_eq!(stats.deopts, 0, "{}: stable app must not deopt", spec.name);
        }
        matched += 1;
    }
    assert_eq!(matched, 6, "every app, no carve-outs");
}

/// Every seeded corpus defect is caught by its exact code.
#[test]
fn corpus_defects_caught_by_exact_code() {
    for case in corpus_cases() {
        let report = analyze_case(&case);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code.to_string() == case.expected_code),
            "corpus case {} not caught by {} (got {:?})",
            case.name,
            case.expected_code,
            report
                .diagnostics
                .iter()
                .map(|d| d.code.to_string())
                .collect::<Vec<_>>()
        );
    }
}
