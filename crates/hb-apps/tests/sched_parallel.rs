//! Scheduler tests on the real subject apps: Deferred soundness over the
//! six Talks historical errors (blame arrives asynchronously but is never
//! lost, on both the JIT and parallel-lint paths) and parallel/serial
//! `check_all` determinism.

use hb_apps::talks_history::error_versions;
use hb_apps::{all_apps, build_app_with, talks};
use hummingbird::{CheckPolicy, Hummingbird};

#[test]
fn all_six_historical_errors_keep_their_codes_under_deferred_jit() {
    for v in error_versions() {
        let spec = talks();
        let mut hb = build_app_with(
            &spec,
            Hummingbird::builder()
                .check_policy(CheckPolicy::Deferred)
                .worker_threads(2),
        );
        hb.load_file("talks/buggy.rb", v.buggy_source).unwrap();
        // The request is admitted without waiting for the static check —
        // it may still fail *dynamically* (missing methods at run time,
        // dynamic argument checks), which is exactly the safety net
        // Deferred relies on. Either way the deferred blame must land.
        let _ = hb.eval(v.trigger);
        hb.sched_quiesce();
        let codes: Vec<String> = hb
            .diagnostics()
            .iter()
            .map(|d| d.code.to_string())
            .collect();
        assert!(
            codes.iter().any(|c| c == v.expected_code),
            "{}: expected asynchronous {} in {:?}",
            v.version,
            v.expected_code,
            codes
        );
        let s = hb.stats();
        assert!(
            s.deferred_admissions >= 1,
            "{}: cold calls were admitted ({s:?})",
            v.version
        );
        assert_eq!(s.sched_tasks_enqueued, s.sched_tasks_completed);
    }
}

#[test]
fn all_six_historical_errors_keep_their_codes_under_deferred_parallel_lint() {
    for v in error_versions() {
        let spec = talks();
        let mut hb = build_app_with(
            &spec,
            Hummingbird::builder().check_policy(CheckPolicy::Deferred),
        );
        hb.load_file("talks/buggy.rb", v.buggy_source).unwrap();
        let diags = hb.check_all_parallel(4);
        assert_eq!(
            diags.len(),
            1,
            "{}: exactly the historical error (got {:?})",
            v.version,
            diags.iter().map(|d| d.code.to_string()).collect::<Vec<_>>()
        );
        assert_eq!(diags[0].code.to_string(), v.expected_code, "{}", v.version);
    }
}

#[test]
fn parallel_lint_is_byte_identical_to_serial_on_history() {
    for v in error_versions() {
        let spec = talks();
        let mut serial = build_app_with(&spec, Hummingbird::builder());
        serial.load_file("talks/buggy.rb", v.buggy_source).unwrap();
        let serial_out: Vec<String> = serial
            .check_all()
            .iter()
            .map(|d| d.render(serial.source_map()))
            .collect();

        let mut parallel = build_app_with(&spec, Hummingbird::builder());
        parallel
            .load_file("talks/buggy.rb", v.buggy_source)
            .unwrap();
        let parallel_out: Vec<String> = parallel
            .check_all_parallel(4)
            .iter()
            .map(|d| d.render(parallel.source_map()))
            .collect();

        assert_eq!(
            serial_out, parallel_out,
            "{}: parallel output must be byte-identical to serial",
            v.version
        );
    }
}

#[test]
fn clean_apps_lint_clean_in_parallel_and_fan_out_tasks() {
    for spec in all_apps() {
        let mut hb = build_app_with(&spec, Hummingbird::builder());
        let diags = hb.check_all_parallel(4);
        assert!(
            diags.is_empty(),
            "{}: expected 0 findings, got {:?}",
            spec.name,
            diags.iter().map(|d| d.code.to_string()).collect::<Vec<_>>()
        );
        let s = hb.stats();
        assert_eq!(
            s.sched_tasks_completed, s.sched_tasks_enqueued,
            "{}",
            spec.name
        );
        assert_eq!(s.sched_tasks_stale, 0, "{}", spec.name);
        assert!(
            s.sched_tasks_enqueued > 0,
            "{}: the lint actually fanned out work",
            spec.name
        );
    }
}
