//! The six historical Talks errors under the bytecode execution tier:
//! every diagnostic keeps its exact stable code on the just-in-time
//! path, the eager `check_all` path, and the Deferred-admission path —
//! check elision may skip the hook probe, never a check.

use hb_apps::talks_history::error_versions;
use hb_apps::{all_apps, build_app_with, run_workload, talks};
use hummingbird::{CheckPolicy, ErrorKind, ExecTier, Hummingbird};

fn bytecode_builder() -> hummingbird::HummingbirdBuilder {
    Hummingbird::builder().exec_tier(ExecTier::Bytecode)
}

#[test]
fn six_historical_errors_keep_codes_under_bytecode_jit() {
    for v in error_versions() {
        let spec = talks();
        let mut hb = build_app_with(&spec, bytecode_builder());
        hb.load_file("talks/buggy.rb", v.buggy_source)
            .unwrap_or_else(|e| panic!("{}: load failed: {e}", v.version));
        let err = hb
            .eval(v.trigger)
            .expect_err("the buggy version must blame under bytecode too");
        assert_eq!(err.kind, ErrorKind::TypeBlame, "{}: {err}", v.version);
        assert!(
            err.message.contains(v.expected_fragment),
            "{}: got {:?}, wanted fragment {:?}",
            v.version,
            err.message,
            v.expected_fragment
        );
        let code = err
            .diagnostic()
            .unwrap_or_else(|| panic!("{}: blame without diagnostic", v.version))
            .code
            .to_string();
        assert_eq!(code, v.expected_code, "{}", v.version);
        assert!(
            hb.stats().bytecode_compiled > 0,
            "{}: the app really ran on the bytecode tier",
            v.version
        );
    }
}

#[test]
fn six_historical_errors_keep_codes_under_bytecode_check_all() {
    for v in error_versions() {
        let spec = talks();
        let mut hb = build_app_with(&spec, bytecode_builder());
        hb.load_file("talks/buggy.rb", v.buggy_source).unwrap();
        let diags = hb.check_all();
        assert_eq!(
            diags.len(),
            1,
            "{}: eager lint finds exactly the bug (got {:?})",
            v.version,
            diags.iter().map(|d| d.code.to_string()).collect::<Vec<_>>()
        );
        assert_eq!(diags[0].code.to_string(), v.expected_code, "{}", v.version);
    }
}

#[test]
fn six_historical_errors_keep_codes_under_bytecode_deferred() {
    for v in error_versions() {
        let spec = talks();
        let mut hb = build_app_with(
            &spec,
            bytecode_builder()
                .check_policy(CheckPolicy::Deferred)
                .worker_threads(2),
        );
        hb.load_file("talks/buggy.rb", v.buggy_source).unwrap();
        // Admitted without waiting for the static check; the deferred
        // blame must still land once the scheduler drains.
        let _ = hb.eval(v.trigger);
        hb.sched_quiesce();
        let codes: Vec<String> = hb
            .diagnostics()
            .iter()
            .map(|d| d.code.to_string())
            .collect();
        assert!(
            codes.iter().any(|c| c == v.expected_code),
            "{}: expected asynchronous {} in {:?}",
            v.version,
            v.expected_code,
            codes
        );
    }
}

#[test]
fn bytecode_jit_blames_are_byte_identical_to_tree_walk() {
    for v in error_versions() {
        let spec = talks();
        let mut tw = build_app_with(&spec, Hummingbird::builder());
        tw.load_file("talks/buggy.rb", v.buggy_source).unwrap();
        let e1 = tw.eval(v.trigger).expect_err("tree-walk blames");
        let mut bc = build_app_with(&talks(), bytecode_builder());
        bc.load_file("talks/buggy.rb", v.buggy_source).unwrap();
        let e2 = bc.eval(v.trigger).expect_err("bytecode blames");
        assert_eq!(e1.message, e2.message, "{}", v.version);
        let d1 = e1.diagnostic().unwrap().render(tw.source_map());
        let d2 = e2.diagnostic().unwrap().render(bc.source_map());
        assert_eq!(d1, d2, "{}: rendered diagnostics diverge", v.version);
    }
}

#[test]
fn all_apps_run_clean_and_elide_on_bytecode_tier() {
    for spec in all_apps() {
        let mut hb = build_app_with(&spec, bytecode_builder());
        run_workload(&spec, &mut hb, 2);
        let s = hb.stats();
        assert!(s.checks_performed > 0, "{}: nothing checked", spec.name);
        assert!(s.bytecode_compiled > 0, "{}: nothing compiled", spec.name);
        assert!(
            s.fast_entries_patched > 0,
            "{}: steady state never patched a fast entry ({s:?})",
            spec.name
        );
    }
}
