//! Golden tests for the structured blame surface over the six historical
//! Talks errors (paper §5 "Type Errors in Talks"): each diagnostic's
//! stable code, its blamed-annotation span (resolving to the real `type`
//! call in the app's annotation file), and its exact JSON rendering —
//! through both the just-in-time path (triggered request) and the eager
//! `hb_lint` path (`check_all`, no request at all).

use hb_apps::talks_history::{
    error_versions, lint_error_version, run_error_version_diag, ErrorVersionDiag,
};
use hummingbird::{BlameTarget, LabelRole};

/// Every historical error carries its expected stable code, identically
/// under just-in-time checking and eager linting.
#[test]
fn six_errors_carry_stable_codes_jit_and_eager() {
    for v in error_versions() {
        let jit = run_error_version_diag(&v);
        assert_eq!(
            jit.diagnostic.code.as_str(),
            v.expected_code,
            "{}: jit code",
            v.version
        );
        let lint = lint_error_version(&v);
        assert_eq!(
            lint.len(),
            1,
            "{}: eager lint finds exactly the bug",
            v.version
        );
        assert_eq!(
            lint[0].diagnostic.code.as_str(),
            v.expected_code,
            "{}: lint code",
            v.version
        );
        // Both paths agree on what is blamed.
        assert_eq!(
            jit.diagnostic.blame, lint[0].diagnostic.blame,
            "{}: blame target",
            v.version
        );
        // The primary span lands in the buggy file either way.
        assert!(
            jit.rendered.contains("talks/buggy.rb:"),
            "{}: {}",
            v.version,
            jit.rendered
        );
    }
}

/// The two annotation-blaming errors resolve their blamed-annotation
/// label to the exact `type …` call in talks/annotations.rb — position
/// and source text.
#[test]
fn blamed_annotation_spans_resolve_to_real_type_calls() {
    let versions = error_versions();
    let expectations = [
        (
            "1/7/12-5",
            "talks/annotations.rb:16:1",
            "type TalkList, \"upcoming\", \"() -> Array<Talk>\", { \"check\" => true }",
        ),
        (
            "1/26/12-3",
            "talks/annotations.rb:9:1",
            "type User, \"subscribed_talks\", \"(Symbol) -> Array<Talk>\", { \"check\" => true }",
        ),
    ];
    for (version, at, text) in expectations {
        let v = versions.iter().find(|v| v.version == version).unwrap();
        for d in [run_error_version_diag(v), lint_error_version(v).remove(0)] {
            let (got_at, got_text) = d
                .blamed_at
                .clone()
                .unwrap_or_else(|| panic!("{version}: no blamed-annotation label"));
            assert_eq!(got_at, at, "{version}");
            assert_eq!(got_text, text, "{version}");
            assert!(matches!(d.diagnostic.blame, BlameTarget::Annotation(_)));
        }
    }
}

/// Missing-type errors blame a `MissingType` target (there is no
/// annotation span to point at) but still label the checked method's own
/// annotation, which resolves into talks/annotations.rb.
#[test]
fn missing_type_errors_label_the_checked_method() {
    for v in error_versions() {
        if v.expected_code != "HB0003" {
            continue;
        }
        let d = run_error_version_diag(&v);
        assert!(
            matches!(d.diagnostic.blame, BlameTarget::MissingType(_)),
            "{}",
            v.version
        );
        let checked = d
            .diagnostic
            .label(LabelRole::CheckedMethod)
            .unwrap_or_else(|| panic!("{}: no checked-method label", v.version));
        assert!(checked.method.is_some(), "{}", v.version);
        assert!(
            d.rendered.contains("talks/annotations.rb:"),
            "{}: {}",
            v.version,
            d.rendered
        );
    }
}

/// Exact JSON goldens for all six eager-lint diagnostics. These strings
/// are the machine-readable contract `hb_lint --json` emits; any change
/// to the JSON shape, the codes, or the app sources must show up here.
#[test]
fn lint_json_golden_exact() {
    let golden: [(&str, &str); 6] = [
        (
            "1/8/12-4",
            "{\"code\":\"HB0003\",\"message\":\"Hummingbird: no type for TalksController#copute_edit_fields\",\"span\":{\"file\":\"talks/buggy.rb\",\"line\":5,\"col\":12},\"blame\":{\"kind\":\"missing-type\",\"method\":\"TalksController#copute_edit_fields\"},\"method\":\"TalksController#edit\",\"labels\":[{\"role\":\"checked-method\",\"message\":\"while checking TalksController#edit against its annotation\",\"span\":{\"file\":\"talks/annotations.rb\",\"line\":24,\"col\":1},\"method\":\"TalksController#edit\"}]}",
        ),
        (
            "1/7/12-5",
            "{\"code\":\"HB0008\",\"message\":\"TalkList#upcoming is called with a block but its type does not take one\",\"span\":{\"file\":\"talks/buggy.rb\",\"line\":5,\"col\":10},\"blame\":{\"kind\":\"annotation\",\"method\":\"TalkList#upcoming\"},\"method\":\"ListsController#show\",\"labels\":[{\"role\":\"blamed-annotation\",\"message\":\"annotation `() -> Array<Talk>` on TalkList#upcoming declared here\",\"span\":{\"file\":\"talks/annotations.rb\",\"line\":16,\"col\":1},\"method\":\"TalkList#upcoming\"},{\"role\":\"checked-method\",\"message\":\"while checking ListsController#show against its annotation\",\"span\":{\"file\":\"talks/annotations.rb\",\"line\":28,\"col\":1},\"method\":\"ListsController#show\"}]}",
        ),
        (
            "1/26/12-3",
            "{\"code\":\"HB0002\",\"message\":\"argument type mismatch calling User#subscribed_talks: got (%bool), type is (Symbol) -> Array<Talk>\",\"span\":{\"file\":\"talks/buggy.rb\",\"line\":5,\"col\":13},\"blame\":{\"kind\":\"annotation\",\"method\":\"User#subscribed_talks\"},\"method\":\"ListsController#subscribed\",\"labels\":[{\"role\":\"blamed-annotation\",\"message\":\"annotation `(Symbol) -> Array<Talk>` on User#subscribed_talks declared here\",\"span\":{\"file\":\"talks/annotations.rb\",\"line\":9,\"col\":1},\"method\":\"User#subscribed_talks\"},{\"role\":\"checked-method\",\"message\":\"while checking ListsController#subscribed against its annotation\",\"span\":{\"file\":\"talks/annotations.rb\",\"line\":29,\"col\":1},\"method\":\"ListsController#subscribed\"}]}",
        ),
        (
            "1/28/12",
            "{\"code\":\"HB0003\",\"message\":\"Hummingbird: no type for String#object\",\"span\":{\"file\":\"talks/buggy.rb\",\"line\":4,\"col\":5},\"blame\":{\"kind\":\"missing-type\",\"method\":\"String#object\"},\"method\":\"Talk#display_title\",\"labels\":[{\"role\":\"checked-method\",\"message\":\"while checking Talk#display_title against its annotation\",\"span\":{\"file\":\"talks/annotations.rb\",\"line\":12,\"col\":1},\"method\":\"Talk#display_title\"}]}",
        ),
        (
            "2/6/12-2",
            "{\"code\":\"HB0003\",\"message\":\"Hummingbird: no type for TalksController#old_talk\",\"span\":{\"file\":\"talks/buggy.rb\",\"line\":5,\"col\":32},\"blame\":{\"kind\":\"missing-type\",\"method\":\"TalksController#old_talk\"},\"method\":\"TalksController#edit\",\"labels\":[{\"role\":\"checked-method\",\"message\":\"while checking TalksController#edit against its annotation\",\"span\":{\"file\":\"talks/annotations.rb\",\"line\":24,\"col\":1},\"method\":\"TalksController#edit\"}]}",
        ),
        (
            "2/6/12-3",
            "{\"code\":\"HB0003\",\"message\":\"Hummingbird: no type for TalksController#new_talk\",\"span\":{\"file\":\"talks/buggy.rb\",\"line\":5,\"col\":5},\"blame\":{\"kind\":\"missing-type\",\"method\":\"TalksController#new_talk\"},\"method\":\"TalksController#complete\",\"labels\":[{\"role\":\"checked-method\",\"message\":\"while checking TalksController#complete against its annotation\",\"span\":{\"file\":\"talks/annotations.rb\",\"line\":26,\"col\":1},\"method\":\"TalksController#complete\"}]}",
        ),
    ];
    let versions = error_versions();
    for (version, want) in golden {
        let v = versions.iter().find(|v| v.version == version).unwrap();
        let got: Vec<ErrorVersionDiag> = lint_error_version(v);
        assert_eq!(got.len(), 1, "{version}");
        assert_eq!(got[0].json, want, "{version}: JSON golden");
    }
}

/// Human rendering golden for one version end-to-end (the exact lines a
/// developer sees).
#[test]
fn render_golden_subscribed_talks() {
    let versions = error_versions();
    let v = versions.iter().find(|v| v.version == "1/26/12-3").unwrap();
    let d = lint_error_version(v).remove(0);
    assert_eq!(
        d.rendered,
        "error[HB0002]: argument type mismatch calling User#subscribed_talks: got (%bool), type is (Symbol) -> Array<Talk> at talks/buggy.rb:5:13\n  \
         blamed-annotation: annotation `(Symbol) -> Array<Talk>` on User#subscribed_talks declared here at talks/annotations.rb:9:1 (User#subscribed_talks)\n  \
         checked-method: while checking ListsController#subscribed against its annotation at talks/annotations.rb:29:1 (ListsController#subscribed)"
    );
}

/// The clean subject apps lint at zero diagnostics (the `hb_lint` CI
/// gate's other half).
#[test]
fn clean_apps_lint_clean() {
    for spec in hb_apps::all_apps() {
        let mut hb = hb_apps::build_app(&spec, hummingbird::Mode::Full);
        let diags = hb.check_all();
        assert!(
            diags.is_empty(),
            "{}: expected clean lint, got {:?}",
            spec.name,
            diags
                .iter()
                .map(|d| format!("{} {}", d.code, d.message))
                .collect::<Vec<_>>()
        );
    }
}
