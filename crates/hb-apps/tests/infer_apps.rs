//! Checker-verified signature inference over the six subject apps:
//! determinism (serial vs parallel, tree-walk vs bytecode), soundness
//! accounting (every adoption was verified by `check_sig`), idempotence,
//! and the end-to-end payoff — inferred annotations convert unannotated
//! residue into patched fast entries at runtime.

use hb_apps::{all_apps, build_app_with, run_workload, AppSpec};
use hummingbird::{ExecTier, Hummingbird, InferReport};

/// Builds `spec`, asserts it type-checks clean, and runs signature
/// inference with the workload call declared as the entry point.
fn infer(spec: &AppSpec, jobs: usize, tier: ExecTier) -> (Hummingbird, InferReport) {
    let mut hb = build_app_with(spec, Hummingbird::builder().exec_tier(tier));
    let errors = hb.check_all_parallel(jobs);
    assert!(
        errors.is_empty(),
        "{}: expected 0 type errors before inference",
        spec.name
    );
    let call = (spec.workload_call)(1);
    let report = hb.infer_with_entries(jobs, &[("<workload>", &call)]);
    (hb, report)
}

/// A run's complete observable output: adopted signatures in adoption
/// order plus rendered HB2001 diagnostics in canonical order.
fn transcript(hb: &Hummingbird, report: &InferReport) -> Vec<String> {
    let map = hb.source_map();
    let mut out: Vec<String> = report
        .adopted
        .iter()
        .map(|(k, line)| format!("adopt {k}: {line}"))
        .collect();
    out.extend(report.diagnostics.iter().map(|d| d.render(map)));
    out
}

/// Fanning candidate verification across scheduler workers must not
/// change a byte of output relative to the serial path.
#[test]
fn inference_is_byte_identical_serial_vs_parallel() {
    for spec in all_apps() {
        let (hb_s, serial) = infer(&spec, 1, ExecTier::TreeWalk);
        let (hb_p, parallel) = infer(&spec, 4, ExecTier::TreeWalk);
        assert_eq!(
            transcript(&hb_s, &serial),
            transcript(&hb_p, &parallel),
            "{}: serial vs --jobs 4 inference drifted",
            spec.name
        );
        assert_eq!(serial.candidates, parallel.candidates, "{}", spec.name);
        assert_eq!(serial.rejected, parallel.rejected, "{}", spec.name);
    }
}

/// Inference reads the same registry/annotation state regardless of
/// execution tier, so its output is identical under both.
#[test]
fn inference_is_identical_across_exec_tiers() {
    for spec in all_apps() {
        let (hb_t, tree) = infer(&spec, 1, ExecTier::TreeWalk);
        let (hb_b, byte) = infer(&spec, 1, ExecTier::Bytecode);
        assert_eq!(
            transcript(&hb_t, &tree),
            transcript(&hb_b, &byte),
            "{}: tree-walk vs bytecode inference drifted",
            spec.name
        );
    }
}

/// The soundness ledger: every adopted signature survived the checker
/// (`inferred_verified` covers it), every refuted candidate is counted
/// and warned about, and the program still checks clean afterwards.
#[test]
fn every_adoption_is_checker_verified_and_counted() {
    for spec in all_apps() {
        let (mut hb, report) = infer(&spec, 1, ExecTier::TreeWalk);
        let stats = hb.stats();
        assert!(
            !report.adopted.is_empty(),
            "{}: expected at least one adoption",
            spec.name
        );
        assert_eq!(
            stats.inferred_adopted,
            report.adopted.len() as u64,
            "{}: adoption ledger",
            spec.name
        );
        assert!(
            stats.inferred_verified >= stats.inferred_adopted,
            "{}: adoption without verification",
            spec.name
        );
        assert_eq!(
            stats.inferred_rejected, report.rejected as u64,
            "{}: rejection ledger",
            spec.name
        );
        assert_eq!(
            report.rejected,
            report.diagnostics.len(),
            "{}: every refuted candidate warns (HB2001) exactly once",
            spec.name
        );
        assert!(
            hb.check_all_parallel(1).is_empty(),
            "{}: program must still check clean after adoption",
            spec.name
        );
    }
}

/// Running inference twice is a fixpoint: the second run re-derives the
/// same signatures (inferred annotations are re-derivable, never
/// pinning) and registers nothing new.
#[test]
fn inference_is_idempotent() {
    for spec in all_apps() {
        let (mut hb, first) = infer(&spec, 1, ExecTier::TreeWalk);
        let adopted_after_first = hb.stats().inferred_adopted;
        let call = (spec.workload_call)(1);
        let second = hb.infer_with_entries(1, &[("<workload>", &call)]);
        assert_eq!(
            first.adopted.iter().map(|(_, l)| l).collect::<Vec<_>>(),
            second.adopted.iter().map(|(_, l)| l).collect::<Vec<_>>(),
            "{}: re-inference must converge on the same signatures",
            spec.name
        );
        assert_eq!(
            hb.stats().inferred_adopted,
            adopted_after_first,
            "{}: re-inference must not register new annotations",
            spec.name
        );
    }
}

/// The end-to-end payoff: adopting inferred signatures strictly grows
/// the number of fast entries the bytecode tier patches for the same
/// workload — unannotated residue became elided fast paths.
#[test]
fn inferred_annotations_strictly_grow_patched_fast_entries() {
    for spec in all_apps() {
        let mut base = build_app_with(&spec, Hummingbird::builder().exec_tier(ExecTier::Bytecode));
        assert!(base.check_all_parallel(1).is_empty(), "{}", spec.name);
        run_workload(&spec, &mut base, 3);
        let before = base.stats().fast_entries_patched;

        let (mut hb, report) = infer(&spec, 1, ExecTier::Bytecode);
        assert!(!report.adopted.is_empty(), "{}", spec.name);
        run_workload(&spec, &mut hb, 3);
        let after = hb.stats().fast_entries_patched;
        assert!(
            after > before,
            "{}: inferred annotations must patch new fast entries ({before} -> {after})",
            spec.name
        );
    }
}
