//! The embedding layer's bridge to the `hb-analyze` lint suite.
//!
//! [`Hummingbird::analyze`] distills the *live* system — interpreter
//! registry, RDL annotation table, source map — into an
//! [`hb_analyze::ProgramView`] and runs the whole pass suite over it:
//! the per-method dataflow passes (HB1001–HB1004) over every
//! user-defined method and every load-time root, then the call-graph
//! passes (HB1005 stale annotations, HB1006 dynamic-check residue).
//!
//! Building the view from the runtime rather than from source is what
//! makes the analysis *whole-program* in the paper's sense: methods
//! created by metaprogramming (`define_method`, `attr_accessor`) are in
//! the registry and therefore analyzed; ancestor chains reflect actual
//! `include`s; annotations are read from the same table the engine
//! checks against.
//!
//! With `jobs > 1` the per-unit passes fan across the scheduler's
//! workers (each unit is a pure function of the shared view). Results
//! are keyed by submission index and re-assembled in order before the
//! final [`sort_diagnostics`] pass, so parallel output is byte-identical
//! to serial output.

use crate::sched::sort_diagnostics;
use crate::Hummingbird;
use hb_analyze::callgraph::analyze_call_graph;
use hb_analyze::ResidueSummary;
use hb_analyze::{analyze_unit, collect_roots, AnnotationUnit, MethodUnit, ProgramView};
use hb_il::{lower_block_body, lower_method, MethodCfg};
use hb_intern::MethodKey;
use hb_interp::{ClassId, MethodBody, MethodEntry};
use hb_rdl::AnnotationSource;
use hb_sched::Scheduler;
use hb_syntax::{parse_with_file, TypeDiagnostic};
use std::sync::mpsc;
use std::sync::Arc;

/// The result of one whole-program analysis run.
#[derive(Clone)]
pub struct AnalysisReport {
    /// All warnings, in canonical `(file, span, code, message)` order.
    pub diagnostics: Vec<TypeDiagnostic>,
    /// The residue auditor's aggregate numbers.
    pub summary: ResidueSummary,
}

fn lower_entry(entry: &MethodEntry) -> Option<MethodCfg> {
    match &entry.body {
        MethodBody::Ast(def) => Some(lower_method(def)),
        MethodBody::FromProc(p) => Some(lower_block_body(&p.params, &p.body, p.span)),
        MethodBody::Builtin(_) => None,
    }
}

/// Distills the live system into the immutable view the analyses run on.
pub fn build_view(hb: &Hummingbird) -> ProgramView {
    let mut view = ProgramView::default();
    let registry = &hb.interp.registry;

    for i in 0..registry.class_count() as u32 {
        let cid = ClassId(i);
        let class = registry.class(cid);
        // Chains by name, exactly the engine's resolution walk.
        // (Later duplicates of a renamed class simply overwrite.)
        view.chains.insert(
            class.name.clone(),
            registry
                .ancestor_syms(cid)
                .map(|(_, s)| s.as_str().to_string())
                .collect(),
        );
        // FastMap iteration order is arbitrary: sort for determinism.
        let mut pairs: Vec<(&String, &MethodEntry)> = class.methods.iter().collect();
        pairs.sort_by_key(|(n, _)| *n);
        for (name, entry) in pairs {
            if let Some(cfg) = lower_entry(entry) {
                let key = MethodKey::instance(&class.name, name);
                if matches!(entry.body, MethodBody::FromProc(_)) {
                    view.dynamic_defs.insert(key);
                }
                view.methods.push(MethodUnit {
                    key,
                    cfg: Arc::new(cfg),
                });
            }
        }
        let mut pairs: Vec<(&String, &MethodEntry)> = class.smethods.iter().collect();
        pairs.sort_by_key(|(n, _)| *n);
        for (name, entry) in pairs {
            if let Some(cfg) = lower_entry(entry) {
                let key = MethodKey::class_level(&class.name, name);
                if matches!(entry.body, MethodBody::FromProc(_)) {
                    view.dynamic_defs.insert(key);
                }
                view.methods.push(MethodUnit {
                    key,
                    cfg: Arc::new(cfg),
                });
            }
        }
    }
    view.methods.sort_by_key(|m| m.key);

    for (key, entry) in hb.rdl.entries() {
        view.annotations.insert(
            key,
            AnnotationUnit {
                span: entry.span,
                check: entry.check,
                always_dyn_check: entry.always_dyn_check,
                inferred: entry.source == AnnotationSource::Inferred,
            },
        );
    }

    // Roots come from re-parsing every loaded file with its original
    // FileId (so spans resolve against the live source map). Bracketed
    // files — `<corelib>`, `<rails/…>`, `<eval>` — are framework
    // substrate and harness glue: their load-time code still contributes
    // roots and call edges, but warnings are scoped to app files.
    let sm = &hb.interp.source_map;
    for (fid, file) in sm.files() {
        if !file.name.starts_with('<') {
            view.warn_files.insert(fid);
        }
        let Ok(program) = parse_with_file(&file.text, fid) else {
            continue;
        };
        view.roots.extend(collect_roots(&program, &file.name));
    }
    view
}

/// Registers an embedder entry snippet in the source map so
/// [`build_view`] collects its roots. Re-registering an identical
/// `(name, text)` pair is a no-op: repeated analyze/infer calls on the
/// same instance must not multiply the snippet's call edges.
pub(crate) fn intern_entry_file(hb: &mut Hummingbird, name: &str, src: &str) {
    let present = hb
        .interp
        .source_map
        .files()
        .any(|(_, f)| f.name == name && f.text == src);
    if !present {
        hb.interp.source_map.add_file(name, src);
    }
}

/// One analyzable unit: a method or a root, with its display label.
fn units(view: &ProgramView) -> Vec<(String, Option<MethodKey>, Arc<hb_il::MethodCfg>)> {
    let mut out = Vec::new();
    for m in &view.methods {
        out.push((m.key.to_string(), Some(m.key), m.cfg.clone()));
    }
    for r in &view.roots {
        let label = if r.class_level {
            format!("class body of {} ({})", r.owner, r.file)
        } else {
            format!("top level of {}", r.file)
        };
        out.push((label, None, r.cfg.clone()));
    }
    out
}

/// Runs the whole suite serially.
fn run_serial(view: &ProgramView) -> Vec<TypeDiagnostic> {
    units(view)
        .into_iter()
        .flat_map(|(label, key, cfg)| analyze_unit(view, label, key, &cfg))
        .collect()
}

/// Fans per-unit analysis across the scheduler's workers. Each job is a
/// pure function of the shared view; results come back over a channel
/// keyed by submission index, so assembly order is deterministic.
fn run_parallel(view: &Arc<ProgramView>, sched: &Scheduler) -> Vec<TypeDiagnostic> {
    let us = units(view);
    let n = us.len();
    let (tx, rx) = mpsc::channel::<(usize, Vec<TypeDiagnostic>)>();
    for (i, (label, key, cfg)) in us.into_iter().enumerate() {
        let v = view.clone();
        let tx_job = tx.clone();
        let job_label = label.clone();
        let job_cfg = cfg.clone();
        let accepted = sched.submit_job(move || {
            let _ = tx_job.send((i, analyze_unit(&v, job_label, key, &job_cfg)));
        });
        if !accepted {
            // Shut-down pool (cannot happen while we hold the Arc, but
            // fail safe): analyze inline.
            let _ = tx.send((i, analyze_unit(view, label, key, &cfg)));
        }
    }
    drop(tx);
    let mut slots: Vec<Vec<TypeDiagnostic>> = vec![Vec::new(); n];
    for (i, diags) in rx {
        slots[i] = diags;
    }
    slots.into_iter().flatten().collect()
}

impl Hummingbird {
    /// Runs the whole-program lint suite (`HB1001`–`HB1006`) over the
    /// currently loaded program and returns the warnings in canonical
    /// order plus the residue auditor's summary.
    ///
    /// `jobs > 1` fans the per-method passes across that many scheduler
    /// workers (reusing the attached scheduler when it is at least that
    /// wide); output is byte-identical to the serial path.
    pub fn analyze(&mut self, jobs: usize) -> AnalysisReport {
        self.analyze_with_entries(jobs, &[])
    }

    /// [`Hummingbird::analyze`] with extra *entry points*: source snippets
    /// that are parsed (never executed) and added as reachability roots.
    /// This is how an embedder declares the calls its harness makes into
    /// the program — e.g. the workload driver call — so the
    /// stale-annotation and residue audits see them. The snippets are
    /// registered in the source map under their (bracketed, warn-exempt)
    /// names so any spans render.
    pub fn analyze_with_entries(
        &mut self,
        jobs: usize,
        entries: &[(&str, &str)],
    ) -> AnalysisReport {
        for (name, src) in entries {
            intern_entry_file(self, name, src);
        }
        let view = Arc::new(build_view(self));
        let mut diagnostics = if jobs > 1 {
            match self.scheduler() {
                Some(s) if s.worker_count() >= jobs => run_parallel(&view, &s),
                _ => run_parallel(&view, &Scheduler::new(jobs)),
            }
        } else {
            run_serial(&view)
        };
        let (mut cg_diags, summary) = analyze_call_graph(&view);
        diagnostics.append(&mut cg_diags);
        sort_diagnostics(&mut diagnostics);
        AnalysisReport {
            diagnostics,
            summary,
        }
    }
}
