//! # Hummingbird: just-in-time static type checking for dynamic languages
//!
//! A from-scratch reproduction of *"Just-in-Time Static Type Checking for
//! Dynamic Languages"* (Ren & Foster, PLDI 2016). Type annotations are
//! programs: they execute at run time (including from metaprogramming
//! hooks), building a live type table. When an annotated method is called,
//! its body is statically type checked against the *current* table — once —
//! and the resulting derivation is cached, with invalidation when methods
//! or types change (paper Definitions 1–2).
//!
//! # Embedding API
//!
//! A [`Hummingbird`] system is assembled by [`HummingbirdBuilder`] — the
//! single assembly path for every configuration (evaluation mode, shared
//! derivation tier, enforcement policy, store caps, diagnostic sinks):
//!
//! ```
//! use hummingbird::Hummingbird;
//!
//! let mut hb = Hummingbird::builder().build();
//! hb.eval(r#"
//! class Talk
//!   type :title_line, "(String) -> String", { "check" => true }
//!   def title_line(prefix)
//!     prefix + ": talk"
//!   end
//! end
//! Talk.new.title_line("PLDI")
//! "#)
//! .unwrap();
//! assert_eq!(hb.stats().checks_performed, 1);
//! ```
//!
//! Production rollouts tune *how blame is enforced* per method with
//! [`CheckPolicy`] — `Enforce` raises (the default), `Shadow` records the
//! structured diagnostic and lets the call proceed (canary deploys), `Off`
//! skips enforcement — settable globally, per class, or per method, from
//! Rust or from RubyLite's `check_policy` builtin:
//!
//! ```
//! use hummingbird::{CheckPolicy, Hummingbird};
//!
//! let mut hb = Hummingbird::builder()
//!     .check_policy(CheckPolicy::Shadow)
//!     .build();
//! hb.eval(r#"
//! class Talk
//!   type :late?, "(Fixnum) -> %bool", { "check" => true }
//!   def late?(mins)
//!     mins + 1
//!   end
//! end
//! Talk.new.late?(5)
//! "#)
//! .unwrap(); // Shadow: the blame is recorded, execution continued
//! assert_eq!(hb.diagnostics().len(), 1);
//! assert_eq!(hb.stats().shadowed_blames, 1);
//! ```
//!
//! Fleets share one process-wide [`SharedCache`] so tenants warm each
//! other, and [`Hummingbird::snapshot`] serializes that tier to bytes a
//! *freshly booted process* can load ([`SharedCache::load_snapshot`]) to
//! resolve its first calls by adoption instead of re-deriving — the warm
//! start, carried across processes (see [`snapshot`]).

pub mod analyze;
pub mod engine;
pub mod fleet;
pub mod infer;
pub mod info;
pub mod obs;
pub mod reload;
pub mod sched;
pub mod shared_cache;
pub mod snapshot;
pub mod stats;

pub use analyze::AnalysisReport;
pub use engine::{CacheDumpEntry, Config, Engine};
pub use fleet::{FleetClient, FleetError, FleetSyncReport, FleetWatermark};
pub use hb_analyze::ResidueSummary;
pub use infer::InferReport;
pub use info::RegistryInfo;
pub use obs::EngineObs;
pub use reload::{FileMethod, ReloadReport};
pub use shared_cache::{SharedCache, SharedCacheStats, SharedDerivation};
pub use snapshot::{CacheSnapshot, SnapshotError};
pub use stats::{CheckLogItem, CheckVerdict, EngineStats};

pub use hb_check::{CheckError, CheckOptions, CheckRequest, TypeTable};
pub use hb_interp::{ErrorKind, ExecTier, HbError, Interp, Value};
pub use hb_obs::{validate_json, HistogramSummary, ObsLevel};
pub use hb_rdl::{CheckPolicy, DiagnosticSink, MethodKey, RdlState, RdlStats};
pub use hb_sched::{CheckTask, Scheduler, TaskVerdict, WorldSnapshot};
pub use hb_syntax::{BlameTarget, DiagCode, DiagLabel, LabelRole, SourceMap, TypeDiagnostic};

use hb_rdl::{install_rdl, RdlHook};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// The core-library annotations shipped with the engine (the analogue of
/// RDL's bundled types).
pub const CORELIB_ANNOTATIONS: &str = include_str!("../annotations/corelib.rb");

/// The three evaluation modes of paper Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// "Orig": no interception at all.
    Original,
    /// "No$": full checking with the derivation cache disabled.
    NoCache,
    /// "Hum": full checking with caching.
    Full,
}

/// Configures and assembles a [`Hummingbird`] system — the single
/// embedding entry point (Embedding API v1).
///
/// Defaults: [`Mode::Full`], no shared tier, caching and dynamic argument
/// checks per mode, [`CheckPolicy::Enforce`], default store caps, core
/// library loaded. Every knob is a chainable setter; [`build`] assembles
/// the interpreter + RDL + engine stack, loads the core-library
/// annotations (unless disabled or `Mode::Original`), and resets the
/// statistics so app code starts from a clean slate.
///
/// ```
/// use hummingbird::{CheckPolicy, Hummingbird, SharedCache};
/// use std::sync::Arc;
///
/// let shared = Arc::new(SharedCache::new());
/// let hb = Hummingbird::builder()
///     .shared_cache(shared)               // one tenant of a fleet
///     .check_policy(CheckPolicy::Shadow)  // canary: record, don't raise
///     .diagnostics_cap(256)               // bound the blame store
///     .check_log_cap(1024)                // bound the check log
///     .build();
/// assert_eq!(hb.stats().checks_performed, 0);
/// ```
///
/// [`build`]: HummingbirdBuilder::build
#[must_use = "a builder does nothing until .build()"]
pub struct HummingbirdBuilder {
    mode: Mode,
    shared: Option<Arc<SharedCache>>,
    caching: Option<bool>,
    dyn_arg_checks: Option<bool>,
    policy: CheckPolicy,
    diagnostics_cap: Option<usize>,
    check_log_cap: Option<usize>,
    diagnostic_sinks: Vec<Rc<dyn DiagnosticSink>>,
    scheduler: Option<Arc<Scheduler>>,
    worker_threads: Option<usize>,
    corelib: bool,
    exec_tier: ExecTier,
    deferred_cap: Option<usize>,
    fleet_socket: Option<std::path::PathBuf>,
    observability: ObsLevel,
}

/// The default execution tier: [`ExecTier::Bytecode`] when the
/// `HB_EXEC_TIER` environment variable is set to `bytecode` (the CI
/// cross-tier run uses this), [`ExecTier::TreeWalk`] otherwise.
fn default_exec_tier() -> ExecTier {
    match std::env::var("HB_EXEC_TIER") {
        Ok(v) if v.eq_ignore_ascii_case("bytecode") => ExecTier::Bytecode,
        _ => ExecTier::TreeWalk,
    }
}

impl Default for HummingbirdBuilder {
    fn default() -> HummingbirdBuilder {
        HummingbirdBuilder {
            mode: Mode::Full,
            shared: None,
            caching: None,
            dyn_arg_checks: None,
            policy: CheckPolicy::Enforce,
            diagnostics_cap: None,
            check_log_cap: None,
            diagnostic_sinks: Vec::new(),
            scheduler: None,
            worker_threads: None,
            corelib: true,
            exec_tier: default_exec_tier(),
            deferred_cap: None,
            fleet_socket: None,
            observability: ObsLevel::Off,
        }
    }
}

impl HummingbirdBuilder {
    /// A builder with every default (equivalent to
    /// `Hummingbird::builder()`).
    pub fn new() -> HummingbirdBuilder {
        HummingbirdBuilder::default()
    }

    /// The evaluation mode (paper Table 1); default [`Mode::Full`].
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// The currently configured mode (read-back for harnesses that branch
    /// on it while finishing assembly — e.g. whether to load annotations).
    pub fn configured_mode(&self) -> Mode {
        self.mode
    }

    /// Attaches a process-wide shared derivation tier, making the system
    /// one *tenant* of a multi-tenant deployment. The tier is attached
    /// before any code (including the core library) loads, so identical
    /// tenants warm each other from the very first check.
    pub fn shared_cache(mut self, shared: Arc<SharedCache>) -> Self {
        self.shared = Some(shared);
        self
    }

    /// Overrides derivation caching (default: on, except [`Mode::NoCache`]).
    pub fn caching(mut self, on: bool) -> Self {
        self.caching = Some(on);
        self
    }

    /// Overrides dynamic argument checks (default: on, except
    /// [`Mode::Original`]).
    pub fn dyn_arg_checks(mut self, on: bool) -> Self {
        self.dyn_arg_checks = Some(on);
        self
    }

    /// The global enforcement policy (default [`CheckPolicy::Enforce`]).
    /// Per-class/per-method overrides layer on top — see
    /// [`Hummingbird::set_class_policy`] / [`Hummingbird::set_method_policy`]
    /// and the RubyLite `check_policy` builtin.
    pub fn check_policy(mut self, policy: CheckPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Retention bound of the blame-diagnostic store (default
    /// [`hb_rdl::DEFAULT_DIAGNOSTICS_CAP`]; zero keeps nothing and relies
    /// on sinks alone).
    pub fn diagnostics_cap(mut self, cap: usize) -> Self {
        self.diagnostics_cap = Some(cap);
        self
    }

    /// Retention bound of the engine check log between drains (default
    /// [`stats::DEFAULT_CHECK_LOG_CAP`]; zero disables the log).
    pub fn check_log_cap(mut self, cap: usize) -> Self {
        self.check_log_cap = Some(cap);
        self
    }

    /// Registers a streaming [`DiagnosticSink`]: every recorded blame
    /// diagnostic (enforced *and* shadowed) fans out to it as it happens —
    /// the push channel a canary deploy ships its shadow blames through.
    pub fn diagnostic_sink(mut self, sink: Rc<dyn DiagnosticSink>) -> Self {
        self.diagnostic_sinks.push(sink);
        self
    }

    /// Attaches a concurrent check [`Scheduler`] — the worker pool that
    /// executes type checks off the interpreter thread (parallel
    /// `check_all`, [`CheckPolicy::Deferred`] admissions). Pools are
    /// process-wide resources: pass the same `Arc` to every tenant of a
    /// fleet and their checks share the workers while results route back
    /// per engine.
    pub fn scheduler(mut self, sched: Arc<Scheduler>) -> Self {
        self.scheduler = Some(sched);
        self
    }

    /// Spawns a dedicated `n`-worker [`Scheduler`] for this system at
    /// build time (convenience over [`scheduler`]; the pool is torn down
    /// when the engine drops its last reference).
    ///
    /// [`scheduler`]: HummingbirdBuilder::scheduler
    pub fn worker_threads(mut self, n: usize) -> Self {
        self.worker_threads = Some(n);
        self
    }

    /// High-water cap on in-flight [`CheckPolicy::Deferred`] admissions
    /// (default [`stats::DEFAULT_DEFERRED_CAP`]). At the cap, a cold
    /// deferred call falls back to a *synchronous* Enforce check —
    /// counted in [`EngineStats::deferred_shed`] — instead of growing
    /// the scheduler queue without bound while the pool is paused or
    /// saturated.
    pub fn deferred_queue_cap(mut self, cap: usize) -> Self {
        self.deferred_cap = Some(cap);
        self
    }

    /// Attaches this system to the fleet derivation daemon listening on
    /// the Unix-domain socket at `path` (see [`fleet`]): the tier
    /// warm-boots from a full snapshot fetch before any code loads, and
    /// [`Hummingbird::fleet_sync`] thereafter publishes local
    /// derivations back and applies delta fetches. Implies a shared
    /// tier — one is created if [`shared_cache`] was not called.
    ///
    /// Connection or handshake failure does **not** fail the build: the
    /// system comes up detached (purely local checking) and records the
    /// error in [`Hummingbird::fleet_error`] — a dead daemon costs a
    /// fleet latency, never availability or soundness.
    ///
    /// [`shared_cache`]: HummingbirdBuilder::shared_cache
    pub fn fleet_socket(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.fleet_socket = Some(path.into());
        self
    }

    /// Selects how much the engine records about itself (default
    /// [`ObsLevel::Off`]). [`ObsLevel::Metrics`] collects the latency
    /// histograms and counters behind [`Hummingbird::metrics`] /
    /// [`Hummingbird::metrics_prometheus`]; [`ObsLevel::Trace`]
    /// additionally records the typed event ring behind
    /// [`Hummingbird::trace_json`]. With the default `Off`, each
    /// instrumented hot path costs one `Cell` load and the engine
    /// allocates no observability state at all.
    pub fn observability(mut self, level: ObsLevel) -> Self {
        self.observability = level;
        self
    }

    /// Skips loading the bundled core-library annotations (fixtures and
    /// micro-harnesses; production embeddings want them).
    pub fn without_corelib(mut self) -> Self {
        self.corelib = false;
        self
    }

    /// Selects the execution tier: the classic tree-walk interpreter or
    /// the register-bytecode VM with derivation-driven check elision
    /// (default: [`ExecTier::TreeWalk`], overridable process-wide via the
    /// `HB_EXEC_TIER=bytecode` environment variable). Semantics are
    /// identical across tiers; the bytecode tier additionally patches
    /// methods whose derivation holds onto a checked fast prologue that
    /// skips the hook probe entirely.
    pub fn exec_tier(mut self, tier: ExecTier) -> Self {
        self.exec_tier = tier;
        self
    }

    /// Assembles the system: interpreter + RDL + engine, hooks installed
    /// per mode, configuration applied, core library loaded, statistics
    /// reset.
    ///
    /// # Panics
    ///
    /// Panics if the bundled core-library annotations fail to load (a
    /// build defect, not a runtime condition).
    pub fn build(self) -> Hummingbird {
        let mut interp = Interp::new();
        let rdl = install_rdl(&mut interp);
        let engine = Rc::new(Engine::new(rdl.clone()));
        let mut shared = self.shared;
        if self.fleet_socket.is_some() && shared.is_none() {
            // Fleet attachment implies a shared tier for the fetched
            // candidates to land in.
            shared = Some(Arc::new(SharedCache::new()));
        }
        if let Some(shared) = shared.clone() {
            engine.set_shared_cache(shared);
        }
        // Connect and warm-boot from the fleet daemon before any code
        // (even the core library) loads, so boot-time checks already
        // adopt fetched derivations. Failure degrades to local checking.
        let mut fleet = None;
        let mut fleet_err = None;
        let mut fleet_boot_fetches = 0u64;
        let mut fleet_boot_ns = 0u64;
        if let Some(path) = &self.fleet_socket {
            let shared = shared.clone().expect("fleet implies a shared tier");
            let t0 = std::time::Instant::now();
            match fleet::FleetSession::attach(path, shared) {
                Ok((session, _loaded)) => {
                    fleet = Some(session);
                    fleet_boot_fetches = 1;
                    fleet_boot_ns = t0.elapsed().as_nanos() as u64;
                }
                Err(e) => fleet_err = Some(e),
            }
        }
        if self.mode != Mode::Original {
            interp.add_hook(Rc::new(RdlHook { state: rdl.clone() }));
            interp.add_hook(engine.clone());
        }
        interp.tier.set_tier(self.exec_tier);
        // Attach regardless of tier so invalidation always depatches: a
        // patch table must never outlive the derivation it mirrors.
        engine.attach_exec_tier(interp.tier.clone());
        engine.set_config(Config {
            enabled: self.mode != Mode::Original,
            caching: self.caching.unwrap_or(self.mode != Mode::NoCache),
            dyn_arg_checks: self.dyn_arg_checks.unwrap_or(self.mode != Mode::Original),
        });
        if self.policy != CheckPolicy::Enforce {
            rdl.set_global_policy(self.policy);
        }
        if let Some(cap) = self.diagnostics_cap {
            rdl.set_diagnostics_cap(cap);
        }
        if let Some(cap) = self.check_log_cap {
            engine.set_check_log_cap(cap);
        }
        if let Some(cap) = self.deferred_cap {
            engine.set_deferred_cap(cap);
        }
        for sink in self.diagnostic_sinks {
            rdl.add_diagnostic_sink(sink);
        }
        if let Some(sched) = self.scheduler {
            engine.set_scheduler(sched);
        } else if let Some(n) = self.worker_threads {
            engine.set_scheduler(Arc::new(Scheduler::new(n)));
        }
        let mut hb = Hummingbird {
            interp,
            rdl,
            engine,
            file_methods: HashMap::new(),
            fleet,
            fleet_err,
        };
        if self.corelib && self.mode != Mode::Original {
            // "Orig" runs without Hummingbird entirely; otherwise load the
            // bundled core-library types.
            hb.load_file("<corelib>", CORELIB_ANNOTATIONS)
                .expect("core-library annotations must load");
        }
        // Core-library annotation loading is setup, not app behaviour.
        hb.engine.reset_stats();
        hb.rdl.drain_events();
        // The warm-boot fetch *is* app-relevant accounting: re-credit it
        // after the reset so `stats().fleet_fetches` reflects the boot.
        if fleet_boot_fetches > 0 {
            hb.engine.add_fleet_counters(fleet_boot_fetches, 0, 0, 0);
        }
        // Observability comes up after the reset so core-library loading
        // never pollutes the histograms; the boot fetch is re-recorded
        // for the same reason the counter is re-credited above.
        if self.observability != ObsLevel::Off {
            hb.engine.set_observability(self.observability);
            if fleet_boot_fetches > 0 {
                if let Some(obs) = hb.engine.obs() {
                    obs.fleet_fetch.record(fleet_boot_ns);
                    obs.record_span(
                        hb_obs::EventKind::FleetFetch,
                        obs::fleet_key(),
                        fleet_boot_ns,
                    );
                }
            }
        }
        hb
    }
}

/// The assembled Hummingbird system: interpreter + RDL + engine.
pub struct Hummingbird {
    pub interp: Interp,
    pub rdl: Rc<RdlState>,
    pub engine: Rc<Engine>,
    pub(crate) file_methods: HashMap<String, Vec<FileMethod>>,
    pub(crate) fleet: Option<fleet::FleetSession>,
    pub(crate) fleet_err: Option<FleetError>,
}

impl Hummingbird {
    /// The embedding entry point: a [`HummingbirdBuilder`] with defaults.
    pub fn builder() -> HummingbirdBuilder {
        HummingbirdBuilder::default()
    }

    /// A fully enabled system with core-library annotations loaded.
    #[deprecated(note = "use `Hummingbird::builder().build()` (Embedding API v1)")]
    pub fn new() -> Hummingbird {
        Hummingbird::builder().build()
    }

    /// A fully enabled system attached to a process-wide shared derivation
    /// tier: one *tenant* of a multi-tenant deployment.
    #[deprecated(
        note = "use `Hummingbird::builder().shared_cache(shared).build()` (Embedding API v1)"
    )]
    pub fn new_tenant(shared: Arc<SharedCache>) -> Hummingbird {
        Hummingbird::builder().shared_cache(shared).build()
    }

    /// A tenant in an explicit evaluation mode.
    #[deprecated(
        note = "use `Hummingbird::builder().mode(mode).shared_cache(shared).build()` \
                (Embedding API v1)"
    )]
    pub fn tenant_with_mode(mode: Mode, shared: Arc<SharedCache>) -> Hummingbird {
        Hummingbird::builder()
            .mode(mode)
            .shared_cache(shared)
            .build()
    }

    /// Builds a system in the given evaluation mode.
    ///
    /// # Panics
    ///
    /// Panics if the bundled core-library annotations fail to load (a build
    /// defect, not a runtime condition).
    #[deprecated(note = "use `Hummingbird::builder().mode(mode).build()` (Embedding API v1)")]
    pub fn with_mode(mode: Mode) -> Hummingbird {
        Hummingbird::builder().mode(mode).build()
    }

    /// Loads a source file into the running system.
    ///
    /// # Errors
    ///
    /// Parse errors and uncaught runtime errors (including blame).
    pub fn load_file(&mut self, name: &str, src: &str) -> Result<Value, HbError> {
        self.track_file_methods(name, src);
        self.interp.load_program(name, src)
    }

    /// Evaluates a source string.
    ///
    /// # Errors
    ///
    /// Parse errors and uncaught runtime errors (including blame).
    pub fn eval(&mut self, src: &str) -> Result<Value, HbError> {
        self.interp.load_program("<eval>", src)
    }

    /// Engine statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    // ----- observability exports ---------------------------------------------

    /// The full metrics export as a JSON document:
    /// `{"schema_version":1,"stats":{..},"counters":{..},"histograms":{..}}`.
    /// `stats` holds every [`EngineStats`] field (always populated);
    /// `counters`/`histograms` hold the [`obs`] registry series and are
    /// empty unless the system was built with
    /// [`HummingbirdBuilder::observability`] at [`ObsLevel::Metrics`] or
    /// above. Histogram entries carry `count`, `sum`, `p50`, `p90`,
    /// `p99`, and `max` (nanoseconds). See `docs/METRICS.md`.
    pub fn metrics(&self) -> String {
        let stats = self.stats();
        let registry_json = match self.engine.obs() {
            Some(o) => o.registry.render_json(),
            None => String::from("{\"counters\":{},\"histograms\":{}}"),
        };
        // The registry renders `{"counters":{..},"histograms":{..}}`;
        // splice its body into the envelope.
        let body = &registry_json[1..registry_json.len() - 1];
        format!(
            "{{\"schema_version\":1,\"stats\":{},{}}}",
            obs::stats_json(&stats),
            body
        )
    }

    /// The full metrics export in the Prometheus text exposition format:
    /// the registry's counter and histogram series (when observability is
    /// on) followed by every [`EngineStats`] field as an
    /// `hb_engine_<field>` series. See `docs/METRICS.md`.
    pub fn metrics_prometheus(&self) -> String {
        let mut out = match self.engine.obs() {
            Some(o) => o.registry.render_prometheus(),
            None => String::new(),
        };
        out.push_str(&obs::stats_prometheus(&self.stats()));
        out
    }

    /// The flight-recorder timeline as a chrome://tracing-compatible
    /// JSON document (load it in `chrome://tracing` or Perfetto). Empty
    /// (`{"traceEvents":[]}`) unless the system was built at
    /// [`ObsLevel::Trace`].
    pub fn trace_json(&self) -> String {
        let events = self
            .engine
            .obs()
            .map(|o| o.ring_snapshot())
            .unwrap_or_default();
        hb_obs::export::chrome_trace(&events, |e| format!("{} {}", e.kind.name(), e.key))
    }

    /// Eagerly checks every annotated, checkable method — the whole
    /// program, without waiting for triggering calls — and returns the
    /// failures as structured diagnostics (empty when the program lints
    /// clean). See [`Engine::check_all`]; this is the `hb_lint` entry
    /// point, and it warms the derivation caches as a side effect.
    /// Methods under [`CheckPolicy::Off`] are skipped.
    pub fn check_all(&mut self) -> Vec<TypeDiagnostic> {
        let engine = self.engine.clone();
        engine.check_all(&mut self.interp)
    }

    /// [`Hummingbird::check_all`] fanned across `jobs` scheduler workers:
    /// the whole annotated-method set is captured as `Send` check tasks
    /// against one world snapshot, checked in parallel, validated and
    /// adopted at harvest, and reported with diagnostics byte-identical
    /// to the serial path (same `(file, span, code)` order). `jobs <= 1`
    /// is exactly the serial path. See [`Engine::check_all_parallel`].
    pub fn check_all_parallel(&mut self, jobs: usize) -> Vec<TypeDiagnostic> {
        let engine = self.engine.clone();
        engine.check_all_parallel(&mut self.interp, jobs)
    }

    /// Blocks until every check task this system enqueued on the
    /// scheduler has completed, then lands the results — the barrier
    /// after which asynchronously produced ([`CheckPolicy::Deferred`])
    /// blame is guaranteed visible in [`Hummingbird::diagnostics`] and
    /// passing derivations are cached.
    pub fn sched_quiesce(&mut self) {
        let engine = self.engine.clone();
        engine.process_events(&mut self.interp);
        engine.sched_quiesce(&self.interp);
    }

    /// The attached concurrent check scheduler, if any.
    pub fn scheduler(&self) -> Option<Arc<Scheduler>> {
        self.engine.scheduler()
    }

    /// Every blame diagnostic produced so far (just-in-time, eager and
    /// shadowed), in emission order.
    pub fn diagnostics(&self) -> Vec<TypeDiagnostic> {
        self.engine.diagnostics()
    }

    /// The source map resolving diagnostic spans to file/line/column —
    /// pass it to [`TypeDiagnostic::render`] / [`TypeDiagnostic::to_json`].
    pub fn source_map(&self) -> &SourceMap {
        &self.interp.source_map
    }

    /// RDL annotation statistics snapshot.
    pub fn rdl_stats(&self) -> RdlStats {
        self.rdl.stats()
    }

    /// Switches caching on/off at run time (ablation).
    pub fn set_caching(&self, on: bool) {
        let mut c = self.engine.config();
        c.caching = on;
        self.engine.set_config(c);
    }

    /// Switches dynamic argument checks on/off at run time (ablation).
    pub fn set_dyn_arg_checks(&self, on: bool) {
        let mut c = self.engine.config();
        c.dyn_arg_checks = on;
        self.engine.set_config(c);
    }

    // ----- enforcement policies ---------------------------------------------

    /// Sets the global [`CheckPolicy`] at run time (rollout control; the
    /// builder sets the boot-time value).
    pub fn set_check_policy(&self, policy: CheckPolicy) {
        self.rdl.set_global_policy(policy);
    }

    /// Sets a per-class policy override (exact class name: applies when
    /// the receiver's class or the annotation's declaring class matches).
    pub fn set_class_policy(&self, class: &str, policy: CheckPolicy) {
        self.rdl
            .set_class_policy(hb_intern::Sym::intern(class), policy);
    }

    /// Sets a per-method policy override (exact key: matched against the
    /// receiver-class key and the annotation's own key).
    pub fn set_method_policy(&self, key: MethodKey, policy: CheckPolicy) {
        self.rdl.set_method_policy(key, policy);
    }

    // ----- snapshots ---------------------------------------------------------

    /// Serializes the attached shared derivation tier into a portable
    /// [`CacheSnapshot`] — the artifact a freshly booted process loads
    /// ([`SharedCache::load_snapshot`]) to warm-start from disk. `None`
    /// when the system has no shared tier (build with
    /// [`HummingbirdBuilder::shared_cache`]).
    pub fn snapshot(&self) -> Option<CacheSnapshot> {
        self.engine.shared_cache().map(|s| s.snapshot())
    }

    /// Loads a [`CacheSnapshot`] into this *live* system — the
    /// rolling-deploy artifact push. The entries land in the attached
    /// shared tier, and every local derivation for a method the snapshot
    /// covers is retired (its bytecode-tier fast entry deoptimized back
    /// to the guarded prologue) so the next dispatch re-validates against
    /// the fresh artifact and re-patches. Returns the number of shared
    /// entries loaded; [`SnapshotError::NoSharedTier`] when the system was
    /// built without [`HummingbirdBuilder::shared_cache`].
    pub fn load_snapshot(&mut self, snap: &CacheSnapshot) -> Result<usize, SnapshotError> {
        self.engine.load_snapshot(snap)
    }

    // ----- fleet serving ------------------------------------------------------

    /// True while this system holds a live attachment to the fleet
    /// daemon ([`HummingbirdBuilder::fleet_socket`]). A failed connect
    /// or a failed [`fleet_sync`] detaches — the system keeps running on
    /// purely local checking.
    ///
    /// [`fleet_sync`]: Hummingbird::fleet_sync
    pub fn fleet_attached(&self) -> bool {
        self.fleet.is_some()
    }

    /// The error that detached (or never attached) the fleet session,
    /// if any — operational visibility for the degrade-to-local path.
    pub fn fleet_error(&self) -> Option<&FleetError> {
        self.fleet_err.as_ref()
    }

    /// The watermark of the last successful fleet fetch.
    pub fn fleet_watermark(&self) -> Option<FleetWatermark> {
        self.fleet.as_ref().and_then(|s| s.watermark())
    }

    /// One fleet synchronization round: sends this tenant's pending
    /// eviction notices and locally derived publications to the daemon,
    /// then fetches and applies the delta past the current watermark
    /// (tombstoned families evicted and retired, fetched entries loaded
    /// as *candidates* that the normal adoption funnel validates).
    ///
    /// # Errors
    ///
    /// Any [`FleetError`]; the session detaches on error (subsequent
    /// calls return [`FleetError::Io`] with `NotConnected` semantics via
    /// [`Hummingbird::fleet_attached`] being false — callers should
    /// stop syncing) and the system degrades to local checking. Nothing
    /// in the live tier is ever left half-applied: sends restore their
    /// pending state, and snapshot loads are all-or-nothing.
    pub fn fleet_sync(&mut self) -> Result<FleetSyncReport, FleetError> {
        let Some(session) = self.fleet.as_mut() else {
            let why = self
                .fleet_err
                .as_ref()
                .map_or_else(|| "never attached".to_string(), |e| e.to_string());
            return Err(FleetError::Detached(why));
        };
        let engine = self.engine.clone();
        match session.sync(&engine, &mut self.interp) {
            Ok(report) => Ok(report),
            Err(e) => {
                // Degrade to local checking; the error stays readable.
                self.fleet = None;
                self.fleet_err = Some(FleetError::Detached(e.to_string()));
                Err(e)
            }
        }
    }
}

impl Default for Hummingbird {
    fn default() -> Self {
        Hummingbird::builder().build()
    }
}
