//! # Hummingbird: just-in-time static type checking for dynamic languages
//!
//! A from-scratch reproduction of *"Just-in-Time Static Type Checking for
//! Dynamic Languages"* (Ren & Foster, PLDI 2016). Type annotations are
//! programs: they execute at run time (including from metaprogramming
//! hooks), building a live type table. When an annotated method is called,
//! its body is statically type checked against the *current* table — once —
//! and the resulting derivation is cached, with invalidation when methods
//! or types change (paper Definitions 1–2).
//!
//! The [`Hummingbird`] facade owns the RubyLite interpreter host, the RDL
//! annotation layer and the engine:
//!
//! ```
//! use hummingbird::Hummingbird;
//!
//! let mut hb = Hummingbird::new();
//! hb.eval(r#"
//! class Talk
//!   type :title_line, "(String) -> String", { "check" => true }
//!   def title_line(prefix)
//!     prefix + ": talk"
//!   end
//! end
//! Talk.new.title_line("PLDI")
//! "#)
//! .unwrap();
//! assert_eq!(hb.stats().checks_performed, 1);
//! ```

pub mod engine;
pub mod info;
pub mod reload;
pub mod shared_cache;
pub mod stats;

pub use engine::{CacheDumpEntry, Config, Engine};
pub use info::RegistryInfo;
pub use reload::{FileMethod, ReloadReport};
pub use shared_cache::{SharedCache, SharedCacheStats, SharedDerivation};
pub use stats::{CheckLogItem, CheckVerdict, EngineStats};

pub use hb_check::{CheckError, CheckOptions, CheckRequest};
pub use hb_interp::{ErrorKind, HbError, Interp, Value};
pub use hb_rdl::{MethodKey, RdlState, RdlStats};
pub use hb_syntax::{BlameTarget, DiagCode, DiagLabel, LabelRole, SourceMap, TypeDiagnostic};

use hb_rdl::{install_rdl, RdlHook};
use std::collections::HashMap;
use std::rc::Rc;

/// The core-library annotations shipped with the engine (the analogue of
/// RDL's bundled types).
pub const CORELIB_ANNOTATIONS: &str = include_str!("../annotations/corelib.rb");

/// The three evaluation modes of paper Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// "Orig": no interception at all.
    Original,
    /// "No$": full checking with the derivation cache disabled.
    NoCache,
    /// "Hum": full checking with caching.
    Full,
}

/// The assembled Hummingbird system: interpreter + RDL + engine.
pub struct Hummingbird {
    pub interp: Interp,
    pub rdl: Rc<RdlState>,
    pub engine: Rc<Engine>,
    pub(crate) file_methods: HashMap<String, Vec<FileMethod>>,
}

impl Hummingbird {
    /// A fully enabled system with core-library annotations loaded.
    pub fn new() -> Hummingbird {
        Hummingbird::with_mode(Mode::Full)
    }

    /// A fully enabled system attached to a process-wide shared derivation
    /// tier: one *tenant* of a multi-tenant deployment. The tier is
    /// attached before any code (including the core library) loads, so
    /// identical tenants warm each other from the very first check.
    pub fn new_tenant(shared: std::sync::Arc<SharedCache>) -> Hummingbird {
        Hummingbird::tenant_with_mode(Mode::Full, shared)
    }

    /// [`Hummingbird::new_tenant`] with an explicit evaluation mode.
    pub fn tenant_with_mode(mode: Mode, shared: std::sync::Arc<SharedCache>) -> Hummingbird {
        Hummingbird::builder_with_shared(mode, Some(shared))
    }

    fn builder_with_shared(mode: Mode, shared: Option<std::sync::Arc<SharedCache>>) -> Hummingbird {
        let mut hb = Hummingbird::assemble(mode, shared);
        if mode != Mode::Original {
            // "Orig" runs without Hummingbird entirely; otherwise load the
            // bundled core-library types.
            hb.load_file("<corelib>", CORELIB_ANNOTATIONS)
                .expect("core-library annotations must load");
        }
        // Core-library annotation loading is setup, not app behaviour.
        hb.engine.reset_stats();
        hb.rdl.drain_events();
        hb
    }

    /// Builds a system in the given evaluation mode.
    ///
    /// # Panics
    ///
    /// Panics if the bundled core-library annotations fail to load (a build
    /// defect, not a runtime condition).
    pub fn with_mode(mode: Mode) -> Hummingbird {
        Hummingbird::builder_with_shared(mode, None)
    }

    fn assemble(mode: Mode, shared: Option<std::sync::Arc<SharedCache>>) -> Hummingbird {
        let mut interp = Interp::new();
        let rdl = install_rdl(&mut interp);
        let engine = Rc::new(Engine::new(rdl.clone()));
        if let Some(shared) = shared {
            engine.set_shared_cache(shared);
        }
        if mode != Mode::Original {
            interp.add_hook(Rc::new(RdlHook { state: rdl.clone() }));
            interp.add_hook(engine.clone());
        }
        engine.set_config(Config {
            enabled: mode != Mode::Original,
            caching: mode != Mode::NoCache,
            dyn_arg_checks: mode != Mode::Original,
        });
        Hummingbird {
            interp,
            rdl,
            engine,
            file_methods: HashMap::new(),
        }
    }

    /// Loads a source file into the running system.
    ///
    /// # Errors
    ///
    /// Parse errors and uncaught runtime errors (including blame).
    pub fn load_file(&mut self, name: &str, src: &str) -> Result<Value, HbError> {
        self.track_file_methods(name, src);
        self.interp.load_program(name, src)
    }

    /// Evaluates a source string.
    ///
    /// # Errors
    ///
    /// Parse errors and uncaught runtime errors (including blame).
    pub fn eval(&mut self, src: &str) -> Result<Value, HbError> {
        self.interp.load_program("<eval>", src)
    }

    /// Engine statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Eagerly checks every annotated, checkable method — the whole
    /// program, without waiting for triggering calls — and returns the
    /// failures as structured diagnostics (empty when the program lints
    /// clean). See [`Engine::check_all`]; this is the `hb_lint` entry
    /// point, and it warms the derivation caches as a side effect.
    pub fn check_all(&mut self) -> Vec<TypeDiagnostic> {
        let engine = self.engine.clone();
        engine.check_all(&mut self.interp)
    }

    /// Every blame diagnostic produced so far (just-in-time and eager),
    /// in emission order.
    pub fn diagnostics(&self) -> Vec<TypeDiagnostic> {
        self.engine.diagnostics()
    }

    /// The source map resolving diagnostic spans to file/line/column —
    /// pass it to [`TypeDiagnostic::render`] / [`TypeDiagnostic::to_json`].
    pub fn source_map(&self) -> &SourceMap {
        &self.interp.source_map
    }

    /// RDL annotation statistics snapshot.
    pub fn rdl_stats(&self) -> RdlStats {
        self.rdl.stats()
    }

    /// Switches caching on/off at run time (ablation).
    pub fn set_caching(&self, on: bool) {
        let mut c = self.engine.config();
        c.caching = on;
        self.engine.set_config(c);
    }

    /// Switches dynamic argument checks on/off at run time (ablation).
    pub fn set_dyn_arg_checks(&self, on: bool) {
        let mut c = self.engine.config();
        c.dyn_arg_checks = on;
        self.engine.set_config(c);
    }
}

impl Default for Hummingbird {
    fn default() -> Self {
        Hummingbird::new()
    }
}
