//! Engine-side observability: the collector gluing the [`hb_obs`]
//! primitives to the engine's hot paths, plus the renderers that fold
//! the flat [`EngineStats`] counters into the metrics exports.
//!
//! The engine holds at most one [`EngineObs`] (behind
//! `HummingbirdBuilder::observability`). When observability is off the
//! engine carries no collector at all and every instrumented hot path
//! costs a single `Cell<bool>` load — the same discipline as the
//! scheduler-poll and policy-resolution gates. When on, recording is a
//! few relaxed atomic adds (histograms/counters) and, at
//! [`ObsLevel::Trace`], one ring slot write.

use crate::stats::EngineStats;
use hb_obs::{Counter, Event, EventKind, EventRing, Histogram, ObsLevel, Registry};
use hb_rdl::MethodKey;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The synthetic key fleet-sync events are stamped with: fleet legs are
/// process-scoped, not method-scoped, but every ring event carries a
/// [`MethodKey`].
pub fn fleet_key() -> MethodKey {
    MethodKey::class_level("<fleet>", "sync")
}

/// One engine's observability state: the metric handles for every series
/// the engine feeds, the optional event ring, and the admission
/// timestamps backing the deferred admission-to-adoption histogram.
///
/// Lives in `Rc` next to the engine state; the [`Registry`] inside is
/// `Arc`-shared so exports can render it without touching the engine.
pub struct EngineObs {
    /// How much this collector records.
    pub level: ObsLevel,
    /// The named series store backing the Prometheus/JSON exports.
    pub registry: Arc<Registry>,
    /// The flight recorder ([`ObsLevel::Trace`] only).
    ring: Option<EventRing>,
    /// Total checks whose durations were observed (pass and blame) —
    /// the `_count` cross-check for `hb_check_duration_ns`.
    pub checks_observed: Arc<Counter>,
    /// Wall-clock duration of every static check, pass or blame.
    pub check_duration: Arc<Histogram>,
    /// First-request latency of a cold method: what the triggering call
    /// paid before proceeding (synchronous check, shared-tier adoption,
    /// or deferred admission overhead).
    pub first_request: Arc<Histogram>,
    /// Deferred admission-to-adoption latency: from the cold call's
    /// admission to the harvested derivation landing in the cache.
    pub deferred_adoption: Arc<Histogram>,
    /// Time scheduler tasks sat queued before a worker picked them up.
    pub sched_queue: Arc<Histogram>,
    /// Fleet fetch round-trips (boot full fetch and per-sync delta).
    pub fleet_fetch: Arc<Histogram>,
    /// Fleet publish round-trips.
    pub fleet_publish: Arc<Histogram>,
    /// When each in-flight deferred admission was admitted. Entries
    /// survive stale-requeues (the admission is still waiting) and are
    /// dropped on blame/panic/identity-stale so an abandoned admission
    /// cannot leak or skew the histogram.
    admitted_at: RefCell<HashMap<MethodKey, Instant>>,
}

impl EngineObs {
    /// A collector recording at `level` (callers never construct one for
    /// [`ObsLevel::Off`] — absence is the off state).
    pub fn new(level: ObsLevel) -> EngineObs {
        let registry = Arc::new(Registry::new());
        let ring = level
            .trace_enabled()
            .then(|| EventRing::new(hb_obs::ring::DEFAULT_RING_CAP));
        EngineObs {
            level,
            checks_observed: registry.counter(
                "hb_checks_observed_total",
                "static checks whose durations were recorded (pass and blame)",
            ),
            check_duration: registry.histogram(
                "hb_check_duration_ns",
                "wall-clock nanoseconds per static check (pass and blame)",
            ),
            first_request: registry.histogram(
                "hb_first_request_ns",
                "latency a cold call paid before proceeding (check, adoption, or deferred admission)",
            ),
            deferred_adoption: registry.histogram(
                "hb_deferred_adoption_ns",
                "deferred admissions: nanoseconds from admission to derivation adoption",
            ),
            sched_queue: registry.histogram(
                "hb_sched_queue_ns",
                "nanoseconds scheduler tasks sat queued before a worker started them",
            ),
            fleet_fetch: registry.histogram(
                "hb_fleet_fetch_ns",
                "fleet daemon fetch round-trip nanoseconds (full and delta)",
            ),
            fleet_publish: registry.histogram(
                "hb_fleet_publish_ns",
                "fleet daemon publish round-trip nanoseconds",
            ),
            ring,
            registry,
            admitted_at: RefCell::new(HashMap::new()),
        }
    }

    /// Records an instantaneous ring event (no-op below
    /// [`ObsLevel::Trace`]).
    pub fn record(&self, kind: EventKind, key: MethodKey) {
        if let Some(ring) = &self.ring {
            ring.record(kind, key);
        }
    }

    /// Records a span-closing ring event (no-op below
    /// [`ObsLevel::Trace`]).
    pub fn record_span(&self, kind: EventKind, key: MethodKey, dur_ns: u64) {
        if let Some(ring) = &self.ring {
            ring.record_span(kind, key, dur_ns);
        }
    }

    /// Stamps a deferred admission (idempotent per in-flight key: a
    /// stale-requeue keeps the original admission time, so the histogram
    /// measures what the *caller* experienced, not the retry count).
    pub fn note_admitted(&self, key: MethodKey) {
        self.admitted_at
            .borrow_mut()
            .entry(key)
            .or_insert_with(Instant::now);
    }

    /// Closes a deferred admission: the harvested derivation was adopted.
    pub fn note_adopted(&self, key: MethodKey) {
        if let Some(at) = self.admitted_at.borrow_mut().remove(&key) {
            self.deferred_adoption
                .record(at.elapsed().as_nanos() as u64);
        }
    }

    /// Abandons a deferred admission (blame, contained panic, or an
    /// identity-stale completion that will not be retried).
    pub fn drop_admitted(&self, key: MethodKey) {
        self.admitted_at.borrow_mut().remove(&key);
    }

    /// The retained flight-recorder events, oldest first (empty below
    /// [`ObsLevel::Trace`]).
    pub fn ring_snapshot(&self) -> Vec<Event> {
        self.ring.as_ref().map(|r| r.snapshot()).unwrap_or_default()
    }
}

/// Every numeric [`EngineStats`] field as a `(series, value)` pair —
/// the single source of truth the JSON and Prometheus stats renderers
/// (and `docs/METRICS.md`) share. Set-valued fields export their sizes.
pub fn stat_fields(stats: &EngineStats) -> Vec<(&'static str, u64)> {
    vec![
        ("checks_performed", stats.checks_performed),
        ("checks_failed", stats.checks_failed),
        ("shadowed_blames", stats.shadowed_blames),
        ("cache_hits", stats.cache_hits),
        ("shared_hits", stats.shared_hits),
        ("check_ns", stats.check_ns),
        ("failed_check_ns", stats.failed_check_ns),
        ("shared_adopt_ns", stats.shared_adopt_ns),
        ("intercepted_calls", stats.intercepted_calls),
        ("sched_tasks_enqueued", stats.sched_tasks_enqueued),
        ("sched_tasks_completed", stats.sched_tasks_completed),
        ("sched_tasks_stale", stats.sched_tasks_stale),
        ("deferred_admissions", stats.deferred_admissions),
        ("deferred_shed", stats.deferred_shed),
        ("fleet_fetches", stats.fleet_fetches),
        ("fleet_deltas", stats.fleet_deltas),
        ("fleet_publishes", stats.fleet_publishes),
        ("fleet_evictions", stats.fleet_evictions),
        ("dyn_arg_checks", stats.dyn_arg_checks),
        ("invalidations", stats.invalidations),
        ("dependent_invalidations", stats.dependent_invalidations),
        ("bytecode_compiled", stats.bytecode_compiled),
        ("fast_entries_patched", stats.fast_entries_patched),
        ("deopts", stats.deopts),
        ("inferred_verified", stats.inferred_verified),
        ("inferred_adopted", stats.inferred_adopted),
        ("inferred_rejected", stats.inferred_rejected),
        ("cast_sites", stats.cast_sites.len() as u64),
        ("checked_methods", stats.checked_methods.len() as u64),
        ("phases", stats.phases),
        ("cache_entries", stats.cache_entries as u64),
        ("check_log_len", stats.check_log.len() as u64),
    ]
}

/// Renders the stats as a JSON object body (`{"checks_performed":0,..}`).
pub fn stats_json(stats: &EngineStats) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in stat_fields(stats).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push('}');
    out
}

/// Renders the stats as Prometheus text lines, one `hb_engine_<field>`
/// series per field. `cache_entries` and `check_log_len` are
/// point-in-time gauges; everything else accumulates monotonically
/// between `reset_stats` calls.
pub fn stats_prometheus(stats: &EngineStats) -> String {
    let mut out = String::new();
    for (name, value) in stat_fields(stats) {
        let kind = match name {
            "cache_entries" | "check_log_len" => "gauge",
            _ => "counter",
        };
        out.push_str(&format!("# TYPE hb_engine_{name} {kind}\n"));
        out.push_str(&format!("hb_engine_{name} {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_level_skips_the_ring() {
        let obs = EngineObs::new(ObsLevel::Metrics);
        obs.record(EventKind::CacheHit, fleet_key());
        assert!(obs.ring_snapshot().is_empty());
        let obs = EngineObs::new(ObsLevel::Trace);
        obs.record(EventKind::CacheHit, fleet_key());
        assert_eq!(obs.ring_snapshot().len(), 1);
    }

    #[test]
    fn deferred_admission_tracking_round_trips() {
        let obs = EngineObs::new(ObsLevel::Metrics);
        let key = MethodKey::instance("Talk", "title");
        obs.note_admitted(key);
        obs.note_admitted(key); // requeue keeps the original stamp
        obs.note_adopted(key);
        assert_eq!(obs.deferred_adoption.count(), 1);
        // Dropped admissions record nothing.
        obs.note_admitted(key);
        obs.drop_admitted(key);
        obs.note_adopted(key);
        assert_eq!(obs.deferred_adoption.count(), 1);
    }

    #[test]
    fn stats_renderers_cover_every_field() {
        let stats = EngineStats::default();
        let js = stats_json(&stats);
        hb_obs::validate_json(&js).unwrap();
        assert!(js.contains("\"checks_performed\":0"));
        let prom = stats_prometheus(&stats);
        assert!(prom.contains("# TYPE hb_engine_checks_performed counter"));
        assert!(prom.contains("hb_engine_cache_entries 0"));
        assert!(prom.contains("# TYPE hb_engine_cache_entries gauge"));
    }
}
