//! Checker-verified whole-program type inference — the adoption path.
//!
//! [`Hummingbird::infer`] closes the loop the residue auditor (HB1006)
//! opens: unannotated reachable methods keep their guarded prologues and
//! dynamic checks forever, because nothing ever produces a signature for
//! them. This pass produces those signatures — and *proves* them before
//! the system believes them:
//!
//! 1. **Candidate generation** (`hb_analyze::infer_candidates`): for each
//!    reachable, unannotated, app-scope method, solve parameter types
//!    from the abstract argument values on every call-graph in-edge and
//!    the return type from the method's own dataflow.
//! 2. **Hypothesis world**: capture a [`WorldSnapshot`] of the live
//!    system and overlay *every* candidate as an
//!    [`AnnotationSource::Inferred`] table entry, so mutually-recursive
//!    candidates see each other during verification.
//! 3. **Verification fixpoint**: run every candidate through the real
//!    checker ([`hb_check::verify_candidate`], i.e. `check_sig`) against
//!    the hypothesis world. A refuted candidate is removed, the overlay
//!    rebuilt, and the round repeated until the surviving set is
//!    self-consistent. Soundness is the checker's, inherited — never
//!    asserted by the dataflow heuristics.
//! 4. **Return refinement**: where the dataflow guessed `%any` but the
//!    verified derivation computed a concrete return type, adopt the
//!    computed type and re-verify (revert-and-freeze on any failure).
//! 5. **Caller compatibility**: methods that are *already* checked and
//!    call a candidate are re-verified against the hypothesis world;
//!    a candidate whose adoption would regress a green caller is
//!    withdrawn. (This matters on re-inference after a reload, where a
//!    previously-inferred signature changes under its adopters.)
//! 6. **Adoption**: each survivor registers through the normal
//!    [`hb_rdl::RdlState::add_type_at`] path with
//!    `AnnotationSource::Inferred`, so invalidation, fast-entry flushes,
//!    shared-tier eviction and fleet distribution all happen exactly as
//!    for a declared annotation. Re-deriving an identical signature on a
//!    later run re-verifies but does **not** re-register, keeping the
//!    epoch stream quiet and the pass idempotent.
//!
//! Refuted candidates are not discarded silently: each becomes an
//! **HB2001** `inferable signature` suggestion carrying the
//! ready-to-paste annotation line and the checker's refutation, in
//! canonical `(file, span, code)` order.
//!
//! With `jobs > 1` verification rounds fan across the scheduler's
//! workers; results are keyed by submission index, so parallel output is
//! byte-identical to serial output.

use crate::analyze::build_view;
use crate::sched::{capture_world, sort_diagnostics};
use crate::Hummingbird;
use hb_analyze::callgraph::Caller;
use hb_analyze::{build_call_graph, infer_candidates, SigCandidate};
use hb_check::{
    verify_candidate, CheckError, CheckOptions, CheckOutcome, CheckPolicy, CheckRequest,
};
use hb_il::MethodCfg;
use hb_interp::{Interp, MethodBody};
use hb_rdl::{type_of, AnnotationSource, MethodKey, TableEntry};
use hb_sched::{Scheduler, WorldSnapshot};
use hb_syntax::{BlameTarget, DiagCode, Span, TypeDiagnostic};
use hb_types::{MethodSig, Type, TypeEnv};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{mpsc, Arc};

/// The result of one inference run.
#[derive(Clone)]
pub struct InferReport {
    /// Every verified signature, as `(method key, ready-to-paste
    /// annotation line)` in key order — including signatures identical to
    /// an earlier run's (verified again, not re-registered).
    pub adopted: Vec<(MethodKey, String)>,
    /// HB2001 suggestions for refuted candidates, in canonical
    /// `(file, span, code)` order.
    pub diagnostics: Vec<TypeDiagnostic>,
    /// Candidate signatures generated (adopted + rejected).
    pub candidates: usize,
    /// Candidates the checker refuted (one HB2001 each).
    pub rejected: usize,
}

/// One verification unit: a method body checked against a signature in a
/// hypothesis world. `key` is the method (and the `self` class); for a
/// caller-compatibility check `ann_key` may name the ancestor the
/// annotation actually lives on.
#[derive(Clone)]
struct VerifyItem {
    key: MethodKey,
    ann_key: MethodKey,
    span: Span,
    sig: MethodSig,
    cfg: Arc<MethodCfg>,
    captured: Option<TypeEnv>,
}

fn run_verify(
    world: &WorldSnapshot,
    it: &VerifyItem,
    opts: &CheckOptions,
) -> Result<CheckOutcome, CheckError> {
    verify_candidate(&CheckRequest {
        cfg: &it.cfg,
        self_class: it.key.class.as_str(),
        class_level: it.key.class_level,
        sig: &it.sig,
        ann_key: it.ann_key,
        ann_span: it.span,
        info: world,
        rdl: world,
        captured: it.captured.as_ref(),
        opts,
        policy: CheckPolicy::Enforce,
    })
}

/// Verifies one batch of items against one hypothesis world. With a pool,
/// jobs fan out and results re-assemble by submission index, so the
/// returned order (and therefore everything downstream) is independent of
/// worker interleaving.
fn verify_round(
    pool: Option<&Arc<Scheduler>>,
    world: &Arc<WorldSnapshot>,
    items: &[VerifyItem],
    opts: CheckOptions,
) -> Vec<Result<CheckOutcome, CheckError>> {
    let Some(sched) = pool else {
        return items
            .iter()
            .map(|it| run_verify(world, it, &opts))
            .collect();
    };
    let n = items.len();
    let (tx, rx) = mpsc::channel::<(usize, Result<CheckOutcome, CheckError>)>();
    for (i, it) in items.iter().enumerate() {
        let w = world.clone();
        let tx_job = tx.clone();
        let job_it = it.clone();
        let accepted = sched.submit_job(move || {
            let _ = tx_job.send((i, run_verify(&w, &job_it, &opts)));
        });
        if !accepted {
            // Shut-down pool: verify inline, same slot.
            let _ = tx.send((i, run_verify(world, it, &opts)));
        }
    }
    drop(tx);
    let mut slots: Vec<Option<Result<CheckOutcome, CheckError>>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every verification job reports exactly once"))
        .collect()
}

/// The hypothesis-world table entry for a candidate: exactly what
/// adoption would register, so verification judges the real thing.
fn overlay_entry(c: &SigCandidate) -> TableEntry {
    TableEntry {
        sig: MethodSig::single(c.mt.clone()),
        check: true,
        always_dyn_check: false,
        source: AnnotationSource::Inferred,
        version: 1,
        span: c.span,
    }
}

/// The captured type environment of a proc-backed (`define_method`) body,
/// mirroring the engine's task-extraction path: proc bodies are judged
/// under the types of their captured locals (Fig. 2).
fn captured_env(interp: &Interp, key: &MethodKey) -> Option<TypeEnv> {
    let cid = interp.registry.lookup(key.class.as_str())?;
    let found = if key.class_level {
        interp.registry.find_smethod(cid, key.method.as_str())
    } else {
        interp.registry.find_method(cid, key.method.as_str())
    };
    let (_, mentry) = found?;
    match &mentry.body {
        MethodBody::FromProc(p) => Some(
            p.env
                .collect_bindings()
                .into_iter()
                .map(|(k, v)| (k, type_of(interp, &v)))
                .collect(),
        ),
        _ => None,
    }
}

/// A computed return type worth writing into an annotation: plain
/// nominal/`%bool`/`nil`/generic shapes (and unions of them) that render
/// to re-parseable signature text. Type variables and class objects stay
/// at the dataflow's guess rather than risk a signature the program
/// could not have written itself.
fn stable_ret(t: &Type) -> bool {
    match t {
        Type::Any | Type::Bool | Type::Nil | Type::Nominal(_) => true,
        Type::Generic(_, args) | Type::Union(args) => args.iter().all(stable_ret),
        Type::Var(_) | Type::ClassObj(_) => false,
    }
}

impl Hummingbird {
    /// Runs checker-verified whole-program type inference: generates
    /// candidate signatures for unannotated reachable methods, verifies
    /// them through the real checker against a hypothesis world, adopts
    /// the survivors as [`AnnotationSource::Inferred`] annotations, and
    /// reports refuted candidates as HB2001 suggestions.
    ///
    /// `jobs > 1` fans verification across that many scheduler workers
    /// (reusing the attached scheduler when it is at least that wide);
    /// output is byte-identical to the serial path.
    pub fn infer(&mut self, jobs: usize) -> InferReport {
        self.infer_with_entries(jobs, &[])
    }

    /// [`Hummingbird::infer`] with extra entry points (see
    /// [`Hummingbird::analyze_with_entries`]): harness calls that make
    /// methods reachable — and their call sites' argument types visible —
    /// without executing anything.
    pub fn infer_with_entries(&mut self, jobs: usize, entries: &[(&str, &str)]) -> InferReport {
        // Settle the system first: land in-flight scheduler completions
        // and drain pending events, so the captured hypothesis world is
        // the program's quiescent state.
        let engine = self.engine.clone();
        engine.process_events(&mut self.interp);
        engine.sched_harvest(&self.interp);

        for (name, src) in entries {
            crate::analyze::intern_entry_file(self, name, src);
        }
        let view = build_view(self);
        let graph = build_call_graph(&view);
        let seeds = infer_candidates(&view, &graph);
        let candidates = seeds.len();
        if candidates == 0 {
            return InferReport {
                adopted: Vec::new(),
                diagnostics: Vec::new(),
                candidates: 0,
                rejected: 0,
            };
        }

        let cfg_of: BTreeMap<MethodKey, Arc<MethodCfg>> = view
            .methods
            .iter()
            .map(|m| (m.key, m.cfg.clone()))
            .collect();
        let captured_of: BTreeMap<MethodKey, Option<TypeEnv>> = seeds
            .iter()
            .map(|c| (c.key, captured_env(&self.interp, &c.key)))
            .collect();

        let pool: Option<Arc<Scheduler>> = if jobs > 1 {
            Some(match self.scheduler() {
                Some(s) if s.worker_count() >= jobs => s,
                _ => Arc::new(Scheduler::new(jobs)),
            })
        } else {
            None
        };
        let opts = CheckOptions::default();
        let base = capture_world(&self.interp, &self.rdl);

        // Checked-caller index for phase C: caller → callees among the
        // candidates.
        let mut callees_of: BTreeMap<MethodKey, BTreeSet<MethodKey>> = BTreeMap::new();
        for e in &graph.edges {
            if let Caller::Method(ck) = e.caller {
                if ck != e.callee {
                    callees_of.entry(ck).or_default().insert(e.callee);
                }
            }
        }

        let mut live: BTreeMap<MethodKey, SigCandidate> =
            seeds.into_iter().map(|c| (c.key, c)).collect();
        // Refuted candidates, still resurrectable: a refutation caused by
        // an unrefined callee (e.g. a bare `Array` before refinement
        // recovers `Array<Transaction>`) deserves a re-try once the
        // surviving signatures improve.
        let mut pending: BTreeMap<MethodKey, (SigCandidate, String)> = BTreeMap::new();
        // Withdrawn by the caller-compatibility phase: final.
        let mut withdrawn: BTreeMap<MethodKey, (SigCandidate, String)> = BTreeMap::new();
        let mut resurrections = 0usize;

        'outer: loop {
            // --- Phase A: self-consistency fixpoint -----------------------
            // Verify every live candidate against a world containing all
            // of them; removing a refuted one can invalidate others (they
            // saw its signature), so iterate to a fixpoint.
            let mut outcomes: BTreeMap<MethodKey, CheckOutcome> = BTreeMap::new();
            loop {
                if live.is_empty() {
                    break 'outer;
                }
                let world =
                    Arc::new(base.overlay(live.values().map(|c| (c.key, overlay_entry(c)))));
                let items: Vec<VerifyItem> = live
                    .values()
                    .map(|c| VerifyItem {
                        key: c.key,
                        ann_key: c.key,
                        span: c.span,
                        sig: MethodSig::single(c.mt.clone()),
                        cfg: cfg_of[&c.key].clone(),
                        captured: captured_of.get(&c.key).cloned().flatten(),
                    })
                    .collect();
                let keys: Vec<MethodKey> = items.iter().map(|it| it.key).collect();
                let results = verify_round(pool.as_ref(), &world, &items, opts);
                let mut any_refuted = false;
                outcomes.clear();
                for (k, r) in keys.into_iter().zip(results) {
                    match r {
                        Ok(o) => {
                            outcomes.insert(k, o);
                        }
                        Err(e) => {
                            any_refuted = true;
                            let c = live.remove(&k).expect("refuted candidate was live");
                            pending.insert(k, (c, e.into_diagnostic().message));
                        }
                    }
                }
                if !any_refuted {
                    break;
                }
            }

            // --- Phase B: return refinement -------------------------------
            // The verified derivation's computed return type is at least
            // as precise as the dataflow's guess (it passed the check) and
            // often strictly better — `%any` becomes concrete, a bare
            // `Array` recovers its element type — which is what makes the
            // signature useful to callers. Adopt it and re-verify. Rounds
            // are bounded; any failure reverts the whole round to the
            // last verified-clean state and stops refining.
            let mut refined_any = false;
            let mut frozen: BTreeSet<MethodKey> = BTreeSet::new();
            for _ in 0..4 {
                let mut round: Vec<(MethodKey, Type)> = Vec::new();
                for (k, c) in live.iter_mut() {
                    if frozen.contains(k) {
                        continue;
                    }
                    let Some(o) = outcomes.get(k) else { continue };
                    if o.ret != c.mt.ret && o.ret != Type::Any && stable_ret(&o.ret) {
                        round.push((*k, c.mt.ret.clone()));
                        c.mt.ret = o.ret.clone();
                    }
                }
                if round.is_empty() {
                    break;
                }
                let world =
                    Arc::new(base.overlay(live.values().map(|c| (c.key, overlay_entry(c)))));
                let items: Vec<VerifyItem> = live
                    .values()
                    .map(|c| VerifyItem {
                        key: c.key,
                        ann_key: c.key,
                        span: c.span,
                        sig: MethodSig::single(c.mt.clone()),
                        cfg: cfg_of[&c.key].clone(),
                        captured: captured_of.get(&c.key).cloned().flatten(),
                    })
                    .collect();
                let keys: Vec<MethodKey> = items.iter().map(|it| it.key).collect();
                let results = verify_round(pool.as_ref(), &world, &items, opts);
                if results.iter().any(|r| r.is_err()) {
                    // Refinement regressed something: revert the round
                    // (restoring the exact signatures that verified clean)
                    // and stop refining.
                    for (k, old) in round {
                        live.get_mut(&k).expect("reverted candidate is live").mt.ret = old;
                        frozen.insert(k);
                    }
                    break;
                }
                refined_any = true;
                for (k, r) in keys.into_iter().zip(results) {
                    outcomes.insert(k, r.expect("round had no failures"));
                }
            }

            // --- Resurrection ---------------------------------------------
            // Refinement improved the hypothesis world; a candidate that
            // was refuted against the *unrefined* world may now verify
            // (its refutation may have blamed exactly the signature that
            // just got more precise). Re-try the whole refuted pool, a
            // bounded number of times.
            if refined_any && !pending.is_empty() && resurrections < 3 {
                resurrections += 1;
                for (k, (c, _)) in std::mem::take(&mut pending) {
                    live.insert(k, c);
                }
                continue 'outer;
            }

            // --- Phase C: caller compatibility ----------------------------
            // A method that is already checked and calls a candidate was
            // verified against the *old* table (e.g. the candidate's
            // previously-inferred signature). Adoption must not regress
            // it: re-verify such callers against the hypothesis world and
            // withdraw any candidate that breaks one.
            let world = Arc::new(base.overlay(live.values().map(|c| (c.key, overlay_entry(c)))));
            let mut caller_items: Vec<VerifyItem> = Vec::new();
            for (ck, callees) in &callees_of {
                if live.contains_key(ck) || !graph.reachable.contains(ck) {
                    continue;
                }
                if !callees.iter().any(|k| live.contains_key(k)) {
                    continue;
                }
                let Some((ann_key, a)) =
                    view.resolve_annotation(ck.class.as_str(), ck.class_level, ck.method.as_str())
                else {
                    continue;
                };
                if !a.check {
                    continue;
                }
                let (Some(cfg), Some(entry)) = (cfg_of.get(ck), base.table_entry(&ann_key)) else {
                    continue;
                };
                caller_items.push(VerifyItem {
                    key: *ck,
                    ann_key,
                    span: entry.span,
                    sig: entry.sig.clone(),
                    cfg: cfg.clone(),
                    captured: captured_env(&self.interp, ck),
                });
            }
            if caller_items.is_empty() {
                break;
            }
            let results = verify_round(pool.as_ref(), &world, &caller_items, opts);
            let mut withdrew = false;
            for (it, r) in caller_items.iter().zip(results) {
                let Err(e) = r else { continue };
                let msg = e.into_diagnostic().message;
                let called: Vec<MethodKey> = callees_of[&it.key]
                    .iter()
                    .filter(|k| live.contains_key(k))
                    .copied()
                    .collect();
                for k in called {
                    let c = live.remove(&k).expect("withdrawn candidate was live");
                    withdrawn.insert(
                        k,
                        (
                            c,
                            format!(
                                "adopting it would break checked caller {}: {}",
                                it.key.display(),
                                msg
                            ),
                        ),
                    );
                    withdrew = true;
                }
            }
            if !withdrew {
                break;
            }
            // The overlay shrank: the survivors must re-prove themselves.
        }
        let mut rejected = pending;
        rejected.append(&mut withdrawn);

        // --- Adoption -----------------------------------------------------
        let mut adopted: Vec<(MethodKey, String)> = Vec::new();
        let mut newly_registered = 0u64;
        for (k, c) in &live {
            let new_sig = MethodSig::single(c.mt.clone());
            let replace = match self.rdl.entry(k) {
                Some(e) if e.sig.to_string() == new_sig.to_string() => {
                    // Identical re-derivation: verified, already adopted —
                    // re-registering would only churn the epoch stream.
                    adopted.push((*k, c.annotation_line()));
                    continue;
                }
                Some(_) => true,
                None => false,
            };
            self.rdl.add_type_at(
                *k,
                c.mt.clone(),
                true,
                false,
                AnnotationSource::Inferred,
                replace,
                c.span,
            );
            newly_registered += 1;
            adopted.push((*k, c.annotation_line()));
        }
        engine.note_inference(live.len() as u64, newly_registered, rejected.len() as u64);
        // Perform the Definition-1 invalidation the registrations demand
        // now, so depatches and dependent invalidations are attributed to
        // this call rather than the next dispatch.
        engine.process_events(&mut self.interp);

        let mut diagnostics: Vec<TypeDiagnostic> = rejected
            .values()
            .map(|(c, reason)| {
                TypeDiagnostic::warning(
                    DiagCode::InferableSignature,
                    format!(
                        "inferable signature for {}: candidate `{}` was refuted by the checker: {}",
                        c.key.display(),
                        c.annotation_line(),
                        reason
                    ),
                    c.span,
                    BlameTarget::Lint { pass: "infer" },
                )
                .with_method(c.key)
            })
            .collect();
        sort_diagnostics(&mut diagnostics);
        InferReport {
            adopted,
            diagnostics,
            candidates,
            rejected: rejected.len(),
        }
    }
}
