//! The Hummingbird engine: just-in-time static type checking at method
//! entry, with a memoised derivation cache (paper §3's 𝒳) and Definition-1
//! invalidation.
//!
//! The engine is a dispatch hook ([`CallHook`]): when an annotated method is
//! called it (a) runs any needed dynamic argument checks (rules (EApp*),
//! minimised per §4 "Eliminating Dynamic Checks"), and (b) if the method is
//! marked for checking, statically checks its body against the *current*
//! type table — once, caching the outcome keyed by the receiver's class.

use crate::info::RegistryInfo;
use crate::obs::EngineObs;
use crate::sched::{capture_world, sort_diagnostics};
use crate::shared_cache::{SharedCache, SharedDep, SharedEvictionSink};
use crate::stats::{CheckLogItem, CheckVerdict, EngineStats, PhaseTracker};
use hb_check::{check_sig, CheckOptions, CheckPolicy, CheckRequest};
use hb_il::{lower_block_body, lower_method, MethodCfg};
use hb_intern::Sym;
use hb_interp::{
    CallHook, ClassId, DispatchInfo, ErrorKind, ExecTierState, HbError, HookOutcome, Interp,
    InterpEvent, MethodBody, Value,
};
use hb_rdl::{
    type_of, value_conforms, AnnotationSource, MethodKey, RdlEvent, RdlEventSink, RdlState,
    Resolution, TableEntry,
};
use hb_sched::{CheckTask, CompletionQueue, Scheduler, TaskCompletion, TaskVerdict, WorldSnapshot};
use hb_syntax::{BlameTarget, DiagCode, DiagLabel, LabelRole, Span, TypeDiagnostic};
use hb_types::TypeEnv;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

/// Engine configuration — the evaluation's three modes are built from
/// these switches.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Master switch: when false the hook does nothing (used with cleared
    /// hooks for the "Orig" column).
    pub enabled: bool,
    /// Memoise static checks (off for the "No$" column).
    pub caching: bool,
    /// Dynamically check arguments from unchecked callers.
    pub dyn_arg_checks: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            enabled: true,
            caching: true,
            dyn_arg_checks: true,
        }
    }
}

/// A memoised check: the paper's cache entry `(DM, D≤)`, represented by
/// what must stay unchanged for the derivation to remain valid.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// The method-table entry id the body was lowered from ((EDef)
    /// invalidation: redefinition changes the id).
    method_entry_id: u64,
    /// The annotation version the body was checked against ((EType)
    /// invalidation: type changes bump it).
    sig_version: u64,
    /// The (TApp) dependency set of Definition 1(2); surfaced through
    /// [`Engine::cache_dump`] so cached derivations are inspectable.
    deps: BTreeSet<MethodKey>,
    /// Negative (TApp) facts the derivation relied on: `(method,
    /// class_level)` lookups that resolved to *no* annotation (an
    /// unannotated `initialize` behind `C.new`, a class-level miss that
    /// fell back to the `Class` chain). A first-ever annotation for such
    /// a name is a resolution change with no shadowed entry to hang
    /// Definition 1(2) on, so these get their own edges.
    neg_deps: BTreeSet<(Sym, bool)>,
}

/// One cached derivation as reported by [`Engine::cache_dump`]: the cache
/// key plus everything its validity depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheDumpEntry {
    /// The receiver-class cache key (paper §4 "Modules": module methods
    /// appear once per mix-in class).
    pub key: MethodKey,
    /// The method-table entry id the derivation was checked against.
    pub method_entry_id: u64,
    /// The annotation version the derivation was checked against.
    pub sig_version: u64,
    /// The annotation keys rule (TApp) consulted — Definition 1(2)'s
    /// dependency set; replacing any of these invalidates this entry.
    pub deps: Vec<MethodKey>,
}

/// One entry of the whole-program check set (see
/// `Engine::eligible_methods`): an annotated, checkable method resolved
/// against the current registry, with its effective policy.
struct EligibleMethod {
    key: MethodKey,
    entry: Rc<TableEntry>,
    cid: ClassId,
    owner: ClassId,
    mentry: hb_interp::MethodEntry,
    policy: CheckPolicy,
}

/// Memo key for witness replay: (start, skip_receiver, class_level, method).
type ReplayKey = (Sym, bool, bool, Sym);
/// A replayed lookup's answer: (resolved key, its version, its sig fingerprint).
type ReplayResult = (MethodKey, u64, u64);

#[derive(Default)]
struct EngineState {
    /// Keyed with [`hb_intern::FastMap`]: `ensure_checked` probes this
    /// map on every intercepted call of a check-flagged method.
    cache: hb_intern::FastMap<MethodKey, CacheEntry>,
    /// dep (annotation key) → cache keys whose derivations used it.
    dependents: HashMap<MethodKey, HashSet<MethodKey>>,
    /// `(method, class_level)` → cache keys whose derivations relied on
    /// that lookup resolving to *nothing* (see [`CacheEntry::neg_deps`]).
    /// Conservative — keyed by name, not receiver chain — so a first-ever
    /// annotation may re-check a method whose chain never sees it; a
    /// re-check is cheap and the edge map stays receiver-independent.
    neg_dependents: HashMap<(Sym, bool), HashSet<MethodKey>>,
    /// Lowered bodies by method-entry id (also used for reload diffing).
    /// `Arc` so a scheduler `CheckTask` captures the CFG without a deep
    /// clone — lowering is cold-path either way.
    cfgs: HashMap<u64, Arc<MethodCfg>>,
    /// Memoised signature-content fingerprints by (key, version).
    sig_fps: HashMap<(MethodKey, u64), u64>,
    /// Memoised replay results per resolution witness, valid for one
    /// (type-table, class-hierarchy) generation pair — the warm tenants'
    /// adoption fast path validates whole dependency sets from this map.
    dep_memo: HashMap<ReplayKey, Option<ReplayResult>>,
    /// The (table, hierarchy) generations `dep_memo` was built at.
    dep_memo_gen: (u64, u64),
    /// Cache keys with a scheduled check task in flight (enqueued, not
    /// yet harvested) — deduplicates deferred admissions so a hot cold
    /// method enqueues one task, not one per call.
    in_flight: HashSet<MethodKey>,
    /// Memoised world snapshot for task extraction, keyed by the epoch
    /// fingerprints it was captured at — a burst of extractions against a
    /// quiescent table pays for one capture.
    world_memo: Option<((u64, u64, u64), Arc<WorldSnapshot>)>,
    /// The interpreter's execution-tier state, when the bytecode tier is
    /// attached. Every path that retires a cached derivation deoptimizes
    /// its fast entry here — the patch table must never outlive the
    /// derivation it was admitted under (Definition 1).
    tier: Option<Rc<ExecTierState>>,
    /// The observability collector, when the embedding asked for one
    /// ([`crate::HummingbirdBuilder::observability`]). `None` is the off
    /// state: no registry, no ring, no recording anywhere.
    obs: Option<Rc<EngineObs>>,
    stats: EngineStats,
    phase: PhaseTracker,
}

impl EngineState {
    /// Deoptimizes one fast entry (no-op without the bytecode tier).
    fn depatch(&self, key: &MethodKey) {
        if let Some(t) = &self.tier {
            t.depatch(key);
        }
    }

    /// Deoptimizes every fast entry (no-op without the bytecode tier).
    fn flush_fast_entries(&self) {
        if let Some(t) = &self.tier {
            t.flush_all();
        }
    }

    fn sig_fp(&mut self, key: MethodKey, entry: &TableEntry) -> u64 {
        *self
            .sig_fps
            .entry((key, entry.version))
            .or_insert_with(|| sig_fingerprint(entry))
    }

    /// Replays a (TApp) resolution witness against the *current* table and
    /// class hierarchy, memoised per generation pair: what does looking
    /// `res.method` up along `res.start`'s chain resolve to right now?
    /// Uses the same chain the checker uses ([`RegistryInfo::ancestors`]),
    /// so replay answers exactly match a hypothetical re-check.
    fn replay(
        &mut self,
        interp: &Interp,
        rdl: &RdlState,
        res: &Resolution,
    ) -> Option<ReplayResult> {
        let memo_key: ReplayKey = (res.start, res.skip_receiver, res.class_level, res.method);
        if let Some(c) = self.dep_memo.get(&memo_key) {
            return *c;
        }
        // Same chain the checker walks (`RegistryInfo::ancestors`), built
        // from interned syms with no string allocation: registry chain if
        // the class exists (plus trailing Object for module chains),
        // `[start, Object]` otherwise.
        let object = Sym::intern("Object");
        let mut chain: Vec<Sym> = match interp.registry.lookup(res.start.as_str()) {
            Some(cid) => interp.registry.ancestor_syms(cid).map(|(_, s)| s).collect(),
            None => vec![res.start],
        };
        if chain.last() != Some(&object) {
            chain.push(object);
        }
        let skip = usize::from(res.skip_receiver);
        let cur = rdl
            .lookup_along(chain.into_iter().skip(skip), res.class_level, res.method)
            .map(|(k, e)| {
                let fp = self.sig_fp(k, &e);
                (k, e.version, fp)
            });
        self.dep_memo.insert(memo_key, cur);
        cur
    }
}

/// The engine. Shared between the interpreter hook registration and the
/// host application through `Rc`.
pub struct Engine {
    pub rdl: Rc<RdlState>,
    config: RefCell<Config>,
    state: RefCell<EngineState>,
    check_opts: CheckOptions,
    /// Retention bound for the check log between drains (see
    /// [`crate::stats::DEFAULT_CHECK_LOG_CAP`]; builder-configured).
    check_log_cap: std::cell::Cell<usize>,
    /// High-water cap on in-flight deferred admissions (see
    /// [`crate::stats::DEFAULT_DEFERRED_CAP`]; builder-configured). At the
    /// cap, a cold `Deferred` call sheds to a synchronous Enforce check.
    deferred_cap: std::cell::Cell<usize>,
    /// The process-wide shared derivation tier, when this engine is one
    /// tenant of many (see [`crate::shared_cache`]). `None` keeps the
    /// engine purely per-process, exactly as before.
    shared: RefCell<Option<Arc<SharedCache>>>,
    /// The concurrent check scheduler, when attached (deferred JIT
    /// admission and parallel `check_all`). Pools may be shared by many
    /// tenants; completions route back through `completions`.
    sched: RefCell<Option<Arc<Scheduler>>>,
    /// This engine's completion channel: every task it extracts carries a
    /// clone, and results are harvested on the interpreter thread.
    completions: Arc<CompletionQueue>,
    /// One-`Cell`-load hot-path test: true once a scheduler is attached,
    /// so the default (scheduler-less) dispatch path never probes the
    /// completion queue.
    sched_active: Cell<bool>,
    /// One-`Cell`-load hot-path test for observability, same discipline
    /// as `sched_active`: the default (off) dispatch path pays exactly
    /// this load and the recording calls are outlined behind it.
    obs_active: Cell<bool>,
}

impl Engine {
    /// Creates an engine over the given RDL state.
    pub fn new(rdl: Rc<RdlState>) -> Engine {
        Engine {
            rdl,
            config: RefCell::new(Config::default()),
            state: RefCell::new(EngineState::default()),
            check_opts: CheckOptions::default(),
            check_log_cap: std::cell::Cell::new(crate::stats::DEFAULT_CHECK_LOG_CAP),
            deferred_cap: std::cell::Cell::new(crate::stats::DEFAULT_DEFERRED_CAP),
            shared: RefCell::new(None),
            sched: RefCell::new(None),
            completions: Arc::new(CompletionQueue::new()),
            sched_active: Cell::new(false),
            obs_active: Cell::new(false),
        }
    }

    /// Turns on observability at `level`, allocating the collector
    /// (registry, metric handles, and — at [`hb_obs::ObsLevel::Trace`] —
    /// the event ring). [`hb_obs::ObsLevel::Off`] drops the collector and
    /// returns the hot paths to their single-`Cell`-load cost.
    pub fn set_observability(&self, level: hb_obs::ObsLevel) {
        let mut st = self.state.borrow_mut();
        if level == hb_obs::ObsLevel::Off {
            st.obs = None;
            self.obs_active.set(false);
        } else {
            st.obs = Some(Rc::new(EngineObs::new(level)));
            self.obs_active.set(true);
        }
    }

    /// The observability collector, when one is active.
    pub fn obs(&self) -> Option<Rc<EngineObs>> {
        self.state.borrow().obs.clone()
    }

    /// Sets the retention bound of the check log (zero disables logging;
    /// shrinking below the current length drops oldest entries at the
    /// next push).
    pub fn set_check_log_cap(&self, cap: usize) {
        self.check_log_cap.set(cap);
    }

    /// Sets the high-water cap on in-flight deferred admissions. At the
    /// cap, further cold `Deferred` calls fall back to a synchronous
    /// Enforce check (counted in `EngineStats::deferred_shed`) instead of
    /// growing the queue without bound.
    pub fn set_deferred_cap(&self, cap: usize) {
        self.deferred_cap.set(cap);
    }

    /// Retires local derivations for the given methods: each key's cached
    /// entry is invalidated along with its dependents, and any patched
    /// fast entry is deoptimized back to the guarded prologue. The fleet
    /// client calls this after applying a daemon delta (covered or
    /// tombstoned families must be re-validated, not trusted).
    pub fn retire_methods(&self, keys: &[MethodKey]) {
        let mut st = self.state.borrow_mut();
        for key in keys {
            Self::invalidate(&mut st, key, true);
        }
    }

    /// Folds one fleet-sync round's counters into the engine statistics
    /// (the fleet session runs outside the engine borrow).
    pub(crate) fn add_fleet_counters(
        &self,
        fetches: u64,
        deltas: u64,
        publishes: u64,
        evictions: u64,
    ) {
        let mut st = self.state.borrow_mut();
        st.stats.fleet_fetches += fetches;
        st.stats.fleet_deltas += deltas;
        st.stats.fleet_publishes += publishes;
        st.stats.fleet_evictions += evictions;
    }

    /// Attaches the interpreter's execution-tier state so derivation
    /// invalidation deoptimizes patched fast entries, and registers an
    /// emission-time flush: any type-table mutation or enforcement change
    /// drops every fast entry *synchronously*, before the mutating call
    /// returns — a patched entry skips the hook probe entirely, so it
    /// cannot be left to notice staleness lazily.
    pub fn attach_exec_tier(&self, tier: Rc<ExecTierState>) {
        self.state.borrow_mut().tier = Some(tier.clone());
        self.rdl.add_event_sink(Rc::new(FastFlushSink { tier }));
    }

    /// Resolves the enforcement policy for a dispatch. Outlined and cold:
    /// the Enforce-everywhere default never takes this path, and keeping
    /// the map probes out of `before_call`'s body keeps the steady-state
    /// cache-hit path at its pre-policy register layout (measured: the
    /// inlined version cost ~8% on dispatch_probe).
    #[cold]
    #[inline(never)]
    fn resolve_policy(&self, cache_key: &MethodKey, annotation_key: &MethodKey) -> CheckPolicy {
        self.rdl.policy_for(cache_key, annotation_key)
    }

    /// Flight-recorder note for a cache hit. Outlined and cold for the
    /// same reason as [`Engine::resolve_policy`]: the observability-off
    /// dispatch path pays one `Cell` load and none of this body.
    #[cold]
    #[inline(never)]
    fn obs_note_cache_hit(&self, key: &MethodKey) {
        if let Some(obs) = &self.state.borrow().obs {
            obs.record(hb_obs::EventKind::CacheHit, *key);
        }
    }

    /// Appends to the bounded check log: failures recur on every call
    /// (never cached), so the log is a window, not a ledger.
    ///
    /// Every logged duration also feeds the observability check-duration
    /// histogram (when collecting), so the log's retention cap bounds
    /// only the per-item records — timing data is aggregated before the
    /// window can discard it.
    fn push_check_log(&self, st: &mut EngineState, item: CheckLogItem) {
        if let Some(obs) = &st.obs {
            obs.checks_observed.inc();
            obs.check_duration.record(item.duration_ns);
            let kind = if item.outcome.passed() {
                hb_obs::EventKind::CheckPass
            } else {
                hb_obs::EventKind::CheckFail
            };
            obs.record_span(kind, item.key, item.duration_ns);
        }
        let cap = self.check_log_cap.get();
        while st.stats.check_log.len() >= cap.max(1) {
            st.stats.check_log.pop_front();
        }
        if cap > 0 {
            st.stats.check_log.push_back(item);
        }
    }

    /// Attaches the process-wide shared derivation tier, making this
    /// engine a tenant: local cache misses probe the shared tier before
    /// running the checker, performed checks publish to it, and this
    /// tenant's type-table mutations fan out evictions to it. Call once
    /// per engine, ideally before app code loads.
    pub fn set_shared_cache(&self, shared: Arc<SharedCache>) {
        self.rdl.add_event_sink(Rc::new(SharedEvictionSink {
            shared: shared.clone(),
        }));
        *self.shared.borrow_mut() = Some(shared);
    }

    /// The attached shared tier, if any.
    pub fn shared_cache(&self) -> Option<Arc<SharedCache>> {
        self.shared.borrow().clone()
    }

    /// Loads a snapshot into the attached shared tier of a *live* system —
    /// the rolling-deploy artifact push, as opposed to the fresh-process
    /// warm boot ([`SharedCache::load_snapshot`]). The entries land in the
    /// shared tier through the normal load path; in addition, every local
    /// cached derivation for a method the snapshot covers is retired —
    /// with its dependents, and with its patched fast entry deoptimized
    /// back to the guarded prologue — so the tenant's next dispatch
    /// re-validates against the fresh artifact (adopting it when the
    /// worlds agree, re-checking when they don't) instead of trusting a
    /// derivation the artifact may supersede. Re-validation re-patches:
    /// steady state returns one guarded call later.
    ///
    /// Eviction before re-validation is the conservative direction, so
    /// this is sound for any snapshot the shared tier would accept; a
    /// malformed snapshot returns `Err` with nothing applied.
    pub fn load_snapshot(
        &self,
        snap: &crate::snapshot::CacheSnapshot,
    ) -> Result<usize, crate::snapshot::SnapshotError> {
        let shared = self
            .shared
            .borrow()
            .clone()
            .ok_or(crate::snapshot::SnapshotError::NoSharedTier)?;
        // Translate (and thereby validate) the coverage set before
        // touching either tier, mirroring the shared loader's two-phase
        // contract: Err means nothing happened.
        let keys = snap.method_keys()?;
        let loaded = shared.load_snapshot(snap)?;
        let mut st = self.state.borrow_mut();
        for key in &keys {
            Self::invalidate(&mut st, key, true);
        }
        Ok(loaded)
    }

    // ----- the concurrent check scheduler ------------------------------------

    /// Attaches a check scheduler. Pools are process-wide resources: many
    /// tenants may share one (each engine's results route back through
    /// its own completion queue).
    pub fn set_scheduler(&self, sched: Arc<Scheduler>) {
        *self.sched.borrow_mut() = Some(sched);
        self.sched_active.set(true);
    }

    /// The attached scheduler, if any.
    pub fn scheduler(&self) -> Option<Arc<Scheduler>> {
        self.sched.borrow().clone()
    }

    /// The attached scheduler, creating a default-sized pool on first use
    /// (a cold call under [`CheckPolicy::Deferred`] must always have
    /// somewhere to enqueue).
    fn ensure_scheduler(&self) -> Arc<Scheduler> {
        if let Some(s) = self.sched.borrow().as_ref() {
            return s.clone();
        }
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(1, 4);
        let s = Arc::new(Scheduler::new(jobs));
        self.set_scheduler(s.clone());
        s
    }

    /// The world snapshot for task extraction at the current epochs,
    /// memoised so extraction bursts against a quiescent table capture
    /// once.
    fn world_for(&self, st: &mut EngineState, interp: &Interp) -> Arc<WorldSnapshot> {
        let epochs = (
            self.rdl.table_fingerprint(),
            interp.registry.shape_fingerprint(),
            self.rdl.var_fingerprint(),
        );
        if let Some((at, world)) = &st.world_memo {
            if *at == epochs {
                return world.clone();
            }
        }
        let world = Arc::new(capture_world(interp, &self.rdl));
        st.world_memo = Some((epochs, world.clone()));
        world
    }

    /// Blocks until every task this engine enqueued has completed, then
    /// harvests the completions — the barrier after which asynchronously
    /// produced blame is guaranteed visible in [`Engine::diagnostics`].
    /// Loops because landing a stale deferred completion can re-enqueue a
    /// fresh task (see `land_completion`); with the table quiescent the
    /// retry lands on the next pass. (A paused scheduler must be resumed
    /// first or this will not return.)
    pub fn sched_quiesce(&self, interp: &Interp) {
        loop {
            self.completions.wait_idle();
            self.sched_harvest(interp);
            if self.completions.pending() == 0 && !self.completions.has_ready() {
                return;
            }
        }
    }

    /// The dispatch hook's completion poll. Outlined and cold for the
    /// same reason as [`Engine::resolve_policy`]: the scheduler-less
    /// default pays one `Cell` load, and keeping the queue probe (and the
    /// harvest machinery behind it) out of `before_call`'s body keeps the
    /// steady-state cache-hit path at its pre-scheduler layout.
    #[cold]
    #[inline(never)]
    fn poll_completions(&self, interp: &Interp) {
        if self.completions.has_ready() {
            self.sched_harvest(interp);
        }
    }

    /// Drains and lands every delivered completion: valid passes are
    /// adopted, valid blames recorded, stale results discarded (see
    /// `land_completion`). Called opportunistically from the dispatch
    /// hook and from [`Engine::sched_quiesce`].
    pub fn sched_harvest(&self, interp: &Interp) {
        if !self.completions.has_ready() {
            return;
        }
        for c in self.completions.drain() {
            self.land_completion(interp, c);
        }
    }

    /// Lands one worker completion on the interpreter thread, where the
    /// live table and registry are reachable for staleness validation:
    ///
    /// * the method-table entry, the annotation resolution and its
    ///   version must still match what the task captured, and a passing
    ///   derivation's epochs must match the current fingerprints (or its
    ///   witnesses must replay) — otherwise the result is **stale**:
    ///   counted in `sched_tasks_stale` and discarded, never adopted.
    ///   A stale *deferred* result whose method identity is still current
    ///   (the world moved around it while it was in flight) re-enqueues a
    ///   fresh task against the current world, so its outcome — pass or
    ///   blame — is re-established rather than silently lost; a result
    ///   whose method was redefined outright is dropped (the next call
    ///   re-defers naturally);
    /// * a valid pass is adopted exactly like a synchronous derivation
    ///   (local cache, dependency edges, shared-tier publication);
    /// * a valid blame records its diagnostic (deferred admissions only —
    ///   parallel linting leaves reporting to the deterministic serial
    ///   sweep);
    /// * a contained worker panic records an `HB0011` diagnostic.
    fn land_completion(&self, interp: &Interp, c: TaskCompletion) {
        {
            let mut st = self.state.borrow_mut();
            st.in_flight.remove(&c.cache_key);
            st.stats.sched_tasks_completed += 1;
            if let Some(obs) = &st.obs {
                if c.queue_ns > 0 {
                    obs.sched_queue.record(c.queue_ns);
                }
            }
        }
        // Identity validation, common to every verdict: the body and the
        // signature the worker checked must still be the current ones.
        let current = (|| {
            let cid = interp.registry.lookup(c.cache_key.class.as_str())?;
            let (_, mentry) = if c.cache_key.class_level {
                interp
                    .registry
                    .find_smethod(cid, c.cache_key.method.as_str())
            } else {
                interp
                    .registry
                    .find_method(cid, c.cache_key.method.as_str())
            }?;
            if mentry.id != c.entry_id {
                return None;
            }
            let (ann_key, entry) = self.rdl.lookup_along(
                interp.registry.ancestor_syms(cid).map(|(_, sym)| sym),
                c.cache_key.class_level,
                c.cache_key.method,
            )?;
            if ann_key != c.ann_key || entry.version != c.sig_version {
                return None;
            }
            Some((mentry, entry))
        })();
        let Some((mentry, entry)) = current else {
            let mut st = self.state.borrow_mut();
            st.stats.sched_tasks_stale += 1;
            if let Some(obs) = &st.obs {
                obs.record(hb_obs::EventKind::TaskStale, c.cache_key);
                // The method was redefined outright; the admission is
                // over (the next call re-defers naturally).
                obs.drop_admitted(c.cache_key);
            }
            return;
        };
        match &c.verdict {
            TaskVerdict::Pass { deps, cast_sites } => {
                let mut st = self.state.borrow_mut();
                let epochs = (
                    self.rdl.table_fingerprint(),
                    interp.registry.shape_fingerprint(),
                    self.rdl.var_fingerprint(),
                );
                // Same validity test as shared-tier adoption: identical
                // epochs, or exact hierarchy/variable fingerprints plus a
                // full witness replay (benign divergence — e.g. an
                // unrelated annotation landed while the task was in
                // flight — still adopts; anything the derivation actually
                // depends on rejects).
                let valid = c.epochs == epochs
                    || (c.epochs.1 == epochs.1
                        && c.epochs.2 == epochs.2
                        && c.own_sig_fp == st.sig_fp(c.ann_key, &entry)
                        && self.witnesses_valid(
                            &mut st,
                            interp,
                            deps.iter()
                                .map(|d| (&d.resolution, d.sig_version, d.sig_fingerprint)),
                        ));
                if !valid {
                    st.stats.sched_tasks_stale += 1;
                    if let Some(obs) = &st.obs {
                        // The admission stays stamped: a requeue is the
                        // same caller still waiting.
                        obs.record(hb_obs::EventKind::TaskStale, c.cache_key);
                    }
                    drop(st);
                    if c.record_blame {
                        self.requeue_deferred(interp, &c, &entry, &mentry);
                    }
                    return;
                }
                self.rdl.mark_used(&c.ann_key);
                st.stats.checks_performed += 1;
                st.stats.check_ns += c.duration_ns;
                self.push_check_log(
                    &mut st,
                    CheckLogItem {
                        key: c.cache_key,
                        outcome: CheckVerdict::Pass,
                        duration_ns: c.duration_ns,
                    },
                );
                st.stats.checked_methods.insert(c.cache_key.display());
                st.stats.cast_sites.extend(cast_sites.iter().copied());
                st.phase.note_check();
                if let Some(obs) = &st.obs {
                    obs.record_span(hb_obs::EventKind::TaskHarvest, c.cache_key, c.duration_ns);
                    if c.record_blame {
                        obs.note_adopted(c.cache_key);
                    }
                }
                if !self.config.borrow().caching {
                    return;
                }
                if let Some(old) = st.cache.remove(&c.cache_key) {
                    st.depatch(&c.cache_key);
                    Self::unlink(&mut st, &c.cache_key, &old);
                }
                let dep_keys: BTreeSet<MethodKey> =
                    deps.iter().filter_map(|d| d.resolution.target).collect();
                for dep in &dep_keys {
                    self.rdl.mark_used(dep);
                    st.dependents.entry(*dep).or_default().insert(c.cache_key);
                }
                let neg_deps: BTreeSet<(Sym, bool)> = deps
                    .iter()
                    .filter(|d| d.resolution.target.is_none())
                    .map(|d| (d.resolution.method, d.resolution.class_level))
                    .collect();
                for nd in &neg_deps {
                    st.neg_dependents
                        .entry(*nd)
                        .or_default()
                        .insert(c.cache_key);
                }
                // Publish onward so other tenants adopt the worker's
                // derivation exactly as they adopt a tenant-published one.
                if let (Some(shared), Some(body_fp)) = (self.shared.borrow().as_ref(), c.body_fp) {
                    shared.insert(
                        c.cache_key,
                        c.entry_id,
                        c.sig_version,
                        body_fp,
                        c.own_sig_fp,
                        c.epochs,
                        deps.iter()
                            .map(|d| SharedDep {
                                resolution: d.resolution,
                                sig_version: d.sig_version,
                                sig_fingerprint: d.sig_fingerprint,
                            })
                            .collect(),
                        cast_sites.clone(),
                    );
                }
                st.cache.insert(
                    c.cache_key,
                    CacheEntry {
                        method_entry_id: c.entry_id,
                        sig_version: c.sig_version,
                        deps: dep_keys,
                        neg_deps,
                    },
                );
            }
            TaskVerdict::Blame(diag) => {
                if !c.record_blame {
                    // Parallel linting: the deterministic serial sweep
                    // re-derives and reports this failure (failures are
                    // never cached, so nothing is lost).
                    return;
                }
                let epochs = (
                    self.rdl.table_fingerprint(),
                    interp.registry.shape_fingerprint(),
                    self.rdl.var_fingerprint(),
                );
                if c.epochs != epochs {
                    // The world moved while the blame was in flight: the
                    // judgement may no longer hold (e.g. the blamed callee
                    // annotation was fixed meanwhile). A failed check
                    // leaves no witnesses to replay, so the blame is
                    // discarded as stale and the method re-checks against
                    // the *current* world — a still-real error re-lands at
                    // the next harvest instead of an obsolete one landing
                    // now.
                    let mut st = self.state.borrow_mut();
                    st.stats.sched_tasks_stale += 1;
                    if let Some(obs) = &st.obs {
                        obs.record(hb_obs::EventKind::TaskStale, c.cache_key);
                    }
                    drop(st);
                    self.requeue_deferred(interp, &c, &entry, &mentry);
                    return;
                }
                let code = diag.code;
                let mut diag = diag.clone();
                let checker_span_dummy = diag.span == Span::dummy();
                if let Some(call) = c.trigger {
                    diag.labels.push(DiagLabel::new(
                        LabelRole::CallSite,
                        "checked just-in-time at this call",
                        call,
                    ));
                    if checker_span_dummy {
                        diag.labels.push(DiagLabel::new(
                            LabelRole::Note,
                            "blamed code has no source span (synthesized or core-library definition)",
                            Span::dummy(),
                        ));
                        diag.span = call;
                    }
                } else if checker_span_dummy {
                    diag.span = entry.span;
                }
                diag.labels.push(CheckPolicy::deferred_note());
                let mut st = self.state.borrow_mut();
                st.stats.checks_failed += 1;
                st.stats.failed_check_ns += c.duration_ns;
                self.push_check_log(
                    &mut st,
                    CheckLogItem {
                        key: c.cache_key,
                        outcome: CheckVerdict::Blame(code),
                        duration_ns: c.duration_ns,
                    },
                );
                st.phase.note_check();
                if let Some(obs) = &st.obs {
                    obs.record_span(hb_obs::EventKind::TaskHarvest, c.cache_key, c.duration_ns);
                    obs.drop_admitted(c.cache_key);
                }
                drop(st);
                self.rdl.record_diagnostic(diag);
            }
            TaskVerdict::Panicked(msg) => {
                let message = format!(
                    "check task for {} panicked on a scheduler worker: {}",
                    c.cache_key.display(),
                    msg
                );
                let mut diag = TypeDiagnostic::error(
                    DiagCode::CheckerPanic,
                    message,
                    c.trigger.unwrap_or(entry.span),
                    BlameTarget::Annotation(c.ann_key),
                )
                .with_method(c.cache_key)
                .with_label(DiagLabel::new(
                    LabelRole::Note,
                    "the panic was contained to this task; the worker pool and every other queued check survived",
                    Span::dummy(),
                ));
                if let Some(call) = c.trigger {
                    diag.labels.push(DiagLabel::new(
                        LabelRole::CallSite,
                        "checked just-in-time at this call",
                        call,
                    ));
                }
                let mut st = self.state.borrow_mut();
                st.stats.checks_failed += 1;
                st.stats.failed_check_ns += c.duration_ns;
                self.push_check_log(
                    &mut st,
                    CheckLogItem {
                        key: c.cache_key,
                        outcome: CheckVerdict::Blame(DiagCode::CheckerPanic),
                        duration_ns: c.duration_ns,
                    },
                );
                if let Some(obs) = &st.obs {
                    obs.record_span(hb_obs::EventKind::TaskHarvest, c.cache_key, c.duration_ns);
                    obs.drop_admitted(c.cache_key);
                }
                drop(st);
                self.rdl.record_diagnostic(diag);
            }
        }
    }

    /// Re-extracts and re-enqueues a deferred check whose completion was
    /// discarded as stale while its method identity stayed current: the
    /// fresh task captures the *current* world, so the method's real
    /// status (pass or blame) is re-established at the next harvest
    /// instead of being silently lost. No-op when a task for the key is
    /// already in flight.
    fn requeue_deferred(
        &self,
        interp: &Interp,
        c: &TaskCompletion,
        entry: &TableEntry,
        mentry: &hb_interp::MethodEntry,
    ) {
        if self.state.borrow().in_flight.contains(&c.cache_key) {
            return;
        }
        let captured: Option<TypeEnv> = match &mentry.body {
            MethodBody::FromProc(p) => Some(
                p.env
                    .collect_bindings()
                    .into_iter()
                    .map(|(k, v)| (k, type_of(interp, &v)))
                    .collect(),
            ),
            _ => None,
        };
        let cfg = {
            let cached = self.state.borrow().cfgs.get(&mentry.id).cloned();
            match cached {
                Some(cfg) => cfg,
                None => {
                    let Some(lowered) = lower_entry(mentry) else {
                        return;
                    };
                    let cfg = Arc::new(lowered);
                    self.state.borrow_mut().cfgs.insert(mentry.id, cfg.clone());
                    cfg
                }
            }
        };
        let body_fp = body_fingerprint(interp, mentry, captured.as_ref());
        let mut st = self.state.borrow_mut();
        let world = self.world_for(&mut st, interp);
        let own_sig_fp = st.sig_fp(c.ann_key, entry);
        st.in_flight.insert(c.cache_key);
        st.stats.sched_tasks_enqueued += 1;
        let submitted_at = if let Some(obs) = &st.obs {
            obs.record(hb_obs::EventKind::TaskEnqueue, c.cache_key);
            Some(std::time::Instant::now())
        } else {
            None
        };
        drop(st);
        let accepted = self.ensure_scheduler().submit(CheckTask {
            cache_key: c.cache_key,
            ann_key: c.ann_key,
            ann_span: entry.span,
            sig: entry.sig.clone(),
            entry_id: mentry.id,
            sig_version: entry.version,
            body_fp,
            own_sig_fp,
            cfg,
            captured,
            world,
            policy: c.policy,
            trigger: c.trigger,
            record_blame: true,
            opts: self.check_opts,
            completions: self.completions.clone(),
            submitted_at,
        });
        if !accepted {
            // The pool is shutting down: the task will never run, so the
            // key must not stay latched in flight.
            self.state.borrow_mut().in_flight.remove(&c.cache_key);
        }
    }

    /// Current configuration.
    pub fn config(&self) -> Config {
        *self.config.borrow()
    }

    /// Replaces the configuration.
    pub fn set_config(&self, c: Config) {
        *self.config.borrow_mut() = c;
        // A mode change (caching off, checks off, dynamic checks off)
        // alters what the guarded prologue would do — fast entries were
        // admitted under the old configuration, so drop them all.
        self.state.borrow().flush_fast_entries();
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> EngineStats {
        let st = self.state.borrow();
        let mut s = st.stats.clone();
        s.phases = st.phase.phases();
        s.cache_entries = st.cache.len();
        if let Some(t) = &st.tier {
            s.bytecode_compiled = t.bytecode_compiled();
            s.fast_entries_patched = t.fast_entries_patched();
            s.deopts = t.deopts();
            // A checked fast-prologue dispatch is a cache hit whose hook
            // probe was compiled out — fold it into the counters the
            // guarded path would have bumped, so `cache_hits` and
            // `intercepted_calls` stay comparable across tiers.
            let fast = t.fast_hits();
            s.cache_hits += fast;
            s.intercepted_calls += fast;
        }
        drop(st);
        // Shadowed blames are counted on the RDL state so the pre-hook
        // layer (which has no engine statistics) contributes too.
        s.shadowed_blames = self.rdl.shadowed_blames();
        s
    }

    /// Credits one inference run's outcome counters. The adoption path
    /// (`crate::infer`) runs outside the engine — it verifies against a
    /// hypothesis [`WorldSnapshot`], not the live table — but its results
    /// are engine-level facts, so they report through the same snapshot.
    pub fn note_inference(&self, verified: u64, adopted: u64, rejected: u64) {
        let mut st = self.state.borrow_mut();
        st.stats.inferred_verified += verified;
        st.stats.inferred_adopted += adopted;
        st.stats.inferred_rejected += rejected;
    }

    /// Clears statistics counters and collected diagnostics (not the
    /// cache).
    pub fn reset_stats(&self) {
        let mut st = self.state.borrow_mut();
        st.stats = EngineStats::default();
        st.phase = PhaseTracker::default();
        if let Some(t) = &st.tier {
            t.reset_counters();
        }
        drop(st);
        self.rdl.clear_diagnostics();
        self.rdl.reset_shadowed_blames();
    }

    /// Every blame diagnostic produced so far — just-in-time and eager
    /// check failures, dynamic argument checks, casts and preconditions —
    /// in emission order, from the type table's shared bounded store.
    pub fn diagnostics(&self) -> Vec<TypeDiagnostic> {
        self.rdl.diagnostics()
    }

    /// Takes the log of static checks performed since the last call (used
    /// by the Table 2 update experiment).
    pub fn take_check_log(&self) -> Vec<CheckLogItem> {
        self.state.borrow_mut().stats.check_log.drain(..).collect()
    }

    /// Number of live cache entries.
    pub fn cache_len(&self) -> usize {
        self.state.borrow().cache.len()
    }

    /// A debug dump of every cached derivation with its dependency set,
    /// sorted by key — what the paper's cache 𝒳 currently holds and why
    /// each entry is still valid.
    pub fn cache_dump(&self) -> Vec<CacheDumpEntry> {
        let st = self.state.borrow();
        let mut out: Vec<CacheDumpEntry> = st
            .cache
            .iter()
            .map(|(key, e)| CacheDumpEntry {
                key: *key,
                method_entry_id: e.method_entry_id,
                sig_version: e.sig_version,
                deps: e.deps.iter().copied().collect(),
            })
            .collect();
        out.sort_by_key(|a| a.key);
        out
    }

    /// Drops the whole cache (tests / ablation).
    pub fn clear_cache(&self) {
        let mut st = self.state.borrow_mut();
        st.cache.clear();
        st.dependents.clear();
        st.flush_fast_entries();
    }

    // ----- invalidation ------------------------------------------------------

    /// Processes pending interpreter and RDL events, performing
    /// Definition 1 invalidation.
    pub fn process_events(&self, interp: &mut Interp) {
        let ievents = interp.drain_events();
        let revents = self.rdl.drain_events();
        if ievents.is_empty() && revents.is_empty() {
            return;
        }
        let mut st = self.state.borrow_mut();
        // Inferred annotations on methods whose body just changed: the
        // signature was derived from the *old* body, so it is retracted
        // (not enforced) once the main borrow ends — see below.
        let mut retract: Vec<MethodKey> = Vec::new();
        for ev in ievents {
            st.phase.note_annotation(); // method creation happens in the
                                        // annotate/metaprogramming phase
            match ev {
                InterpEvent::MethodRedefined {
                    class,
                    name,
                    class_level,
                    old_id,
                    new_id,
                } => {
                    let unchanged = Self::redefinition_unchanged(
                        &st,
                        interp,
                        class,
                        &name,
                        class_level,
                        old_id,
                    );
                    if let Some(new_cfg) = unchanged {
                        // Same body: re-point cached derivations at the new
                        // entry id instead of invalidating (dev-mode reload
                        // CFG diffing, paper §4). Store the *freshly lowered*
                        // CFG under the new id — the shape is identical but
                        // its spans are current, so a later recheck blames
                        // post-reload source locations.
                        st.cfgs.insert(new_id, Arc::new(new_cfg));
                        let mut repointed: Vec<MethodKey> = Vec::new();
                        for (key, entry) in st.cache.iter_mut() {
                            if entry.method_entry_id == old_id {
                                entry.method_entry_id = new_id;
                                repointed.push(*key);
                            }
                        }
                        // The derivation survives the reload, but any fast
                        // entry was patched against the retired entry id:
                        // deoptimize, and let the next guarded dispatch
                        // re-admit it against the new id.
                        for key in &repointed {
                            st.depatch(key);
                        }
                    } else {
                        let key = MethodKey {
                            class: interp.registry.name_sym(class),
                            class_level,
                            method: Sym::intern(&name),
                        };
                        Self::invalidate(&mut st, &key, true);
                        if let Some(shared) = self.shared.borrow().as_ref() {
                            shared.evict_with_dependents(&key);
                        }
                        // An inferred signature was evidence about the
                        // old body, not user intent about the new one:
                        // retract it rather than enforce it against a
                        // body it never saw.
                        if self
                            .rdl
                            .entry(&key)
                            .is_some_and(|e| e.source == AnnotationSource::Inferred)
                        {
                            retract.push(key);
                        }
                    }
                    // The retired entry id can never be dispatched again;
                    // dropping its CFG keeps long reload sessions bounded.
                    st.cfgs.remove(&old_id);
                }
                InterpEvent::MethodRemoved {
                    class,
                    name,
                    class_level,
                } => {
                    let key = MethodKey {
                        class: interp.registry.name_sym(class),
                        class_level,
                        method: Sym::intern(&name),
                    };
                    Self::invalidate(&mut st, &key, true);
                    if let Some(shared) = self.shared.borrow().as_ref() {
                        shared.evict_with_dependents(&key);
                    }
                }
                InterpEvent::ModuleIncluded { class, module } => {
                    // A post-first-call include changes annotation
                    // resolution for the including class's chain: module
                    // annotations may shadow ancestor annotations.
                    self.invalidate_module_shadowed(&mut st, interp, class, module);
                    // Directly cached derivations self-heal lazily (version
                    // mismatch at the next check) — a patched fast entry
                    // skips that check, so deoptimize everything.
                    st.flush_fast_entries();
                }
                InterpEvent::MethodAdded { .. } => {
                    // New methods have no cached derivations, and directly
                    // cached overridees self-heal via the entry-id check.
                }
            }
        }
        for ev in revents {
            st.phase.note_annotation();
            match ev {
                // Adding a new arm re-checks the method itself (version
                // mismatch at next hit) but leaves dependents valid —
                // the §4 "Cache Invalidation" intersection subtlety.
                // (Shared-tier eviction fans out via the RdlEventSink.)
                RdlEvent::ArmAdded(key) => {
                    if let Some(old) = st.cache.remove(&key) {
                        st.depatch(&key);
                        Self::unlink(&mut st, &key, &old);
                    }
                    // Version bumped: the memoised fingerprints of this
                    // key's retired versions can never be probed again —
                    // drop them so long reload sessions stay bounded.
                    st.sig_fps.retain(|(k, _), _| *k != key);
                }
                RdlEvent::TypeReplaced(key) => {
                    Self::invalidate(&mut st, &key, true);
                    st.sig_fps.retain(|(k, _), _| *k != key);
                }
                // A brand-new annotation can shadow an ancestor's along
                // some receiver chain — a resolution change, not a
                // signature change, so it needs its own invalidation.
                RdlEvent::TypeAdded(key) => {
                    self.invalidate_shadowed(&mut st, interp, &key);
                }
            }
        }
        // Retraction mutates the type table and fans out through the
        // event sinks (fast-entry flush, shared-tier eviction), which
        // must not run under the state borrow. The retractions' own
        // events are then drained by re-entering — guaranteed to
        // terminate because retracted entries are gone.
        drop(st);
        let mut retracted = false;
        for key in &retract {
            retracted |= self.rdl.retract_inferred(key);
        }
        if retracted {
            self.process_events(interp);
        }
    }

    /// If the redefinition is body-identical (per CFG shape), returns the
    /// freshly lowered CFG of the new body (same shape, current spans).
    fn redefinition_unchanged(
        st: &EngineState,
        interp: &Interp,
        class: ClassId,
        name: &str,
        class_level: bool,
        old_id: u64,
    ) -> Option<MethodCfg> {
        let old_cfg = st.cfgs.get(&old_id)?;
        let found = if class_level {
            interp.registry.find_smethod(class, name)
        } else {
            interp.registry.find_method(class, name)
        };
        let (_, entry) = found?;
        let new_cfg = lower_entry(&entry)?;
        if new_cfg.same_shape(old_cfg) {
            Some(new_cfg)
        } else {
            None
        }
    }

    /// Removes the reverse-dependency edges (dep → `key`) a retired cache
    /// entry had registered. Without this, edges from superseded
    /// derivations accumulate across reload sessions — the map grows
    /// without bound and a later change to a long-gone dependency
    /// spuriously invalidates (and re-checks) methods whose *current*
    /// derivation never consulted it.
    fn unlink(st: &mut EngineState, key: &MethodKey, entry: &CacheEntry) {
        for dep in &entry.deps {
            if let Some(set) = st.dependents.get_mut(dep) {
                set.remove(key);
                if set.is_empty() {
                    st.dependents.remove(dep);
                }
            }
        }
        for nd in &entry.neg_deps {
            if let Some(set) = st.neg_dependents.get_mut(nd) {
                set.remove(key);
                if set.is_empty() {
                    st.neg_dependents.remove(nd);
                }
            }
        }
    }

    /// Removes a cache entry and (optionally) every entry that depends on
    /// it — Definition 1. Counts only actual removals: invalidating a key
    /// that was never cached (or already invalidated) is a no-op, not a
    /// statistic.
    fn invalidate(st: &mut EngineState, key: &MethodKey, with_dependents: bool) {
        if let Some(old) = st.cache.remove(key) {
            st.stats.invalidations += 1;
            st.depatch(key);
            Self::note_invalidated(st, key);
            Self::unlink(st, key, &old);
        }
        if with_dependents {
            Self::invalidate_dependents_of(st, key);
        }
    }

    /// Records an invalidation in the flight recorder (and, when the
    /// bytecode tier holds a fast entry for the key, the matching deopt).
    fn note_invalidated(st: &EngineState, key: &MethodKey) {
        if let Some(obs) = &st.obs {
            obs.record(hb_obs::EventKind::Invalidate, *key);
            if st.tier.is_some() {
                obs.record(hb_obs::EventKind::Deopt, *key);
            }
        }
    }

    /// Removes every cache entry whose derivation consulted `key` —
    /// Definition 1(2).
    fn invalidate_dependents_of(st: &mut EngineState, key: &MethodKey) {
        if let Some(deps) = st.dependents.remove(key) {
            for d in deps {
                if let Some(old) = st.cache.remove(&d) {
                    st.stats.dependent_invalidations += 1;
                    st.depatch(&d);
                    Self::note_invalidated(st, &d);
                    Self::unlink(st, &d, &old);
                }
            }
        }
    }

    /// Removes every cache entry whose derivation relied on a `(method,
    /// class_level)` lookup resolving to nothing — the None→Some half of
    /// resolution-change invalidation, where there is no shadowed entry
    /// for [`Engine::invalidate_shadowed`]'s walk to find.
    fn invalidate_neg_dependents(st: &mut EngineState, method: Sym, class_level: bool) {
        if let Some(deps) = st.neg_dependents.remove(&(method, class_level)) {
            for d in deps {
                if let Some(old) = st.cache.remove(&d) {
                    st.stats.dependent_invalidations += 1;
                    st.depatch(&d);
                    Self::note_invalidated(st, &d);
                    Self::unlink(st, &d, &old);
                }
            }
        }
    }

    /// Handles a resolution change: a new annotation at `key` (or a
    /// module annotation newly mixed into a chain) can *shadow* an
    /// ancestor's annotation — receivers that used to resolve
    /// `key.method` to the ancestor's signature now resolve to `key`'s,
    /// so derivations that consulted the shadowed signature are stale
    /// even though that signature itself never changed. This is
    /// Definition 1 validity about what (TApp) *resolves to*, not merely
    /// the entries it read. Directly cached methods self-heal (their
    /// stored `sig_version` no longer matches the newly resolved entry),
    /// but dependents must be invalidated here.
    fn invalidate_shadowed(&self, st: &mut EngineState, interp: &Interp, key: &MethodKey) {
        // None→Some: derivations that relied on this name having *no*
        // annotation anywhere (unannotated-constructor `new`, class-level
        // fallback misses) have no shadowed entry to find below — their
        // negative edges carry the invalidation.
        Self::invalidate_neg_dependents(st, key.method, key.class_level);
        let Some(cid) = interp.registry.lookup(key.class.as_str()) else {
            return;
        };
        // Chains through `key.class` itself.
        self.invalidate_shadowed_along(st, interp, cid, key.class, key);
        // A module annotation also shadows along the chain of every class
        // that mixed the module in.
        if interp.registry.class(cid).is_module {
            for i in 0..interp.registry.class_count() as u32 {
                let c = ClassId(i);
                if c != cid && interp.registry.ancestors(c).contains(&cid) {
                    self.invalidate_shadowed_along(st, interp, c, key.class, key);
                }
            }
        }
        // A new class-level annotation also shadows the checker's
        // fallback resolution of class-level calls through `Class`'s
        // *instance* chain (see the checker's main lookup).
        if key.class_level {
            if let Some(class_cid) = interp.registry.lookup("Class") {
                for (_, ancestor) in interp.registry.ancestor_syms(class_cid) {
                    let shadowed = MethodKey {
                        class: ancestor,
                        class_level: false,
                        method: key.method,
                    };
                    if self.rdl.entry(&shadowed).is_some() {
                        Self::invalidate_dependents_of(st, &shadowed);
                        break;
                    }
                }
            }
        }
    }

    /// Walks `start`'s ancestor chain past `new_class` and invalidates the
    /// dependents of the first annotation the new key now shadows along
    /// that chain. Local tier only: shared entries carry resolution
    /// witnesses, and replay at adoption rejects anything the new key
    /// shadows — evicting there would punish *other* tenants whose
    /// identical boot sequence emits this same event.
    fn invalidate_shadowed_along(
        &self,
        st: &mut EngineState,
        interp: &Interp,
        start: ClassId,
        new_class: Sym,
        key: &MethodKey,
    ) {
        let mut past_new = false;
        for (_, ancestor) in interp.registry.ancestor_syms(start) {
            if ancestor == new_class {
                past_new = true;
                continue;
            }
            if !past_new {
                continue;
            }
            let shadowed = MethodKey {
                class: ancestor,
                class_level: key.class_level,
                method: key.method,
            };
            if self.rdl.entry(&shadowed).is_some() {
                Self::invalidate_dependents_of(st, &shadowed);
                // The first match after `new_class` is what resolution
                // through this chain previously returned; deeper entries
                // were already shadowed by it.
                break;
            }
        }
    }

    /// [`Engine::invalidate_shadowed`] for a post-first-call `include`:
    /// every annotation keyed on the module may now shadow an annotation
    /// further along the including class's chain.
    fn invalidate_module_shadowed(
        &self,
        st: &mut EngineState,
        interp: &Interp,
        class: ClassId,
        module: ClassId,
    ) {
        let module_sym = interp.registry.name_sym(module);
        let module_keys: Vec<MethodKey> = self
            .rdl
            .keys()
            .into_iter()
            .filter(|k| k.class == module_sym)
            .collect();
        for mk in module_keys {
            // The include may make a previously-missing lookup resolve to
            // this module annotation (None→Some along the new chain).
            Self::invalidate_neg_dependents(st, mk.method, mk.class_level);
            let mut past_module = false;
            for (_, ancestor) in interp.registry.ancestor_syms(class) {
                if ancestor == module_sym {
                    past_module = true;
                    continue;
                }
                if !past_module {
                    continue;
                }
                let shadowed = MethodKey {
                    class: ancestor,
                    class_level: mk.class_level,
                    method: mk.method,
                };
                if self.rdl.entry(&shadowed).is_some() {
                    // Local tier only — see `invalidate_shadowed`.
                    Self::invalidate_dependents_of(st, &shadowed);
                    break;
                }
            }
        }
    }

    /// Replays a derivation's (TApp) resolution witnesses against the
    /// *current* table, comparing each answer's key, version and content
    /// fingerprint to the values the derivation was built against. Used
    /// by the shared-tier adoption path and by scheduler-completion
    /// landing — the same Definition-1 validity test, structural instead
    /// of by re-derivation.
    fn witnesses_valid<'d>(
        &self,
        st: &mut EngineState,
        interp: &Interp,
        deps: impl Iterator<Item = (&'d Resolution, u64, u64)>,
    ) -> bool {
        let gen = (
            self.rdl.table_generation(),
            interp.registry.hierarchy_generation(),
        );
        if st.dep_memo_gen != gen {
            st.dep_memo.clear();
            st.dep_memo_gen = gen;
        }
        for (res, at_version, at_fp) in deps {
            let cur = st.replay(interp, &self.rdl, res);
            let ok = match (res.target, cur) {
                (None, None) => true,
                (Some(t), Some((k, v, fp))) => k == t && v == at_version && fp == at_fp,
                _ => false,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    // ----- the just-in-time check ---------------------------------------------

    /// Ensures `cache_key`'s derivation is valid, running the static check
    /// if needed. `trigger` is the triggering call site for just-in-time
    /// checks, `None` when checking eagerly (`check_all`/`hb_lint`, where
    /// no call exists). `policy` is the already-resolved enforcement
    /// policy — it does not change the judgement, only the failure
    /// diagnostic's shadow note (the caller decides raise-vs-continue) —
    /// except [`CheckPolicy::Deferred`], where a just-in-time miss in
    /// both cache tiers enqueues the check onto the scheduler and returns
    /// `Ok(false)`: the call is admitted, the body is *not* marked
    /// checked. `Ok(true)` means the derivation is valid right now.
    #[allow(clippy::too_many_arguments)]
    fn ensure_checked(
        &self,
        interp: &mut Interp,
        info: &DispatchInfo,
        cache_key: &MethodKey,
        annotation_key: &MethodKey,
        table_entry: &TableEntry,
        trigger: Option<Span>,
        mut policy: CheckPolicy,
    ) -> Result<bool, HbError> {
        let caching = self.config.borrow().caching;
        {
            let st = self.state.borrow();
            if caching {
                if let Some(c) = st.cache.get(cache_key) {
                    if c.method_entry_id == info.entry.id && c.sig_version == table_entry.version {
                        drop(st);
                        self.state.borrow_mut().stats.cache_hits += 1;
                        if self.obs_active.get() {
                            self.obs_note_cache_hit(cache_key);
                        }
                        return Ok(true);
                    }
                }
            }
        }
        // Hot-tier miss: the first-call path. Everything below is either
        // a derivation (check_ns) or a shared-tier adoption
        // (shared_adopt_ns); the split feeds the multi-tenant probe.
        let t_first = std::time::Instant::now();
        // Captured locals of define_method procs are typed from their
        // runtime values — the just-in-time analogue of Fig. 2. Computed
        // up front because the shared-tier body fingerprint covers them.
        let captured: Option<TypeEnv> = match &info.entry.body {
            MethodBody::FromProc(p) => {
                let env: TypeEnv = p
                    .env
                    .collect_bindings()
                    .into_iter()
                    .map(|(k, v)| (k, type_of(interp, &v)))
                    .collect();
                Some(env)
            }
            _ => None,
        };
        // Probe the process-wide shared tier before doing any real work.
        // The body fingerprint (file content hash + definition span) is
        // O(1), so a warm tenant resolves its first call with a couple of
        // hash probes and never lowers, let alone checks. Another tenant's
        // derivation is valid for *this* tenant iff the body text, the
        // method's own signature and every dependency signature all match
        // what the derivation was checked against — by version *and*
        // content fingerprint: Definition 1's conditions, validated
        // structurally instead of by re-derivation.
        let body_fp = body_fingerprint(interp, &info.entry, captured.as_ref());
        let shared_fp: Option<(Arc<SharedCache>, u64)> = if caching {
            self.shared.borrow().clone().zip(body_fp)
        } else {
            None
        };
        if let Some((shared, body_fp)) = &shared_fp {
            if let Some(d) = shared.lookup(cache_key, info.entry.id, table_entry.version, *body_fp)
            {
                let mut st = self.state.borrow_mut();
                // Epoch fast path: equal rolling fingerprints mean this
                // tenant performed the identical table/hierarchy mutation
                // sequence as the publisher — every dependency (witnesses
                // *and* ivar/cvar/gvar types) holds by construction.
                let epochs = (
                    self.rdl.table_fingerprint(),
                    interp.registry.shape_fingerprint(),
                    self.rdl.var_fingerprint(),
                );
                let valid = (d.table_fp, d.hier_fp, d.var_fp) == epochs || {
                    // Divergent tenant: replay every witness against this
                    // tenant's own table. The class hierarchy and variable
                    // types have no per-use witnesses — check_sig makes
                    // is_subtype judgements straight off the hierarchy —
                    // so both fingerprints must match exactly even here;
                    // replay then covers table/annotation divergence only.
                    d.hier_fp == epochs.1
                        && d.var_fp == epochs.2
                        && d.own_sig_fingerprint == st.sig_fp(*annotation_key, table_entry)
                        && self.witnesses_valid(
                            &mut st,
                            interp,
                            d.deps
                                .iter()
                                .map(|dep| (&dep.resolution, dep.sig_version, dep.sig_fingerprint)),
                        )
                };
                if valid {
                    self.rdl.mark_used(annotation_key);
                    st.stats.shared_hits += 1;
                    let adopt_ns = t_first.elapsed().as_nanos() as u64;
                    st.stats.shared_adopt_ns += adopt_ns;
                    if let Some(obs) = &st.obs {
                        obs.first_request.record(adopt_ns);
                        obs.record_span(hb_obs::EventKind::SharedAdopt, *cache_key, adopt_ns);
                    }
                    if let Some(old) = st.cache.remove(cache_key) {
                        st.depatch(cache_key);
                        Self::unlink(&mut st, cache_key, &old);
                    }
                    let deps: BTreeSet<MethodKey> =
                        d.deps.iter().filter_map(|p| p.resolution.target).collect();
                    for dep in &deps {
                        // A real check marks every consulted dependency
                        // annotation used; adoption stands in for the check,
                        // so the Used statistic must not diverge between
                        // warm and cold tenants.
                        self.rdl.mark_used(dep);
                        st.dependents.entry(*dep).or_default().insert(*cache_key);
                    }
                    let neg_deps: BTreeSet<(Sym, bool)> = d
                        .deps
                        .iter()
                        .filter(|p| p.resolution.target.is_none())
                        .map(|p| (p.resolution.method, p.resolution.class_level))
                        .collect();
                    for nd in &neg_deps {
                        st.neg_dependents.entry(*nd).or_default().insert(*cache_key);
                    }
                    // Cast sites are facts about the derivation, not about
                    // who ran the checker — replicate them so warm tenants
                    // report Table-1 Casts identically to cold ones.
                    st.stats.cast_sites.extend(d.cast_sites.iter().copied());
                    st.cache.insert(
                        *cache_key,
                        CacheEntry {
                            method_entry_id: info.entry.id,
                            sig_version: table_entry.version,
                            deps,
                            neg_deps,
                        },
                    );
                    return Ok(true);
                }
            }
        }
        // Miss in both tiers: lower (or fetch) the body CFG.
        let cfg = {
            let st = self.state.borrow();
            st.cfgs.get(&info.entry.id).cloned()
        };
        let cfg = match cfg {
            Some(c) => c,
            None => {
                let lowered = lower_entry(&info.entry).ok_or_else(|| {
                    HbError::new(
                        ErrorKind::Internal,
                        format!("cannot lower body of {}", cache_key.display()),
                        info.span,
                    )
                })?;
                let rc = Arc::new(lowered);
                self.state
                    .borrow_mut()
                    .cfgs
                    .insert(info.entry.id, rc.clone());
                rc
            }
        };
        // Deferred admission: a just-in-time miss in both tiers does not
        // run the checker on the caller's thread. The engine extracts an
        // owned `CheckTask` (body CFG, signature, world snapshot with its
        // epoch fingerprints), enqueues it, and admits the call under
        // full dynamic checks — Shadow semantics, so soundness is
        // unchanged: the body is only marked checked once the worker's
        // derivation lands at harvest and its fingerprints still match.
        if policy == CheckPolicy::Deferred {
            if let Some(call) = trigger {
                let mut st = self.state.borrow_mut();
                let latched = st.in_flight.contains(cache_key);
                // Backpressure: at the high-water cap, admitting another
                // *new* key would grow the scheduler queue without bound
                // (e.g. while the pool is paused or saturated). Shed this
                // call to a synchronous Enforce check instead — already
                // latched keys still admit, since they add no queue depth.
                if !latched && st.in_flight.len() >= self.deferred_cap.get() {
                    st.stats.deferred_shed += 1;
                    if let Some(obs) = &st.obs {
                        obs.record(hb_obs::EventKind::TaskShed, *cache_key);
                    }
                    drop(st);
                    policy = CheckPolicy::Enforce;
                } else {
                    st.stats.deferred_admissions += 1;
                    if !latched {
                        let world = self.world_for(&mut st, interp);
                        let own_sig_fp = st.sig_fp(*annotation_key, table_entry);
                        st.in_flight.insert(*cache_key);
                        st.stats.sched_tasks_enqueued += 1;
                        let submitted_at = if let Some(obs) = &st.obs {
                            obs.record(hb_obs::EventKind::TaskEnqueue, *cache_key);
                            obs.note_admitted(*cache_key);
                            obs.first_request
                                .record(t_first.elapsed().as_nanos() as u64);
                            Some(std::time::Instant::now())
                        } else {
                            None
                        };
                        drop(st);
                        let task = CheckTask {
                            cache_key: *cache_key,
                            ann_key: *annotation_key,
                            ann_span: table_entry.span,
                            sig: table_entry.sig.clone(),
                            entry_id: info.entry.id,
                            sig_version: table_entry.version,
                            body_fp,
                            own_sig_fp,
                            cfg,
                            captured,
                            world,
                            policy,
                            trigger: Some(call),
                            record_blame: true,
                            opts: self.check_opts,
                            completions: self.completions.clone(),
                            submitted_at,
                        };
                        if !self.ensure_scheduler().submit(task) {
                            // The pool is shutting down: the task will
                            // never run, so the key must not stay latched
                            // in flight (the next call re-attempts the
                            // admission).
                            self.state.borrow_mut().in_flight.remove(cache_key);
                        }
                    }
                    return Ok(false);
                }
            }
        }
        if self.obs_active.get() {
            if let Some(obs) = &self.state.borrow().obs {
                obs.record(hb_obs::EventKind::CheckStart, *cache_key);
            }
        }
        let reg_info = RegistryInfo(&interp.registry);
        let result = check_sig(&CheckRequest {
            cfg: &cfg,
            self_class: cache_key.class.as_str(),
            class_level: cache_key.class_level,
            sig: &table_entry.sig,
            ann_key: *annotation_key,
            ann_span: table_entry.span,
            info: &reg_info,
            rdl: self.rdl.as_ref(),
            captured: captured.as_ref(),
            opts: &self.check_opts,
            policy,
        });
        let check_ns = t_first.elapsed().as_nanos() as u64;
        let outcome = match result {
            Ok(o) => o,
            Err(e) => {
                let code = e.code();
                let mut diag = e.into_diagnostic();
                let checker_span_dummy = diag.span == Span::dummy();
                if let Some(call) = trigger {
                    diag.labels.push(DiagLabel::new(
                        LabelRole::CallSite,
                        "checked just-in-time at this call",
                        call,
                    ));
                    if checker_span_dummy {
                        // The checker positioned the error at synthesized
                        // code (corelib / generated bodies). Historically
                        // the dummy span was *dropped* in favour of the
                        // call site; with structured labels we emit both:
                        // the call site becomes the primary span and the
                        // spanless blame stays as an explicit note.
                        diag.labels.push(DiagLabel::new(
                            LabelRole::Note,
                            "blamed code has no source span (synthesized or core-library definition)",
                            Span::dummy(),
                        ));
                        diag.span = call;
                    }
                } else if checker_span_dummy {
                    // Eager mode: no call site exists; anchor at the
                    // annotation being checked.
                    diag.span = table_entry.span;
                }
                let message = format!(
                    "type error in {} (checked at call): {}",
                    cache_key.display(),
                    diag.message
                );
                let mut st = self.state.borrow_mut();
                st.stats.checks_failed += 1;
                st.stats.failed_check_ns += check_ns;
                if let Some(obs) = &st.obs {
                    obs.first_request.record(check_ns);
                }
                self.push_check_log(
                    &mut st,
                    CheckLogItem {
                        key: *cache_key,
                        outcome: CheckVerdict::Blame(code),
                        duration_ns: check_ns,
                    },
                );
                st.phase.note_check();
                drop(st);
                self.rdl.record_diagnostic(diag.clone());
                let span = diag.span;
                return Err(HbError::with_diagnostic(
                    ErrorKind::TypeBlame,
                    message,
                    span,
                    diag,
                ));
            }
        };
        // The signature itself is "used during type checking" (Table 1's
        // Used column counts generated annotations consulted either as a
        // callee type or as the checked method's own signature).
        self.rdl.mark_used(annotation_key);
        let mut st = self.state.borrow_mut();
        st.stats.checks_performed += 1;
        st.stats.check_ns += check_ns;
        if let Some(obs) = &st.obs {
            obs.first_request.record(check_ns);
        }
        self.push_check_log(
            &mut st,
            CheckLogItem {
                key: *cache_key,
                outcome: CheckVerdict::Pass,
                duration_ns: check_ns,
            },
        );
        st.stats.checked_methods.insert(cache_key.display());
        st.stats
            .cast_sites
            .extend(outcome.cast_sites.iter().copied());
        st.phase.note_check();
        if caching {
            // A stale entry (old entry id / sig version) may still be
            // present: retire its reverse-dependency edges before the new
            // derivation registers its own.
            if let Some(old) = st.cache.remove(cache_key) {
                st.depatch(cache_key);
                Self::unlink(&mut st, cache_key, &old);
            }
            for dep in &outcome.deps {
                st.dependents.entry(*dep).or_default().insert(*cache_key);
            }
            let neg_deps: BTreeSet<(Sym, bool)> = outcome
                .resolutions
                .iter()
                .filter(|r| r.target.is_none())
                .map(|r| (r.method, r.class_level))
                .collect();
            for nd in &neg_deps {
                st.neg_dependents.entry(*nd).or_default().insert(*cache_key);
            }
            // Publish to the shared tier with each dependency's current
            // signature version and content fingerprint, so foreign
            // tenants can validate without re-deriving. (Proc-backed
            // bodies publish too: their captured type environment is
            // folded into the body fingerprint, so only tenants whose
            // captured locals have identical types can adopt.)
            if let Some((shared, body_fp)) = &shared_fp {
                let deps: Vec<SharedDep> = outcome
                    .resolutions
                    .iter()
                    .map(|res| {
                        let (v, fp) = res
                            .target
                            .and_then(|t| self.rdl.entry(&t).map(|e| (t, e)))
                            .map_or((0, 0), |(t, e)| (e.version, st.sig_fp(t, &e)));
                        SharedDep {
                            resolution: *res,
                            sig_version: v,
                            sig_fingerprint: fp,
                        }
                    })
                    .collect();
                let own_fp = st.sig_fp(*annotation_key, table_entry);
                let epochs = (
                    self.rdl.table_fingerprint(),
                    interp.registry.shape_fingerprint(),
                    self.rdl.var_fingerprint(),
                );
                shared.insert(
                    *cache_key,
                    info.entry.id,
                    table_entry.version,
                    *body_fp,
                    own_fp,
                    epochs,
                    deps,
                    outcome.cast_sites.iter().copied().collect(),
                );
            }
            st.cache.insert(
                *cache_key,
                CacheEntry {
                    method_entry_id: info.entry.id,
                    sig_version: table_entry.version,
                    deps: outcome.deps,
                    neg_deps,
                },
            );
        }
        Ok(true)
    }

    #[allow(clippy::too_many_arguments)]
    fn dynamic_arg_check(
        &self,
        interp: &Interp,
        info: &DispatchInfo,
        entry: &TableEntry,
        args: &[Value],
        key: &MethodKey,
        annotation_key: &MethodKey,
        policy: CheckPolicy,
    ) -> Result<(), HbError> {
        self.state.borrow_mut().stats.dyn_arg_checks += 1;
        self.rdl.inner.borrow_mut().dyn_checks_run += 1;
        let mut arity_ok = false;
        for arm in &entry.sig.arms {
            if !arm.accepts_arity(args.len()) {
                continue;
            }
            arity_ok = true;
            let all = args.iter().enumerate().all(|(i, a)| match arm.param_at(i) {
                // Var-free params (the common case) are checked in place;
                // only polymorphic annotations pay the erase-and-rebuild.
                Some(pt) if pt.has_vars() => value_conforms(interp, a, &pt.erase_vars()),
                Some(pt) => value_conforms(interp, a, pt),
                None => false,
            });
            if all {
                return Ok(());
            }
        }
        let got: Vec<String> = args.iter().map(|a| interp.class_name_of(a)).collect();
        let message = if arity_ok {
            format!(
                "dynamic type check failed calling {}: arguments ({}) do not match {}",
                key.display(),
                got.join(", "),
                entry.sig
            )
        } else {
            format!(
                "dynamic type check failed calling {}: wrong number of arguments ({})",
                key.display(),
                args.len()
            )
        };
        let mut diag = TypeDiagnostic::error(
            DiagCode::DynamicArgCheck,
            message.clone(),
            info.span,
            BlameTarget::Annotation(*annotation_key),
        )
        .with_method(*key)
        .with_label(
            DiagLabel::new(
                LabelRole::BlamedAnnotation,
                format!("annotation `{}` declared here", entry.sig),
                entry.span,
            )
            .with_method(*annotation_key),
        )
        .with_label(DiagLabel::new(
            LabelRole::CallSite,
            "rejected call made here",
            info.span,
        ));
        if policy == CheckPolicy::Shadow {
            diag.labels.push(CheckPolicy::shadow_note());
        }
        self.rdl.record_diagnostic(diag.clone());
        Err(HbError::with_diagnostic(
            ErrorKind::ContractBlame,
            message,
            info.span,
            diag,
        ))
    }

    /// Eager whole-program checking: walks every annotated, checkable
    /// method and checks it *now*, without waiting for a triggering call
    /// — the CI-linter mode behind `hb_lint`. Successful derivations are
    /// cached (and published to the shared tier) exactly as just-in-time
    /// checks are, so an eager pass also warms the caches; failures are
    /// returned as structured diagnostics, one per failing method, in
    /// deterministic key order.
    ///
    /// Note the semantic difference from the just-in-time mode: methods
    /// whose annotation class is a module are checked against the module
    /// itself (there may be no instantiating call to name a mix-in
    /// class), and methods never defined (annotation without a body) are
    /// skipped.
    /// Enumerates the whole-program check set — every annotated,
    /// checkable, non-`Off` method with its resolved policy — in
    /// deterministic key order. The single source of eligibility truth
    /// for the serial and parallel `check_all` paths: a rule added here
    /// cannot diverge between them (their byte-identical output is a CI
    /// gate).
    fn eligible_methods(&self, interp: &Interp) -> Vec<EligibleMethod> {
        let trivial = self.rdl.policies_trivial();
        let mut out = Vec::new();
        for (key, entry) in self.rdl.entries() {
            if !entry.check {
                continue;
            }
            // Eager checking never raises, so Enforce, Shadow and
            // Deferred behave identically here; Off skips the method
            // entirely.
            let policy = if trivial {
                CheckPolicy::Enforce
            } else {
                self.rdl.policy_for(&key, &key)
            };
            if policy == CheckPolicy::Off {
                continue;
            }
            let Some(cid) = interp.registry.lookup(key.class.as_str()) else {
                continue;
            };
            let found = if key.class_level {
                interp.registry.find_smethod(cid, key.method.as_str())
            } else {
                interp.registry.find_method(cid, key.method.as_str())
            };
            let Some((owner, mentry)) = found else {
                continue;
            };
            if !mentry.is_checkable() {
                continue;
            }
            out.push(EligibleMethod {
                key,
                entry,
                cid,
                owner,
                mentry,
                policy,
            });
        }
        out
    }

    pub fn check_all(&self, interp: &mut Interp) -> Vec<TypeDiagnostic> {
        self.process_events(interp);
        let mut out = Vec::new();
        for m in self.eligible_methods(interp) {
            let info = DispatchInfo {
                recv_class: m.cid,
                class_level: m.key.class_level,
                owner: m.owner,
                name: m.key.method,
                entry: m.mentry,
                span: m.entry.span,
            };
            if let Err(e) =
                self.ensure_checked(interp, &info, &m.key, &m.key, &m.entry, None, m.policy)
            {
                if let Some(d) = e.diagnostic() {
                    out.push(d.clone());
                }
            }
        }
        // Stable reporting order, shared with the parallel path: golden
        // tests and `hb_lint --json` byte-compare this, so it must not
        // depend on interning order (the historical `entries()` order) or
        // worker interleaving.
        sort_diagnostics(&mut out);
        out
    }

    /// [`Engine::check_all`] fanned across the concurrent scheduler:
    /// every annotated, checkable method is captured as a [`CheckTask`]
    /// against one shared world snapshot and checked on `jobs` workers;
    /// passing derivations are validated and adopted at harvest (caching
    /// and publishing exactly as synchronous checks do); then a serial
    /// sweep — now running against warm caches — re-derives only the
    /// failures, guaranteeing diagnostics byte-identical to the serial
    /// path in the same sorted order.
    ///
    /// Uses the attached scheduler if any; otherwise an ephemeral
    /// `jobs`-worker pool that is torn down before returning. `jobs <= 1`
    /// is exactly [`Engine::check_all`].
    pub fn check_all_parallel(&self, interp: &mut Interp, jobs: usize) -> Vec<TypeDiagnostic> {
        self.process_events(interp);
        // Land anything already in flight so deferred-admission results
        // do not interleave with the lint fan-out below.
        self.sched_harvest(interp);
        if jobs <= 1 {
            return self.check_all(interp);
        }
        let sched = match self.scheduler() {
            Some(s) => s,
            None => Arc::new(Scheduler::new(jobs)),
        };
        let caching = self.config.borrow().caching;
        let world = {
            let mut st = self.state.borrow_mut();
            self.world_for(&mut st, interp)
        };
        for m in self.eligible_methods(interp) {
            // Already valid in the hot tier: the sweep will hit it; no
            // task needed.
            if caching {
                let st = self.state.borrow();
                if st.cache.get(&m.key).is_some_and(|c| {
                    c.method_entry_id == m.mentry.id && c.sig_version == m.entry.version
                }) {
                    continue;
                }
            }
            let captured: Option<TypeEnv> = match &m.mentry.body {
                MethodBody::FromProc(p) => Some(
                    p.env
                        .collect_bindings()
                        .into_iter()
                        .map(|(k, v)| (k, type_of(interp, &v)))
                        .collect(),
                ),
                _ => None,
            };
            let cfg = {
                let cached = self.state.borrow().cfgs.get(&m.mentry.id).cloned();
                match cached {
                    Some(c) => c,
                    None => {
                        let Some(lowered) = lower_entry(&m.mentry) else {
                            continue;
                        };
                        let rc = Arc::new(lowered);
                        self.state.borrow_mut().cfgs.insert(m.mentry.id, rc.clone());
                        rc
                    }
                }
            };
            let body_fp = body_fingerprint(interp, &m.mentry, captured.as_ref());
            let (own_sig_fp, submitted_at) = {
                let mut st = self.state.borrow_mut();
                st.stats.sched_tasks_enqueued += 1;
                let submitted_at = if let Some(obs) = &st.obs {
                    obs.record(hb_obs::EventKind::TaskEnqueue, m.key);
                    Some(std::time::Instant::now())
                } else {
                    None
                };
                (st.sig_fp(m.key, &m.entry), submitted_at)
            };
            // A rejected submission (shut-down pool) simply leaves the
            // method for the serial sweep below.
            let _ = sched.submit(CheckTask {
                cache_key: m.key,
                ann_key: m.key,
                ann_span: m.entry.span,
                sig: m.entry.sig.clone(),
                entry_id: m.mentry.id,
                sig_version: m.entry.version,
                body_fp,
                own_sig_fp,
                cfg,
                captured,
                world: world.clone(),
                policy: m.policy,
                trigger: None,
                record_blame: false,
                opts: self.check_opts,
                completions: self.completions.clone(),
                submitted_at,
            });
        }
        self.completions.wait_idle();
        self.sched_harvest(interp);
        // The deterministic sweep: adopted derivations are hot-tier hits;
        // only failures (never cached) re-derive, serially, producing the
        // exact diagnostics the serial path produces, already sorted.
        self.check_all(interp)
    }
}

/// Content fingerprint of an annotation's signature, used by the shared
/// tier to validate that a dependency means the *same thing* in the
/// adopting tenant's table (version counters alone are per-tenant and can
/// coincide across different codebases).
fn sig_fingerprint(entry: &TableEntry) -> u64 {
    hb_intern::fingerprint64(&entry.sig)
}

/// Cross-process body fingerprint: identifies the exact source text of a
/// definition by (file content hash, span range) in O(1) — no lowering, no
/// tree walk. Proc-backed bodies (`define_method`) additionally fold in
/// the captured type environment, because their derivations are judged
/// under those types (Fig. 2): two tenants share a proc derivation only
/// when the captured locals have identical types. `None` for builtins and
/// synthesised nodes without a stable source identity.
fn body_fingerprint(
    interp: &Interp,
    entry: &hb_interp::MethodEntry,
    captured: Option<&TypeEnv>,
) -> Option<u64> {
    let span = match &entry.body {
        MethodBody::Ast(def) => def.span,
        MethodBody::FromProc(p) => p.span,
        MethodBody::Builtin(_) => return None,
    };
    if span.lo == span.hi {
        return None;
    }
    let file = interp.source_map.file(span.file)?;
    // TypeEnv is a BTreeMap: iteration order is deterministic across
    // tenants.
    let captured: Vec<(&String, &hb_types::Type)> =
        captured.map(|env| env.iter().collect()).unwrap_or_default();
    Some(hb_intern::fingerprint64((
        file.content_hash(),
        span.lo,
        span.hi,
        captured,
    )))
}

/// Lowers a checkable method entry to a CFG.
/// Deoptimizes the whole fast-entry patch table the moment any RDL event
/// is emitted or enforcement configuration changes. Interpreter events are
/// handled differently (the dispatch fast path refuses to fire while
/// registry events are pending), but RDL mutations happen inside builtins
/// with no pending-event guard on the dispatch probe — so the flush must be
/// synchronous with the mutation.
struct FastFlushSink {
    tier: Rc<ExecTierState>,
}

impl RdlEventSink for FastFlushSink {
    fn on_rdl_event(&self, _ev: &RdlEvent) {
        self.tier.flush_all();
    }

    fn on_enforcement_changed(&self) {
        self.tier.flush_all();
    }
}

fn lower_entry(entry: &hb_interp::MethodEntry) -> Option<MethodCfg> {
    match &entry.body {
        MethodBody::Ast(def) => Some(lower_method(def)),
        MethodBody::FromProc(p) => Some(lower_block_body(&p.params, &p.body, p.span)),
        MethodBody::Builtin(_) => None,
    }
}

impl CallHook for Engine {
    fn before_call(
        &self,
        interp: &mut Interp,
        info: &DispatchInfo,
        _recv: &Value,
        args: &[Value],
    ) -> Result<HookOutcome, HbError> {
        if !self.config.borrow().enabled {
            return Ok(HookOutcome::default());
        }
        self.process_events(interp);
        // Scheduler completions land here, on the interpreter thread —
        // the default (scheduler-less) configuration pays one `Cell`
        // load, keeping the steady-state dispatch path untouched.
        if self.sched_active.get() {
            self.poll_completions(interp);
        }
        self.state.borrow_mut().stats.intercepted_calls += 1;

        // Resolve the annotation along the receiver class's ancestors, the
        // same path dispatch used — interned symbols over the memoised
        // chain, so the steady-state lookup allocates nothing.
        let found = self.rdl.lookup_along(
            interp
                .registry
                .ancestor_syms(info.recv_class)
                .map(|(_, sym)| sym),
            info.class_level,
            info.name,
        );
        let Some((annotation_key, table_entry)) = found else {
            return Ok(HookOutcome::default());
        };

        // The cache key is the *receiver's* class (module methods cache per
        // mix-in class, paper §4 "Modules").
        let cache_key = MethodKey {
            class: interp.registry.name_sym(info.recv_class),
            class_level: info.class_level,
            method: info.name,
        };

        // Enforcement policy. The trivial-configuration fast test is one
        // `Cell` load, so the Enforce-everywhere default (and with it the
        // steady-state cache-hit path) never probes the policy maps.
        let policy = if self.rdl.policies_trivial() {
            CheckPolicy::Enforce
        } else {
            self.resolve_policy(&cache_key, &annotation_key)
        };
        if policy == CheckPolicy::Off {
            // Type enforcement disabled for this method: no dynamic
            // argument check, no static check, and the body runs
            // unchecked (its own callees fall back to dynamic checks).
            return Ok(HookOutcome::default());
        }

        // Dynamic argument checks: only from unchecked callers, unless the
        // method is flagged always-check (the Rails params exception).
        let cfg = self.config.borrow();
        let need_dyn = cfg.dyn_arg_checks
            && (!interp.current_caller_checked() || table_entry.always_dyn_check);
        drop(cfg);
        let mut dyn_shadowed = false;
        if need_dyn {
            let dyn_result = self.dynamic_arg_check(
                interp,
                info,
                &table_entry,
                args,
                &cache_key,
                &annotation_key,
                policy,
            );
            if let Err(e) = dyn_result {
                if policy != CheckPolicy::Shadow {
                    return Err(e);
                }
                // Shadow: the rejection is recorded (the diagnostic is
                // already in the store); the call proceeds.
                self.rdl.note_shadowed_blame();
                dyn_shadowed = true;
            }
        }

        if table_entry.check {
            return match self.ensure_checked(
                interp,
                info,
                &cache_key,
                &annotation_key,
                &table_entry,
                Some(info.span),
                policy,
            ) {
                // A static pass normally marks the frame checked so callees
                // skip their dynamic checks — but the derivation assumed
                // the declared argument types, and a shadowed dynamic
                // rejection means this call's actual arguments violate
                // them. The frame stays unchecked: shadowing must not
                // extend static trust past a known-ill-typed boundary (and
                // the callees' own dynamic checks are what surfaces the
                // downstream blames the canary is there to observe).
                // `checked == false` is a deferred admission: the check is
                // in flight on the scheduler, so the frame likewise stays
                // unchecked until the derivation lands.
                Ok(checked) => {
                    let mark_checked = checked && !dyn_shadowed;
                    // Patch the checked fast prologue: subsequent dispatches
                    // of this `(receiver class, entry)` from checked callers
                    // skip the hook probe entirely. Sound only while every
                    // per-call decision this hook could make is statically
                    // known to be a no-op: derivation cached (`checked`),
                    // caching on, enforcement trivially Enforce, no `pre`
                    // contract registered under this method's name, and the
                    // method not flagged always-dynamic-check. Any event
                    // that could change one of these flushes or depatches
                    // the table.
                    if mark_checked
                        && interp.tier.elision_enabled()
                        && self.config.borrow().caching
                        && self.rdl.policies_trivial()
                        && self.rdl.no_pre_named(info.name, info.class_level)
                        && !table_entry.always_dyn_check
                    {
                        interp.tier.patch(cache_key, info.recv_class, info.entry.id);
                    }
                    Ok(HookOutcome { mark_checked })
                }
                Err(e) if policy == CheckPolicy::Shadow && e.kind == ErrorKind::TypeBlame => {
                    // Shadow: the full check ran and blamed; its
                    // diagnostic is recorded. Execution continues, but the
                    // body is NOT marked checked — it failed, so its
                    // callees keep their dynamic argument checks.
                    self.rdl.note_shadowed_blame();
                    Ok(HookOutcome::default())
                }
                Err(e) => Err(e),
            };
        }
        Ok(HookOutcome::default())
    }
}
