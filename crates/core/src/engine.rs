//! The Hummingbird engine: just-in-time static type checking at method
//! entry, with a memoised derivation cache (paper §3's 𝒳) and Definition-1
//! invalidation.
//!
//! The engine is a dispatch hook ([`CallHook`]): when an annotated method is
//! called it (a) runs any needed dynamic argument checks (rules (EApp*),
//! minimised per §4 "Eliminating Dynamic Checks"), and (b) if the method is
//! marked for checking, statically checks its body against the *current*
//! type table — once, caching the outcome keyed by the receiver's class.

use crate::info::RegistryInfo;
use crate::shared_cache::{SharedCache, SharedDep, SharedEvictionSink};
use crate::stats::{CheckLogItem, CheckVerdict, EngineStats, PhaseTracker};
use hb_check::{check_sig, CheckOptions, CheckPolicy, CheckRequest};
use hb_il::{lower_block_body, lower_method, MethodCfg};
use hb_intern::Sym;
use hb_interp::{
    CallHook, ClassId, DispatchInfo, ErrorKind, HbError, HookOutcome, Interp, InterpEvent,
    MethodBody, Value,
};
use hb_rdl::{type_of, value_conforms, MethodKey, RdlEvent, RdlState, Resolution, TableEntry};
use hb_syntax::{BlameTarget, DiagCode, DiagLabel, LabelRole, Span, TypeDiagnostic};
use hb_types::TypeEnv;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

/// Engine configuration — the evaluation's three modes are built from
/// these switches.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Master switch: when false the hook does nothing (used with cleared
    /// hooks for the "Orig" column).
    pub enabled: bool,
    /// Memoise static checks (off for the "No$" column).
    pub caching: bool,
    /// Dynamically check arguments from unchecked callers.
    pub dyn_arg_checks: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            enabled: true,
            caching: true,
            dyn_arg_checks: true,
        }
    }
}

/// A memoised check: the paper's cache entry `(DM, D≤)`, represented by
/// what must stay unchanged for the derivation to remain valid.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// The method-table entry id the body was lowered from ((EDef)
    /// invalidation: redefinition changes the id).
    method_entry_id: u64,
    /// The annotation version the body was checked against ((EType)
    /// invalidation: type changes bump it).
    sig_version: u64,
    /// The (TApp) dependency set of Definition 1(2); surfaced through
    /// [`Engine::cache_dump`] so cached derivations are inspectable.
    deps: BTreeSet<MethodKey>,
    /// Negative (TApp) facts the derivation relied on: `(method,
    /// class_level)` lookups that resolved to *no* annotation (an
    /// unannotated `initialize` behind `C.new`, a class-level miss that
    /// fell back to the `Class` chain). A first-ever annotation for such
    /// a name is a resolution change with no shadowed entry to hang
    /// Definition 1(2) on, so these get their own edges.
    neg_deps: BTreeSet<(Sym, bool)>,
}

/// One cached derivation as reported by [`Engine::cache_dump`]: the cache
/// key plus everything its validity depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheDumpEntry {
    /// The receiver-class cache key (paper §4 "Modules": module methods
    /// appear once per mix-in class).
    pub key: MethodKey,
    /// The method-table entry id the derivation was checked against.
    pub method_entry_id: u64,
    /// The annotation version the derivation was checked against.
    pub sig_version: u64,
    /// The annotation keys rule (TApp) consulted — Definition 1(2)'s
    /// dependency set; replacing any of these invalidates this entry.
    pub deps: Vec<MethodKey>,
}

/// Memo key for witness replay: (start, skip_receiver, class_level, method).
type ReplayKey = (Sym, bool, bool, Sym);
/// A replayed lookup's answer: (resolved key, its version, its sig fingerprint).
type ReplayResult = (MethodKey, u64, u64);

#[derive(Default)]
struct EngineState {
    cache: HashMap<MethodKey, CacheEntry>,
    /// dep (annotation key) → cache keys whose derivations used it.
    dependents: HashMap<MethodKey, HashSet<MethodKey>>,
    /// `(method, class_level)` → cache keys whose derivations relied on
    /// that lookup resolving to *nothing* (see [`CacheEntry::neg_deps`]).
    /// Conservative — keyed by name, not receiver chain — so a first-ever
    /// annotation may re-check a method whose chain never sees it; a
    /// re-check is cheap and the edge map stays receiver-independent.
    neg_dependents: HashMap<(Sym, bool), HashSet<MethodKey>>,
    /// Lowered bodies by method-entry id (also used for reload diffing).
    cfgs: HashMap<u64, Rc<MethodCfg>>,
    /// Memoised signature-content fingerprints by (key, version).
    sig_fps: HashMap<(MethodKey, u64), u64>,
    /// Memoised replay results per resolution witness, valid for one
    /// (type-table, class-hierarchy) generation pair — the warm tenants'
    /// adoption fast path validates whole dependency sets from this map.
    dep_memo: HashMap<ReplayKey, Option<ReplayResult>>,
    /// The (table, hierarchy) generations `dep_memo` was built at.
    dep_memo_gen: (u64, u64),
    stats: EngineStats,
    phase: PhaseTracker,
}

impl EngineState {
    fn sig_fp(&mut self, key: MethodKey, entry: &TableEntry) -> u64 {
        *self
            .sig_fps
            .entry((key, entry.version))
            .or_insert_with(|| sig_fingerprint(entry))
    }

    /// Replays a (TApp) resolution witness against the *current* table and
    /// class hierarchy, memoised per generation pair: what does looking
    /// `res.method` up along `res.start`'s chain resolve to right now?
    /// Uses the same chain the checker uses ([`RegistryInfo::ancestors`]),
    /// so replay answers exactly match a hypothetical re-check.
    fn replay(
        &mut self,
        interp: &Interp,
        rdl: &RdlState,
        res: &Resolution,
    ) -> Option<ReplayResult> {
        let memo_key: ReplayKey = (res.start, res.skip_receiver, res.class_level, res.method);
        if let Some(c) = self.dep_memo.get(&memo_key) {
            return *c;
        }
        // Same chain the checker walks (`RegistryInfo::ancestors`), built
        // from interned syms with no string allocation: registry chain if
        // the class exists (plus trailing Object for module chains),
        // `[start, Object]` otherwise.
        let object = Sym::intern("Object");
        let mut chain: Vec<Sym> = match interp.registry.lookup(res.start.as_str()) {
            Some(cid) => interp.registry.ancestor_syms(cid).map(|(_, s)| s).collect(),
            None => vec![res.start],
        };
        if chain.last() != Some(&object) {
            chain.push(object);
        }
        let skip = usize::from(res.skip_receiver);
        let cur = rdl
            .lookup_along(chain.into_iter().skip(skip), res.class_level, res.method)
            .map(|(k, e)| {
                let fp = self.sig_fp(k, &e);
                (k, e.version, fp)
            });
        self.dep_memo.insert(memo_key, cur);
        cur
    }
}

/// The engine. Shared between the interpreter hook registration and the
/// host application through `Rc`.
pub struct Engine {
    pub rdl: Rc<RdlState>,
    config: RefCell<Config>,
    state: RefCell<EngineState>,
    check_opts: CheckOptions,
    /// Retention bound for the check log between drains (see
    /// [`crate::stats::DEFAULT_CHECK_LOG_CAP`]; builder-configured).
    check_log_cap: std::cell::Cell<usize>,
    /// The process-wide shared derivation tier, when this engine is one
    /// tenant of many (see [`crate::shared_cache`]). `None` keeps the
    /// engine purely per-process, exactly as before.
    shared: RefCell<Option<Arc<SharedCache>>>,
}

impl Engine {
    /// Creates an engine over the given RDL state.
    pub fn new(rdl: Rc<RdlState>) -> Engine {
        Engine {
            rdl,
            config: RefCell::new(Config::default()),
            state: RefCell::new(EngineState::default()),
            check_opts: CheckOptions::default(),
            check_log_cap: std::cell::Cell::new(crate::stats::DEFAULT_CHECK_LOG_CAP),
            shared: RefCell::new(None),
        }
    }

    /// Sets the retention bound of the check log (zero disables logging;
    /// shrinking below the current length drops oldest entries at the
    /// next push).
    pub fn set_check_log_cap(&self, cap: usize) {
        self.check_log_cap.set(cap);
    }

    /// Resolves the enforcement policy for a dispatch. Outlined and cold:
    /// the Enforce-everywhere default never takes this path, and keeping
    /// the map probes out of `before_call`'s body keeps the steady-state
    /// cache-hit path at its pre-policy register layout (measured: the
    /// inlined version cost ~8% on dispatch_probe).
    #[cold]
    #[inline(never)]
    fn resolve_policy(&self, cache_key: &MethodKey, annotation_key: &MethodKey) -> CheckPolicy {
        self.rdl.policy_for(cache_key, annotation_key)
    }

    /// Appends to the bounded check log: failures recur on every call
    /// (never cached), so the log is a window, not a ledger.
    fn push_check_log(&self, st: &mut EngineState, item: CheckLogItem) {
        let cap = self.check_log_cap.get();
        while st.stats.check_log.len() >= cap.max(1) {
            st.stats.check_log.pop_front();
        }
        if cap > 0 {
            st.stats.check_log.push_back(item);
        }
    }

    /// Attaches the process-wide shared derivation tier, making this
    /// engine a tenant: local cache misses probe the shared tier before
    /// running the checker, performed checks publish to it, and this
    /// tenant's type-table mutations fan out evictions to it. Call once
    /// per engine, ideally before app code loads.
    pub fn set_shared_cache(&self, shared: Arc<SharedCache>) {
        self.rdl.add_event_sink(Rc::new(SharedEvictionSink {
            shared: shared.clone(),
        }));
        *self.shared.borrow_mut() = Some(shared);
    }

    /// The attached shared tier, if any.
    pub fn shared_cache(&self) -> Option<Arc<SharedCache>> {
        self.shared.borrow().clone()
    }

    /// Current configuration.
    pub fn config(&self) -> Config {
        *self.config.borrow()
    }

    /// Replaces the configuration.
    pub fn set_config(&self, c: Config) {
        *self.config.borrow_mut() = c;
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> EngineStats {
        let st = self.state.borrow();
        let mut s = st.stats.clone();
        s.phases = st.phase.phases();
        s.cache_entries = st.cache.len();
        drop(st);
        // Shadowed blames are counted on the RDL state so the pre-hook
        // layer (which has no engine statistics) contributes too.
        s.shadowed_blames = self.rdl.shadowed_blames();
        s
    }

    /// Clears statistics counters and collected diagnostics (not the
    /// cache).
    pub fn reset_stats(&self) {
        let mut st = self.state.borrow_mut();
        st.stats = EngineStats::default();
        st.phase = PhaseTracker::default();
        drop(st);
        self.rdl.clear_diagnostics();
        self.rdl.reset_shadowed_blames();
    }

    /// Every blame diagnostic produced so far — just-in-time and eager
    /// check failures, dynamic argument checks, casts and preconditions —
    /// in emission order, from the type table's shared bounded store.
    pub fn diagnostics(&self) -> Vec<TypeDiagnostic> {
        self.rdl.diagnostics()
    }

    /// Takes the log of static checks performed since the last call (used
    /// by the Table 2 update experiment).
    pub fn take_check_log(&self) -> Vec<CheckLogItem> {
        self.state.borrow_mut().stats.check_log.drain(..).collect()
    }

    /// Number of live cache entries.
    pub fn cache_len(&self) -> usize {
        self.state.borrow().cache.len()
    }

    /// A debug dump of every cached derivation with its dependency set,
    /// sorted by key — what the paper's cache 𝒳 currently holds and why
    /// each entry is still valid.
    pub fn cache_dump(&self) -> Vec<CacheDumpEntry> {
        let st = self.state.borrow();
        let mut out: Vec<CacheDumpEntry> = st
            .cache
            .iter()
            .map(|(key, e)| CacheDumpEntry {
                key: *key,
                method_entry_id: e.method_entry_id,
                sig_version: e.sig_version,
                deps: e.deps.iter().copied().collect(),
            })
            .collect();
        out.sort_by_key(|a| a.key);
        out
    }

    /// Drops the whole cache (tests / ablation).
    pub fn clear_cache(&self) {
        let mut st = self.state.borrow_mut();
        st.cache.clear();
        st.dependents.clear();
    }

    // ----- invalidation ------------------------------------------------------

    /// Processes pending interpreter and RDL events, performing
    /// Definition 1 invalidation.
    pub fn process_events(&self, interp: &mut Interp) {
        let ievents = interp.drain_events();
        let revents = self.rdl.drain_events();
        if ievents.is_empty() && revents.is_empty() {
            return;
        }
        let mut st = self.state.borrow_mut();
        for ev in ievents {
            st.phase.note_annotation(); // method creation happens in the
                                        // annotate/metaprogramming phase
            match ev {
                InterpEvent::MethodRedefined {
                    class,
                    name,
                    class_level,
                    old_id,
                    new_id,
                } => {
                    let unchanged = Self::redefinition_unchanged(
                        &st,
                        interp,
                        class,
                        &name,
                        class_level,
                        old_id,
                    );
                    if let Some(new_cfg) = unchanged {
                        // Same body: re-point cached derivations at the new
                        // entry id instead of invalidating (dev-mode reload
                        // CFG diffing, paper §4). Store the *freshly lowered*
                        // CFG under the new id — the shape is identical but
                        // its spans are current, so a later recheck blames
                        // post-reload source locations.
                        st.cfgs.insert(new_id, Rc::new(new_cfg));
                        for entry in st.cache.values_mut() {
                            if entry.method_entry_id == old_id {
                                entry.method_entry_id = new_id;
                            }
                        }
                    } else {
                        let key = MethodKey {
                            class: interp.registry.name_sym(class),
                            class_level,
                            method: Sym::intern(&name),
                        };
                        Self::invalidate(&mut st, &key, true);
                        if let Some(shared) = self.shared.borrow().as_ref() {
                            shared.evict_with_dependents(&key);
                        }
                    }
                    // The retired entry id can never be dispatched again;
                    // dropping its CFG keeps long reload sessions bounded.
                    st.cfgs.remove(&old_id);
                }
                InterpEvent::MethodRemoved {
                    class,
                    name,
                    class_level,
                } => {
                    let key = MethodKey {
                        class: interp.registry.name_sym(class),
                        class_level,
                        method: Sym::intern(&name),
                    };
                    Self::invalidate(&mut st, &key, true);
                    if let Some(shared) = self.shared.borrow().as_ref() {
                        shared.evict_with_dependents(&key);
                    }
                }
                InterpEvent::ModuleIncluded { class, module } => {
                    // A post-first-call include changes annotation
                    // resolution for the including class's chain: module
                    // annotations may shadow ancestor annotations.
                    self.invalidate_module_shadowed(&mut st, interp, class, module);
                }
                InterpEvent::MethodAdded { .. } => {
                    // New methods have no cached derivations, and directly
                    // cached overridees self-heal via the entry-id check.
                }
            }
        }
        for ev in revents {
            st.phase.note_annotation();
            match ev {
                // Adding a new arm re-checks the method itself (version
                // mismatch at next hit) but leaves dependents valid —
                // the §4 "Cache Invalidation" intersection subtlety.
                // (Shared-tier eviction fans out via the RdlEventSink.)
                RdlEvent::ArmAdded(key) => {
                    if let Some(old) = st.cache.remove(&key) {
                        Self::unlink(&mut st, &key, &old);
                    }
                    // Version bumped: the memoised fingerprints of this
                    // key's retired versions can never be probed again —
                    // drop them so long reload sessions stay bounded.
                    st.sig_fps.retain(|(k, _), _| *k != key);
                }
                RdlEvent::TypeReplaced(key) => {
                    Self::invalidate(&mut st, &key, true);
                    st.sig_fps.retain(|(k, _), _| *k != key);
                }
                // A brand-new annotation can shadow an ancestor's along
                // some receiver chain — a resolution change, not a
                // signature change, so it needs its own invalidation.
                RdlEvent::TypeAdded(key) => {
                    self.invalidate_shadowed(&mut st, interp, &key);
                }
            }
        }
    }

    /// If the redefinition is body-identical (per CFG shape), returns the
    /// freshly lowered CFG of the new body (same shape, current spans).
    fn redefinition_unchanged(
        st: &EngineState,
        interp: &Interp,
        class: ClassId,
        name: &str,
        class_level: bool,
        old_id: u64,
    ) -> Option<MethodCfg> {
        let old_cfg = st.cfgs.get(&old_id)?;
        let found = if class_level {
            interp.registry.find_smethod(class, name)
        } else {
            interp.registry.find_method(class, name)
        };
        let (_, entry) = found?;
        let new_cfg = lower_entry(&entry)?;
        if new_cfg.same_shape(old_cfg) {
            Some(new_cfg)
        } else {
            None
        }
    }

    /// Removes the reverse-dependency edges (dep → `key`) a retired cache
    /// entry had registered. Without this, edges from superseded
    /// derivations accumulate across reload sessions — the map grows
    /// without bound and a later change to a long-gone dependency
    /// spuriously invalidates (and re-checks) methods whose *current*
    /// derivation never consulted it.
    fn unlink(st: &mut EngineState, key: &MethodKey, entry: &CacheEntry) {
        for dep in &entry.deps {
            if let Some(set) = st.dependents.get_mut(dep) {
                set.remove(key);
                if set.is_empty() {
                    st.dependents.remove(dep);
                }
            }
        }
        for nd in &entry.neg_deps {
            if let Some(set) = st.neg_dependents.get_mut(nd) {
                set.remove(key);
                if set.is_empty() {
                    st.neg_dependents.remove(nd);
                }
            }
        }
    }

    /// Removes a cache entry and (optionally) every entry that depends on
    /// it — Definition 1. Counts only actual removals: invalidating a key
    /// that was never cached (or already invalidated) is a no-op, not a
    /// statistic.
    fn invalidate(st: &mut EngineState, key: &MethodKey, with_dependents: bool) {
        if let Some(old) = st.cache.remove(key) {
            st.stats.invalidations += 1;
            Self::unlink(st, key, &old);
        }
        if with_dependents {
            Self::invalidate_dependents_of(st, key);
        }
    }

    /// Removes every cache entry whose derivation consulted `key` —
    /// Definition 1(2).
    fn invalidate_dependents_of(st: &mut EngineState, key: &MethodKey) {
        if let Some(deps) = st.dependents.remove(key) {
            for d in deps {
                if let Some(old) = st.cache.remove(&d) {
                    st.stats.dependent_invalidations += 1;
                    Self::unlink(st, &d, &old);
                }
            }
        }
    }

    /// Removes every cache entry whose derivation relied on a `(method,
    /// class_level)` lookup resolving to nothing — the None→Some half of
    /// resolution-change invalidation, where there is no shadowed entry
    /// for [`Engine::invalidate_shadowed`]'s walk to find.
    fn invalidate_neg_dependents(st: &mut EngineState, method: Sym, class_level: bool) {
        if let Some(deps) = st.neg_dependents.remove(&(method, class_level)) {
            for d in deps {
                if let Some(old) = st.cache.remove(&d) {
                    st.stats.dependent_invalidations += 1;
                    Self::unlink(st, &d, &old);
                }
            }
        }
    }

    /// Handles a resolution change: a new annotation at `key` (or a
    /// module annotation newly mixed into a chain) can *shadow* an
    /// ancestor's annotation — receivers that used to resolve
    /// `key.method` to the ancestor's signature now resolve to `key`'s,
    /// so derivations that consulted the shadowed signature are stale
    /// even though that signature itself never changed. This is
    /// Definition 1 validity about what (TApp) *resolves to*, not merely
    /// the entries it read. Directly cached methods self-heal (their
    /// stored `sig_version` no longer matches the newly resolved entry),
    /// but dependents must be invalidated here.
    fn invalidate_shadowed(&self, st: &mut EngineState, interp: &Interp, key: &MethodKey) {
        // None→Some: derivations that relied on this name having *no*
        // annotation anywhere (unannotated-constructor `new`, class-level
        // fallback misses) have no shadowed entry to find below — their
        // negative edges carry the invalidation.
        Self::invalidate_neg_dependents(st, key.method, key.class_level);
        let Some(cid) = interp.registry.lookup(key.class.as_str()) else {
            return;
        };
        // Chains through `key.class` itself.
        self.invalidate_shadowed_along(st, interp, cid, key.class, key);
        // A module annotation also shadows along the chain of every class
        // that mixed the module in.
        if interp.registry.class(cid).is_module {
            for i in 0..interp.registry.class_count() as u32 {
                let c = ClassId(i);
                if c != cid && interp.registry.ancestors(c).contains(&cid) {
                    self.invalidate_shadowed_along(st, interp, c, key.class, key);
                }
            }
        }
        // A new class-level annotation also shadows the checker's
        // fallback resolution of class-level calls through `Class`'s
        // *instance* chain (see the checker's main lookup).
        if key.class_level {
            if let Some(class_cid) = interp.registry.lookup("Class") {
                for (_, ancestor) in interp.registry.ancestor_syms(class_cid) {
                    let shadowed = MethodKey {
                        class: ancestor,
                        class_level: false,
                        method: key.method,
                    };
                    if self.rdl.entry(&shadowed).is_some() {
                        Self::invalidate_dependents_of(st, &shadowed);
                        break;
                    }
                }
            }
        }
    }

    /// Walks `start`'s ancestor chain past `new_class` and invalidates the
    /// dependents of the first annotation the new key now shadows along
    /// that chain. Local tier only: shared entries carry resolution
    /// witnesses, and replay at adoption rejects anything the new key
    /// shadows — evicting there would punish *other* tenants whose
    /// identical boot sequence emits this same event.
    fn invalidate_shadowed_along(
        &self,
        st: &mut EngineState,
        interp: &Interp,
        start: ClassId,
        new_class: Sym,
        key: &MethodKey,
    ) {
        let mut past_new = false;
        for (_, ancestor) in interp.registry.ancestor_syms(start) {
            if ancestor == new_class {
                past_new = true;
                continue;
            }
            if !past_new {
                continue;
            }
            let shadowed = MethodKey {
                class: ancestor,
                class_level: key.class_level,
                method: key.method,
            };
            if self.rdl.entry(&shadowed).is_some() {
                Self::invalidate_dependents_of(st, &shadowed);
                // The first match after `new_class` is what resolution
                // through this chain previously returned; deeper entries
                // were already shadowed by it.
                break;
            }
        }
    }

    /// [`Engine::invalidate_shadowed`] for a post-first-call `include`:
    /// every annotation keyed on the module may now shadow an annotation
    /// further along the including class's chain.
    fn invalidate_module_shadowed(
        &self,
        st: &mut EngineState,
        interp: &Interp,
        class: ClassId,
        module: ClassId,
    ) {
        let module_sym = interp.registry.name_sym(module);
        let module_keys: Vec<MethodKey> = self
            .rdl
            .keys()
            .into_iter()
            .filter(|k| k.class == module_sym)
            .collect();
        for mk in module_keys {
            // The include may make a previously-missing lookup resolve to
            // this module annotation (None→Some along the new chain).
            Self::invalidate_neg_dependents(st, mk.method, mk.class_level);
            let mut past_module = false;
            for (_, ancestor) in interp.registry.ancestor_syms(class) {
                if ancestor == module_sym {
                    past_module = true;
                    continue;
                }
                if !past_module {
                    continue;
                }
                let shadowed = MethodKey {
                    class: ancestor,
                    class_level: mk.class_level,
                    method: mk.method,
                };
                if self.rdl.entry(&shadowed).is_some() {
                    // Local tier only — see `invalidate_shadowed`.
                    Self::invalidate_dependents_of(st, &shadowed);
                    break;
                }
            }
        }
    }

    // ----- the just-in-time check ---------------------------------------------

    /// Ensures `cache_key`'s derivation is valid, running the static check
    /// if needed. `trigger` is the triggering call site for just-in-time
    /// checks, `None` when checking eagerly (`check_all`/`hb_lint`, where
    /// no call exists). `policy` is the already-resolved enforcement
    /// policy — it does not change the judgement, only the failure
    /// diagnostic's shadow note (the caller decides raise-vs-continue).
    #[allow(clippy::too_many_arguments)]
    fn ensure_checked(
        &self,
        interp: &mut Interp,
        info: &DispatchInfo,
        cache_key: &MethodKey,
        annotation_key: &MethodKey,
        table_entry: &TableEntry,
        trigger: Option<Span>,
        policy: CheckPolicy,
    ) -> Result<(), HbError> {
        let caching = self.config.borrow().caching;
        {
            let st = self.state.borrow();
            if caching {
                if let Some(c) = st.cache.get(cache_key) {
                    if c.method_entry_id == info.entry.id && c.sig_version == table_entry.version {
                        drop(st);
                        self.state.borrow_mut().stats.cache_hits += 1;
                        return Ok(());
                    }
                }
            }
        }
        // Hot-tier miss: the first-call path. Everything below is either
        // a derivation (check_ns) or a shared-tier adoption
        // (shared_adopt_ns); the split feeds the multi-tenant probe.
        let t_first = std::time::Instant::now();
        // Captured locals of define_method procs are typed from their
        // runtime values — the just-in-time analogue of Fig. 2. Computed
        // up front because the shared-tier body fingerprint covers them.
        let captured: Option<TypeEnv> = match &info.entry.body {
            MethodBody::FromProc(p) => {
                let env: TypeEnv = p
                    .env
                    .collect_bindings()
                    .into_iter()
                    .map(|(k, v)| (k, type_of(interp, &v)))
                    .collect();
                Some(env)
            }
            _ => None,
        };
        // Probe the process-wide shared tier before doing any real work.
        // The body fingerprint (file content hash + definition span) is
        // O(1), so a warm tenant resolves its first call with a couple of
        // hash probes and never lowers, let alone checks. Another tenant's
        // derivation is valid for *this* tenant iff the body text, the
        // method's own signature and every dependency signature all match
        // what the derivation was checked against — by version *and*
        // content fingerprint: Definition 1's conditions, validated
        // structurally instead of by re-derivation.
        let shared_fp: Option<(Arc<SharedCache>, u64)> = if caching {
            self.shared.borrow().clone().and_then(|s| {
                body_fingerprint(interp, &info.entry, captured.as_ref()).map(|fp| (s, fp))
            })
        } else {
            None
        };
        if let Some((shared, body_fp)) = &shared_fp {
            if let Some(d) = shared.lookup(cache_key, info.entry.id, table_entry.version, *body_fp)
            {
                let mut st = self.state.borrow_mut();
                // Epoch fast path: equal rolling fingerprints mean this
                // tenant performed the identical table/hierarchy mutation
                // sequence as the publisher — every dependency (witnesses
                // *and* ivar/cvar/gvar types) holds by construction.
                let epochs = (
                    self.rdl.table_fingerprint(),
                    interp.registry.shape_fingerprint(),
                    self.rdl.var_fingerprint(),
                );
                let valid = (d.table_fp, d.hier_fp, d.var_fp) == epochs || {
                    // Divergent tenant: replay every witness against this
                    // tenant's own table. The class hierarchy and variable
                    // types have no per-use witnesses — check_sig makes
                    // is_subtype judgements straight off the hierarchy —
                    // so both fingerprints must match exactly even here;
                    // replay then covers table/annotation divergence only.
                    let gen = (
                        self.rdl.table_generation(),
                        interp.registry.hierarchy_generation(),
                    );
                    if st.dep_memo_gen != gen {
                        st.dep_memo.clear();
                        st.dep_memo_gen = gen;
                    }
                    d.hier_fp == epochs.1
                        && d.var_fp == epochs.2
                        && d.own_sig_fingerprint == st.sig_fp(*annotation_key, table_entry)
                        && d.deps.iter().all(|dep| {
                            let cur = st.replay(interp, &self.rdl, &dep.resolution);
                            match (dep.resolution.target, cur) {
                                (None, None) => true,
                                (Some(t), Some((k, v, fp))) => {
                                    k == t && v == dep.sig_version && fp == dep.sig_fingerprint
                                }
                                _ => false,
                            }
                        })
                };
                if valid {
                    self.rdl.mark_used(annotation_key);
                    st.stats.shared_hits += 1;
                    st.stats.shared_adopt_ns += t_first.elapsed().as_nanos() as u64;
                    if let Some(old) = st.cache.remove(cache_key) {
                        Self::unlink(&mut st, cache_key, &old);
                    }
                    let deps: BTreeSet<MethodKey> =
                        d.deps.iter().filter_map(|p| p.resolution.target).collect();
                    for dep in &deps {
                        // A real check marks every consulted dependency
                        // annotation used; adoption stands in for the check,
                        // so the Used statistic must not diverge between
                        // warm and cold tenants.
                        self.rdl.mark_used(dep);
                        st.dependents.entry(*dep).or_default().insert(*cache_key);
                    }
                    let neg_deps: BTreeSet<(Sym, bool)> = d
                        .deps
                        .iter()
                        .filter(|p| p.resolution.target.is_none())
                        .map(|p| (p.resolution.method, p.resolution.class_level))
                        .collect();
                    for nd in &neg_deps {
                        st.neg_dependents.entry(*nd).or_default().insert(*cache_key);
                    }
                    // Cast sites are facts about the derivation, not about
                    // who ran the checker — replicate them so warm tenants
                    // report Table-1 Casts identically to cold ones.
                    st.stats.cast_sites.extend(d.cast_sites.iter().copied());
                    st.cache.insert(
                        *cache_key,
                        CacheEntry {
                            method_entry_id: info.entry.id,
                            sig_version: table_entry.version,
                            deps,
                            neg_deps,
                        },
                    );
                    return Ok(());
                }
            }
        }
        // Miss in both tiers: lower (or fetch) the body CFG.
        let cfg = {
            let st = self.state.borrow();
            st.cfgs.get(&info.entry.id).cloned()
        };
        let cfg = match cfg {
            Some(c) => c,
            None => {
                let lowered = lower_entry(&info.entry).ok_or_else(|| {
                    HbError::new(
                        ErrorKind::Internal,
                        format!("cannot lower body of {}", cache_key.display()),
                        info.span,
                    )
                })?;
                let rc = Rc::new(lowered);
                self.state
                    .borrow_mut()
                    .cfgs
                    .insert(info.entry.id, rc.clone());
                rc
            }
        };
        let reg_info = RegistryInfo(&interp.registry);
        let result = check_sig(&CheckRequest {
            cfg: &cfg,
            self_class: cache_key.class.as_str(),
            class_level: cache_key.class_level,
            sig: &table_entry.sig,
            ann_key: *annotation_key,
            ann_span: table_entry.span,
            info: &reg_info,
            rdl: &self.rdl,
            captured: captured.as_ref(),
            opts: &self.check_opts,
            policy,
        });
        let check_ns = t_first.elapsed().as_nanos() as u64;
        let outcome = match result {
            Ok(o) => o,
            Err(e) => {
                let code = e.code();
                let mut diag = e.into_diagnostic();
                let checker_span_dummy = diag.span == Span::dummy();
                if let Some(call) = trigger {
                    diag.labels.push(DiagLabel::new(
                        LabelRole::CallSite,
                        "checked just-in-time at this call",
                        call,
                    ));
                    if checker_span_dummy {
                        // The checker positioned the error at synthesized
                        // code (corelib / generated bodies). Historically
                        // the dummy span was *dropped* in favour of the
                        // call site; with structured labels we emit both:
                        // the call site becomes the primary span and the
                        // spanless blame stays as an explicit note.
                        diag.labels.push(DiagLabel::new(
                            LabelRole::Note,
                            "blamed code has no source span (synthesized or core-library definition)",
                            Span::dummy(),
                        ));
                        diag.span = call;
                    }
                } else if checker_span_dummy {
                    // Eager mode: no call site exists; anchor at the
                    // annotation being checked.
                    diag.span = table_entry.span;
                }
                let message = format!(
                    "type error in {} (checked at call): {}",
                    cache_key.display(),
                    diag.message
                );
                let mut st = self.state.borrow_mut();
                st.stats.checks_failed += 1;
                st.stats.failed_check_ns += check_ns;
                self.push_check_log(
                    &mut st,
                    CheckLogItem {
                        key: *cache_key,
                        outcome: CheckVerdict::Blame(code),
                        duration_ns: check_ns,
                    },
                );
                st.phase.note_check();
                drop(st);
                self.rdl.record_diagnostic(diag.clone());
                let span = diag.span;
                return Err(HbError::with_diagnostic(
                    ErrorKind::TypeBlame,
                    message,
                    span,
                    diag,
                ));
            }
        };
        // The signature itself is "used during type checking" (Table 1's
        // Used column counts generated annotations consulted either as a
        // callee type or as the checked method's own signature).
        self.rdl.mark_used(annotation_key);
        let mut st = self.state.borrow_mut();
        st.stats.checks_performed += 1;
        st.stats.check_ns += check_ns;
        self.push_check_log(
            &mut st,
            CheckLogItem {
                key: *cache_key,
                outcome: CheckVerdict::Pass,
                duration_ns: check_ns,
            },
        );
        st.stats.checked_methods.insert(cache_key.display());
        st.stats
            .cast_sites
            .extend(outcome.cast_sites.iter().copied());
        st.phase.note_check();
        if caching {
            // A stale entry (old entry id / sig version) may still be
            // present: retire its reverse-dependency edges before the new
            // derivation registers its own.
            if let Some(old) = st.cache.remove(cache_key) {
                Self::unlink(&mut st, cache_key, &old);
            }
            for dep in &outcome.deps {
                st.dependents.entry(*dep).or_default().insert(*cache_key);
            }
            let neg_deps: BTreeSet<(Sym, bool)> = outcome
                .resolutions
                .iter()
                .filter(|r| r.target.is_none())
                .map(|r| (r.method, r.class_level))
                .collect();
            for nd in &neg_deps {
                st.neg_dependents.entry(*nd).or_default().insert(*cache_key);
            }
            // Publish to the shared tier with each dependency's current
            // signature version and content fingerprint, so foreign
            // tenants can validate without re-deriving. (Proc-backed
            // bodies publish too: their captured type environment is
            // folded into the body fingerprint, so only tenants whose
            // captured locals have identical types can adopt.)
            if let Some((shared, body_fp)) = &shared_fp {
                let deps: Vec<SharedDep> = outcome
                    .resolutions
                    .iter()
                    .map(|res| {
                        let (v, fp) = res
                            .target
                            .and_then(|t| self.rdl.entry(&t).map(|e| (t, e)))
                            .map_or((0, 0), |(t, e)| (e.version, st.sig_fp(t, &e)));
                        SharedDep {
                            resolution: *res,
                            sig_version: v,
                            sig_fingerprint: fp,
                        }
                    })
                    .collect();
                let own_fp = st.sig_fp(*annotation_key, table_entry);
                let epochs = (
                    self.rdl.table_fingerprint(),
                    interp.registry.shape_fingerprint(),
                    self.rdl.var_fingerprint(),
                );
                shared.insert(
                    *cache_key,
                    info.entry.id,
                    table_entry.version,
                    *body_fp,
                    own_fp,
                    epochs,
                    deps,
                    outcome.cast_sites.iter().copied().collect(),
                );
            }
            st.cache.insert(
                *cache_key,
                CacheEntry {
                    method_entry_id: info.entry.id,
                    sig_version: table_entry.version,
                    deps: outcome.deps,
                    neg_deps,
                },
            );
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn dynamic_arg_check(
        &self,
        interp: &Interp,
        info: &DispatchInfo,
        entry: &TableEntry,
        args: &[Value],
        key: &MethodKey,
        annotation_key: &MethodKey,
        policy: CheckPolicy,
    ) -> Result<(), HbError> {
        self.state.borrow_mut().stats.dyn_arg_checks += 1;
        self.rdl.inner.borrow_mut().dyn_checks_run += 1;
        let mut arity_ok = false;
        for arm in &entry.sig.arms {
            if !arm.accepts_arity(args.len()) {
                continue;
            }
            arity_ok = true;
            let all = args.iter().enumerate().all(|(i, a)| match arm.param_at(i) {
                Some(pt) => value_conforms(interp, a, &pt.erase_vars()),
                None => false,
            });
            if all {
                return Ok(());
            }
        }
        let got: Vec<String> = args.iter().map(|a| interp.class_name_of(a)).collect();
        let message = if arity_ok {
            format!(
                "dynamic type check failed calling {}: arguments ({}) do not match {}",
                key.display(),
                got.join(", "),
                entry.sig
            )
        } else {
            format!(
                "dynamic type check failed calling {}: wrong number of arguments ({})",
                key.display(),
                args.len()
            )
        };
        let mut diag = TypeDiagnostic::error(
            DiagCode::DynamicArgCheck,
            message.clone(),
            info.span,
            BlameTarget::Annotation(*annotation_key),
        )
        .with_method(*key)
        .with_label(
            DiagLabel::new(
                LabelRole::BlamedAnnotation,
                format!("annotation `{}` declared here", entry.sig),
                entry.span,
            )
            .with_method(*annotation_key),
        )
        .with_label(DiagLabel::new(
            LabelRole::CallSite,
            "rejected call made here",
            info.span,
        ));
        if policy == CheckPolicy::Shadow {
            diag.labels.push(CheckPolicy::shadow_note());
        }
        self.rdl.record_diagnostic(diag.clone());
        Err(HbError::with_diagnostic(
            ErrorKind::ContractBlame,
            message,
            info.span,
            diag,
        ))
    }

    /// Eager whole-program checking: walks every annotated, checkable
    /// method and checks it *now*, without waiting for a triggering call
    /// — the CI-linter mode behind `hb_lint`. Successful derivations are
    /// cached (and published to the shared tier) exactly as just-in-time
    /// checks are, so an eager pass also warms the caches; failures are
    /// returned as structured diagnostics, one per failing method, in
    /// deterministic key order.
    ///
    /// Note the semantic difference from the just-in-time mode: methods
    /// whose annotation class is a module are checked against the module
    /// itself (there may be no instantiating call to name a mix-in
    /// class), and methods never defined (annotation without a body) are
    /// skipped.
    pub fn check_all(&self, interp: &mut Interp) -> Vec<TypeDiagnostic> {
        self.process_events(interp);
        let trivial = self.rdl.policies_trivial();
        let mut out = Vec::new();
        for (key, entry) in self.rdl.entries() {
            if !entry.check {
                continue;
            }
            // Eager checking never raises, so Enforce and Shadow behave
            // identically here; Off skips the method entirely.
            let policy = if trivial {
                CheckPolicy::Enforce
            } else {
                self.rdl.policy_for(&key, &key)
            };
            if policy == CheckPolicy::Off {
                continue;
            }
            let Some(cid) = interp.registry.lookup(key.class.as_str()) else {
                continue;
            };
            let found = if key.class_level {
                interp.registry.find_smethod(cid, key.method.as_str())
            } else {
                interp.registry.find_method(cid, key.method.as_str())
            };
            let Some((owner, mentry)) = found else {
                continue;
            };
            if !mentry.is_checkable() {
                continue;
            }
            let info = DispatchInfo {
                recv_class: cid,
                class_level: key.class_level,
                owner,
                name: key.method,
                entry: mentry,
                span: entry.span,
            };
            if let Err(e) = self.ensure_checked(interp, &info, &key, &key, &entry, None, policy) {
                if let Some(d) = e.diagnostic() {
                    out.push(d.clone());
                }
            }
        }
        out
    }
}

/// Content fingerprint of an annotation's signature, used by the shared
/// tier to validate that a dependency means the *same thing* in the
/// adopting tenant's table (version counters alone are per-tenant and can
/// coincide across different codebases).
fn sig_fingerprint(entry: &TableEntry) -> u64 {
    hb_intern::fingerprint64(&entry.sig)
}

/// Cross-process body fingerprint: identifies the exact source text of a
/// definition by (file content hash, span range) in O(1) — no lowering, no
/// tree walk. Proc-backed bodies (`define_method`) additionally fold in
/// the captured type environment, because their derivations are judged
/// under those types (Fig. 2): two tenants share a proc derivation only
/// when the captured locals have identical types. `None` for builtins and
/// synthesised nodes without a stable source identity.
fn body_fingerprint(
    interp: &Interp,
    entry: &hb_interp::MethodEntry,
    captured: Option<&TypeEnv>,
) -> Option<u64> {
    let span = match &entry.body {
        MethodBody::Ast(def) => def.span,
        MethodBody::FromProc(p) => p.span,
        MethodBody::Builtin(_) => return None,
    };
    if span.lo == span.hi {
        return None;
    }
    let file = interp.source_map.file(span.file)?;
    // TypeEnv is a BTreeMap: iteration order is deterministic across
    // tenants.
    let captured: Vec<(&String, &hb_types::Type)> =
        captured.map(|env| env.iter().collect()).unwrap_or_default();
    Some(hb_intern::fingerprint64((
        file.content_hash(),
        span.lo,
        span.hi,
        captured,
    )))
}

/// Lowers a checkable method entry to a CFG.
fn lower_entry(entry: &hb_interp::MethodEntry) -> Option<MethodCfg> {
    match &entry.body {
        MethodBody::Ast(def) => Some(lower_method(def)),
        MethodBody::FromProc(p) => Some(lower_block_body(&p.params, &p.body, p.span)),
        MethodBody::Builtin(_) => None,
    }
}

impl CallHook for Engine {
    fn before_call(
        &self,
        interp: &mut Interp,
        info: &DispatchInfo,
        _recv: &Value,
        args: &[Value],
    ) -> Result<HookOutcome, HbError> {
        if !self.config.borrow().enabled {
            return Ok(HookOutcome::default());
        }
        self.process_events(interp);
        self.state.borrow_mut().stats.intercepted_calls += 1;

        // Resolve the annotation along the receiver class's ancestors, the
        // same path dispatch used — interned symbols over the memoised
        // chain, so the steady-state lookup allocates nothing.
        let found = self.rdl.lookup_along(
            interp
                .registry
                .ancestor_syms(info.recv_class)
                .map(|(_, sym)| sym),
            info.class_level,
            info.name,
        );
        let Some((annotation_key, table_entry)) = found else {
            return Ok(HookOutcome::default());
        };

        // The cache key is the *receiver's* class (module methods cache per
        // mix-in class, paper §4 "Modules").
        let cache_key = MethodKey {
            class: interp.registry.name_sym(info.recv_class),
            class_level: info.class_level,
            method: info.name,
        };

        // Enforcement policy. The trivial-configuration fast test is one
        // `Cell` load, so the Enforce-everywhere default (and with it the
        // steady-state cache-hit path) never probes the policy maps.
        let policy = if self.rdl.policies_trivial() {
            CheckPolicy::Enforce
        } else {
            self.resolve_policy(&cache_key, &annotation_key)
        };
        if policy == CheckPolicy::Off {
            // Type enforcement disabled for this method: no dynamic
            // argument check, no static check, and the body runs
            // unchecked (its own callees fall back to dynamic checks).
            return Ok(HookOutcome::default());
        }

        // Dynamic argument checks: only from unchecked callers, unless the
        // method is flagged always-check (the Rails params exception).
        let cfg = self.config.borrow();
        let need_dyn = cfg.dyn_arg_checks
            && (!interp.current_caller_checked() || table_entry.always_dyn_check);
        drop(cfg);
        let mut dyn_shadowed = false;
        if need_dyn {
            let dyn_result = self.dynamic_arg_check(
                interp,
                info,
                &table_entry,
                args,
                &cache_key,
                &annotation_key,
                policy,
            );
            if let Err(e) = dyn_result {
                if policy != CheckPolicy::Shadow {
                    return Err(e);
                }
                // Shadow: the rejection is recorded (the diagnostic is
                // already in the store); the call proceeds.
                self.rdl.note_shadowed_blame();
                dyn_shadowed = true;
            }
        }

        if table_entry.check {
            return match self.ensure_checked(
                interp,
                info,
                &cache_key,
                &annotation_key,
                &table_entry,
                Some(info.span),
                policy,
            ) {
                // A static pass normally marks the frame checked so callees
                // skip their dynamic checks — but the derivation assumed
                // the declared argument types, and a shadowed dynamic
                // rejection means this call's actual arguments violate
                // them. The frame stays unchecked: shadowing must not
                // extend static trust past a known-ill-typed boundary (and
                // the callees' own dynamic checks are what surfaces the
                // downstream blames the canary is there to observe).
                Ok(()) => Ok(HookOutcome {
                    mark_checked: !dyn_shadowed,
                }),
                Err(e) if policy == CheckPolicy::Shadow && e.kind == ErrorKind::TypeBlame => {
                    // Shadow: the full check ran and blamed; its
                    // diagnostic is recorded. Execution continues, but the
                    // body is NOT marked checked — it failed, so its
                    // callees keep their dynamic argument checks.
                    self.rdl.note_shadowed_blame();
                    Ok(HookOutcome::default())
                }
                Err(e) => Err(e),
            };
        }
        Ok(HookOutcome::default())
    }
}
