//! The Hummingbird engine: just-in-time static type checking at method
//! entry, with a memoised derivation cache (paper §3's 𝒳) and Definition-1
//! invalidation.
//!
//! The engine is a dispatch hook ([`CallHook`]): when an annotated method is
//! called it (a) runs any needed dynamic argument checks (rules (EApp*),
//! minimised per §4 "Eliminating Dynamic Checks"), and (b) if the method is
//! marked for checking, statically checks its body against the *current*
//! type table — once, caching the outcome keyed by the receiver's class.

use crate::info::RegistryInfo;
use crate::stats::{CheckLogItem, EngineStats, PhaseTracker};
use hb_check::{check_sig, CheckOptions};
use hb_il::{lower_block_body, lower_method, MethodCfg};
use hb_intern::Sym;
use hb_interp::{
    CallHook, ClassId, DispatchInfo, ErrorKind, HbError, HookOutcome, Interp, InterpEvent,
    MethodBody, Value,
};
use hb_rdl::{type_of, value_conforms, MethodKey, RdlEvent, RdlState, TableEntry};
use hb_types::TypeEnv;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::rc::Rc;

/// Engine configuration — the evaluation's three modes are built from
/// these switches.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Master switch: when false the hook does nothing (used with cleared
    /// hooks for the "Orig" column).
    pub enabled: bool,
    /// Memoise static checks (off for the "No$" column).
    pub caching: bool,
    /// Dynamically check arguments from unchecked callers.
    pub dyn_arg_checks: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            enabled: true,
            caching: true,
            dyn_arg_checks: true,
        }
    }
}

/// A memoised check: the paper's cache entry `(DM, D≤)`, represented by
/// what must stay unchanged for the derivation to remain valid.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// The method-table entry id the body was lowered from ((EDef)
    /// invalidation: redefinition changes the id).
    method_entry_id: u64,
    /// The annotation version the body was checked against ((EType)
    /// invalidation: type changes bump it).
    sig_version: u64,
    /// The (TApp) dependency set of Definition 1(2); surfaced through
    /// [`Engine::cache_dump`] so cached derivations are inspectable.
    deps: BTreeSet<MethodKey>,
}

/// One cached derivation as reported by [`Engine::cache_dump`]: the cache
/// key plus everything its validity depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheDumpEntry {
    /// The receiver-class cache key (paper §4 "Modules": module methods
    /// appear once per mix-in class).
    pub key: MethodKey,
    /// The method-table entry id the derivation was checked against.
    pub method_entry_id: u64,
    /// The annotation version the derivation was checked against.
    pub sig_version: u64,
    /// The annotation keys rule (TApp) consulted — Definition 1(2)'s
    /// dependency set; replacing any of these invalidates this entry.
    pub deps: Vec<MethodKey>,
}

#[derive(Default)]
struct EngineState {
    cache: HashMap<MethodKey, CacheEntry>,
    /// dep (annotation key) → cache keys whose derivations used it.
    dependents: HashMap<MethodKey, HashSet<MethodKey>>,
    /// Lowered bodies by method-entry id (also used for reload diffing).
    cfgs: HashMap<u64, Rc<MethodCfg>>,
    stats: EngineStats,
    phase: PhaseTracker,
}

/// The engine. Shared between the interpreter hook registration and the
/// host application through `Rc`.
pub struct Engine {
    pub rdl: Rc<RdlState>,
    config: RefCell<Config>,
    state: RefCell<EngineState>,
    check_opts: CheckOptions,
}

impl Engine {
    /// Creates an engine over the given RDL state.
    pub fn new(rdl: Rc<RdlState>) -> Engine {
        Engine {
            rdl,
            config: RefCell::new(Config::default()),
            state: RefCell::new(EngineState::default()),
            check_opts: CheckOptions::default(),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> Config {
        *self.config.borrow()
    }

    /// Replaces the configuration.
    pub fn set_config(&self, c: Config) {
        *self.config.borrow_mut() = c;
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> EngineStats {
        let st = self.state.borrow();
        let mut s = st.stats.clone();
        s.phases = st.phase.phases();
        s.cache_entries = st.cache.len();
        s
    }

    /// Clears statistics counters (not the cache).
    pub fn reset_stats(&self) {
        let mut st = self.state.borrow_mut();
        st.stats = EngineStats::default();
        st.phase = PhaseTracker::default();
    }

    /// Takes the log of static checks performed since the last call (used
    /// by the Table 2 update experiment).
    pub fn take_check_log(&self) -> Vec<CheckLogItem> {
        std::mem::take(&mut self.state.borrow_mut().stats.check_log)
    }

    /// Number of live cache entries.
    pub fn cache_len(&self) -> usize {
        self.state.borrow().cache.len()
    }

    /// A debug dump of every cached derivation with its dependency set,
    /// sorted by key — what the paper's cache 𝒳 currently holds and why
    /// each entry is still valid.
    pub fn cache_dump(&self) -> Vec<CacheDumpEntry> {
        let st = self.state.borrow();
        let mut out: Vec<CacheDumpEntry> = st
            .cache
            .iter()
            .map(|(key, e)| CacheDumpEntry {
                key: *key,
                method_entry_id: e.method_entry_id,
                sig_version: e.sig_version,
                deps: e.deps.iter().copied().collect(),
            })
            .collect();
        out.sort_by_key(|a| a.key);
        out
    }

    /// Drops the whole cache (tests / ablation).
    pub fn clear_cache(&self) {
        let mut st = self.state.borrow_mut();
        st.cache.clear();
        st.dependents.clear();
    }

    // ----- invalidation ------------------------------------------------------

    /// Processes pending interpreter and RDL events, performing
    /// Definition 1 invalidation.
    pub fn process_events(&self, interp: &mut Interp) {
        let ievents = interp.drain_events();
        let revents = self.rdl.drain_events();
        if ievents.is_empty() && revents.is_empty() {
            return;
        }
        let mut st = self.state.borrow_mut();
        for ev in ievents {
            st.phase.note_annotation(); // method creation happens in the
                                        // annotate/metaprogramming phase
            match ev {
                InterpEvent::MethodRedefined {
                    class,
                    name,
                    class_level,
                    old_id,
                    new_id,
                } => {
                    let unchanged = Self::redefinition_unchanged(
                        &st,
                        interp,
                        class,
                        &name,
                        class_level,
                        old_id,
                    );
                    if let Some(new_cfg) = unchanged {
                        // Same body: re-point cached derivations at the new
                        // entry id instead of invalidating (dev-mode reload
                        // CFG diffing, paper §4). Store the *freshly lowered*
                        // CFG under the new id — the shape is identical but
                        // its spans are current, so a later recheck blames
                        // post-reload source locations.
                        st.cfgs.insert(new_id, Rc::new(new_cfg));
                        for entry in st.cache.values_mut() {
                            if entry.method_entry_id == old_id {
                                entry.method_entry_id = new_id;
                            }
                        }
                    } else {
                        let key = MethodKey {
                            class: interp.registry.name_sym(class),
                            class_level,
                            method: Sym::intern(&name),
                        };
                        Self::invalidate(&mut st, &key, true);
                    }
                    // The retired entry id can never be dispatched again;
                    // dropping its CFG keeps long reload sessions bounded.
                    st.cfgs.remove(&old_id);
                }
                InterpEvent::MethodRemoved {
                    class,
                    name,
                    class_level,
                } => {
                    let key = MethodKey {
                        class: interp.registry.name_sym(class),
                        class_level,
                        method: Sym::intern(&name),
                    };
                    Self::invalidate(&mut st, &key, true);
                }
                InterpEvent::MethodAdded { .. } | InterpEvent::ModuleIncluded { .. } => {
                    // New methods have no cached derivations; conservative
                    // users may clear the cache on include, but includes in
                    // our apps precede first calls.
                }
            }
        }
        for ev in revents {
            st.phase.note_annotation();
            match ev {
                // Adding a new arm re-checks the method itself (version
                // mismatch at next hit) but leaves dependents valid —
                // the §4 "Cache Invalidation" intersection subtlety.
                RdlEvent::ArmAdded(key) => {
                    st.cache.remove(&key);
                }
                RdlEvent::TypeReplaced(key) => {
                    Self::invalidate(&mut st, &key, true);
                }
                RdlEvent::TypeAdded(_) => {}
            }
        }
    }

    /// If the redefinition is body-identical (per CFG shape), returns the
    /// freshly lowered CFG of the new body (same shape, current spans).
    fn redefinition_unchanged(
        st: &EngineState,
        interp: &Interp,
        class: ClassId,
        name: &str,
        class_level: bool,
        old_id: u64,
    ) -> Option<MethodCfg> {
        let old_cfg = st.cfgs.get(&old_id)?;
        let found = if class_level {
            interp.registry.find_smethod(class, name)
        } else {
            interp.registry.find_method(class, name)
        };
        let (_, entry) = found?;
        let new_cfg = lower_entry(&entry)?;
        if new_cfg.same_shape(old_cfg) {
            Some(new_cfg)
        } else {
            None
        }
    }

    /// Removes a cache entry and (optionally) every entry that depends on
    /// it — Definition 1.
    fn invalidate(st: &mut EngineState, key: &MethodKey, with_dependents: bool) {
        st.cache.remove(key);
        st.stats.invalidations += 1;
        if with_dependents {
            if let Some(deps) = st.dependents.remove(key) {
                for d in deps {
                    if st.cache.remove(&d).is_some() {
                        st.stats.dependent_invalidations += 1;
                    }
                }
            }
        }
    }

    // ----- the just-in-time check ---------------------------------------------

    fn ensure_checked(
        &self,
        interp: &mut Interp,
        info: &DispatchInfo,
        cache_key: &MethodKey,
        annotation_key: &MethodKey,
        table_entry: &TableEntry,
    ) -> Result<(), HbError> {
        let caching = self.config.borrow().caching;
        {
            let st = self.state.borrow();
            if caching {
                if let Some(c) = st.cache.get(cache_key) {
                    if c.method_entry_id == info.entry.id && c.sig_version == table_entry.version {
                        drop(st);
                        self.state.borrow_mut().stats.cache_hits += 1;
                        return Ok(());
                    }
                }
            }
        }
        // Miss: lower (or fetch) the body CFG and statically check it.
        let cfg = {
            let st = self.state.borrow();
            st.cfgs.get(&info.entry.id).cloned()
        };
        let cfg = match cfg {
            Some(c) => c,
            None => {
                let lowered = lower_entry(&info.entry).ok_or_else(|| {
                    HbError::new(
                        ErrorKind::Internal,
                        format!("cannot lower body of {}", cache_key.display()),
                        info.span,
                    )
                })?;
                let rc = Rc::new(lowered);
                self.state
                    .borrow_mut()
                    .cfgs
                    .insert(info.entry.id, rc.clone());
                rc
            }
        };
        // Captured locals of define_method procs are typed from their
        // runtime values — the just-in-time analogue of Fig. 2.
        let captured: Option<TypeEnv> = match &info.entry.body {
            MethodBody::FromProc(p) => {
                let env: TypeEnv = p
                    .env
                    .collect_bindings()
                    .into_iter()
                    .map(|(k, v)| (k, type_of(interp, &v)))
                    .collect();
                Some(env)
            }
            _ => None,
        };
        let reg_info = RegistryInfo(&interp.registry);
        let outcome = check_sig(
            &cfg,
            cache_key.class.as_str(),
            cache_key.class_level,
            &table_entry.sig,
            &reg_info,
            &self.rdl,
            captured.as_ref(),
            &self.check_opts,
        )
        .map_err(|e| {
            HbError::new(
                ErrorKind::TypeBlame,
                format!(
                    "type error in {} (checked at call): {}",
                    cache_key.display(),
                    e.message
                ),
                if e.span == hb_syntax::Span::dummy() {
                    info.span
                } else {
                    e.span
                },
            )
        })?;
        // The signature itself is "used during type checking" (Table 1's
        // Used column counts generated annotations consulted either as a
        // callee type or as the checked method's own signature).
        self.rdl.mark_used(annotation_key);
        let mut st = self.state.borrow_mut();
        st.stats.checks_performed += 1;
        st.stats.check_log.push(CheckLogItem { key: *cache_key });
        st.stats.checked_methods.insert(cache_key.display());
        st.stats
            .cast_sites
            .extend(outcome.cast_sites.iter().copied());
        st.phase.note_check();
        if caching {
            for dep in &outcome.deps {
                st.dependents.entry(*dep).or_default().insert(*cache_key);
            }
            st.cache.insert(
                *cache_key,
                CacheEntry {
                    method_entry_id: info.entry.id,
                    sig_version: table_entry.version,
                    deps: outcome.deps,
                },
            );
        }
        Ok(())
    }

    fn dynamic_arg_check(
        &self,
        interp: &Interp,
        info: &DispatchInfo,
        entry: &TableEntry,
        args: &[Value],
        key: &MethodKey,
    ) -> Result<(), HbError> {
        self.state.borrow_mut().stats.dyn_arg_checks += 1;
        self.rdl.inner.borrow_mut().dyn_checks_run += 1;
        let mut arity_ok = false;
        for arm in &entry.sig.arms {
            if !arm.accepts_arity(args.len()) {
                continue;
            }
            arity_ok = true;
            let all = args.iter().enumerate().all(|(i, a)| match arm.param_at(i) {
                Some(pt) => value_conforms(interp, a, &pt.erase_vars()),
                None => false,
            });
            if all {
                return Ok(());
            }
        }
        let got: Vec<String> = args.iter().map(|a| interp.class_name_of(a)).collect();
        Err(HbError::new(
            ErrorKind::ContractBlame,
            if arity_ok {
                format!(
                    "dynamic type check failed calling {}: arguments ({}) do not match {}",
                    key.display(),
                    got.join(", "),
                    entry.sig
                )
            } else {
                format!(
                    "dynamic type check failed calling {}: wrong number of arguments ({})",
                    key.display(),
                    args.len()
                )
            },
            info.span,
        ))
    }
}

/// Lowers a checkable method entry to a CFG.
fn lower_entry(entry: &hb_interp::MethodEntry) -> Option<MethodCfg> {
    match &entry.body {
        MethodBody::Ast(def) => Some(lower_method(def)),
        MethodBody::FromProc(p) => Some(lower_block_body(&p.params, &p.body, p.span)),
        MethodBody::Builtin(_) => None,
    }
}

impl CallHook for Engine {
    fn before_call(
        &self,
        interp: &mut Interp,
        info: &DispatchInfo,
        _recv: &Value,
        args: &[Value],
    ) -> Result<HookOutcome, HbError> {
        if !self.config.borrow().enabled {
            return Ok(HookOutcome::default());
        }
        self.process_events(interp);
        self.state.borrow_mut().stats.intercepted_calls += 1;

        // Resolve the annotation along the receiver class's ancestors, the
        // same path dispatch used — interned symbols over the memoised
        // chain, so the steady-state lookup allocates nothing.
        let found = self.rdl.lookup_along(
            interp
                .registry
                .ancestor_syms(info.recv_class)
                .map(|(_, sym)| sym),
            info.class_level,
            info.name,
        );
        let Some((annotation_key, table_entry)) = found else {
            return Ok(HookOutcome::default());
        };

        // The cache key is the *receiver's* class (module methods cache per
        // mix-in class, paper §4 "Modules").
        let cache_key = MethodKey {
            class: interp.registry.name_sym(info.recv_class),
            class_level: info.class_level,
            method: info.name,
        };

        // Dynamic argument checks: only from unchecked callers, unless the
        // method is flagged always-check (the Rails params exception).
        let cfg = self.config.borrow();
        let need_dyn = cfg.dyn_arg_checks
            && (!interp.current_caller_checked() || table_entry.always_dyn_check);
        drop(cfg);
        if need_dyn {
            self.dynamic_arg_check(interp, info, &table_entry, args, &cache_key)?;
        }

        if table_entry.check {
            self.ensure_checked(interp, info, &cache_key, &annotation_key, &table_entry)?;
            return Ok(HookOutcome { mark_checked: true });
        }
        Ok(HookOutcome::default())
    }
}
