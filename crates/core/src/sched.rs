//! Engine-side glue for the concurrent check scheduler (`hb-sched`).
//!
//! The scheduler's [`WorldSnapshot`] is an owned, `Send` capture of the
//! checker-visible world; this module is where that capture is taken —
//! on the interpreter thread, against the live registry and `RdlState` —
//! and where the diagnostic ordering shared by the serial and parallel
//! `check_all` paths lives.

use hb_rdl::RdlState;
use hb_sched::WorldSnapshot;
use hb_syntax::TypeDiagnostic;
use std::collections::HashMap;

/// Captures the checker-visible world: every registered class's ancestor
/// chain (exactly the chains [`crate::RegistryInfo`] serves), the full
/// annotation table, ivar/cvar/gvar declarations, and the capture-time
/// epoch fingerprints `(table_fp, hierarchy_fp, var_fp)`.
///
/// The capture is O(classes + annotations); the engine memoises the
/// resulting `Arc` per epoch triple, so a burst of task extractions at a
/// quiescent table pays for one capture.
pub fn capture_world(interp: &hb_interp::Interp, rdl: &RdlState) -> WorldSnapshot {
    let registry = &interp.registry;
    let mut chains: HashMap<String, Vec<String>> = HashMap::new();
    for i in 0..registry.class_count() as u32 {
        let cid = hb_interp::ClassId(i);
        let mut names: Vec<String> = registry
            .ancestors(cid)
            .into_iter()
            .map(|c| registry.name(c).to_string())
            .collect();
        if names.last().map(String::as_str) != Some("Object") {
            names.push("Object".to_string());
        }
        chains.insert(registry.name(cid).to_string(), names);
    }
    let table = rdl
        .entries()
        .into_iter()
        .map(|(k, e)| (k, (*e).clone()))
        .collect();
    let ivars = rdl.ivar_decls().into_iter().collect();
    let cvars = rdl.cvar_decls().into_iter().collect();
    let gvars = rdl.gvar_decls().into_iter().collect();
    let epochs = (
        rdl.table_fingerprint(),
        registry.shape_fingerprint(),
        rdl.var_fingerprint(),
    );
    WorldSnapshot::new(chains, table, ivars, cvars, gvars, epochs)
}

/// Sorts diagnostics into the stable reporting order shared by serial and
/// parallel whole-program checking: `(file, span, code)`, with message as
/// a final tiebreaker. Golden tests and `hb_lint --json` byte-compare
/// against this order, so it must not depend on worker interleaving or
/// hash-map iteration order.
pub fn sort_diagnostics(diags: &mut [TypeDiagnostic]) {
    diags.sort_by(|a, b| {
        (a.span.file.0, a.span.lo, a.span.hi, a.code)
            .cmp(&(b.span.file.0, b.span.lo, b.span.hi, b.code))
            .then_with(|| a.message.cmp(&b.message))
    });
}
