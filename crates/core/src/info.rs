//! Adapter exposing the live interpreter class registry to the checker.

use hb_check::ClassInfo;
use hb_interp::ClassRegistry;

/// Borrows the interpreter's class registry as checker [`ClassInfo`].
pub struct RegistryInfo<'a>(pub &'a ClassRegistry);

impl ClassInfo for RegistryInfo<'_> {
    fn ancestors(&self, class: &str) -> Vec<String> {
        match self.0.lookup(class) {
            Some(id) => {
                let mut names: Vec<String> = self
                    .0
                    .ancestors(id)
                    .into_iter()
                    .map(|c| self.0.name(c).to_string())
                    .collect();
                if names.last().map(String::as_str) != Some("Object") {
                    names.push("Object".to_string());
                }
                names
            }
            None => vec![class.to_string(), "Object".to_string()],
        }
    }

    fn is_descendant(&self, sub: &str, sup: &str) -> bool {
        self.0.is_descendant_name(sub, sup)
    }

    fn class_exists(&self, name: &str) -> bool {
        self.0.lookup(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_interp::Interp;

    #[test]
    fn live_registry_ancestors() {
        let mut i = Interp::new();
        i.eval_str("module M\nend\nclass A\n include M\nend\nclass B < A\nend")
            .unwrap();
        let info = RegistryInfo(&i.registry);
        let names = info.ancestors("B");
        assert_eq!(names, vec!["B", "A", "M", "Object"]);
        assert!(info.is_descendant("B", "M"));
        assert!(info.class_exists("A"));
        assert!(!info.class_exists("Zzz"));
        // Unknown classes degrade gracefully.
        assert_eq!(info.ancestors("Zzz"), vec!["Zzz", "Object"]);
    }

    #[test]
    fn numeric_tower_via_registry() {
        let i = Interp::new();
        let info = RegistryInfo(&i.registry);
        assert!(info.is_descendant("Fixnum", "Numeric"));
        assert!(info.is_descendant("Float", "Numeric"));
        assert!(!info.is_descendant("Float", "Integer"));
    }
}
