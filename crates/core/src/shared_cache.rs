//! The process-wide shared derivation tier.
//!
//! The paper's cache 𝒳 memoises per-method derivations inside one engine.
//! In a multi-tenant deployment — N interpreter instances serving the same
//! application on different threads — every tenant would redundantly
//! re-derive the same judgements at boot. This module is the second tier:
//! an `Arc`-held, sharded, thread-safe map that records *which facts a
//! derivation depended on*, so any tenant whose type table proves the same
//! facts can adopt the derivation without running the checker.
//!
//! A shared entry is keyed by `(MethodKey, method_entry_id, sig_version,
//! body_fingerprint)` and carries the (TApp) dependency set *with the
//! signature version and content fingerprint each dependency had at check
//! time*. A tenant hitting the shared tier re-validates its own signature
//! and every dependency against its own table before adopting —
//! Definition 1's validity conditions, checked structurally instead of by
//! re-derivation. Entry ids and versions are deterministic load-order
//! counters (identical tenants agree on them); the body and signature
//! *fingerprints* are what keep adoption sound when tenants run different
//! codebases whose counters happen to coincide. Tenants built from
//! identical sources validate and adopt without ever calling `check_sig`.
//!
//! Invalidation fans out from every tenant: signature replacements and
//! method redefinitions evict the affected entry family (all cached
//! versions of the method) plus — per Definition 1(2) — the families of
//! entries whose dependency sets mention the changed key. Version
//! validation at adoption time makes eviction a memory/latency
//! optimisation rather than a soundness requirement, which is what lets
//! the tiers stay loosely coupled.

use hb_rdl::{MethodKey, RdlEvent, RdlEventSink, Resolution};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// One dependency of a shared derivation: a (TApp) resolution witness plus
/// — when the lookup found an annotation — the signature version and
/// content fingerprint it had when the derivation was built. A consumer
/// *replays* the witness against its own table and hierarchy: the lookup
/// must resolve to the same key (shadowing anywhere along the chain
/// changes the answer and rejects adoption) and that key's signature must
/// still match by version *and* content. Version numbers are per-tenant
/// load-order counters, so two tenants running different code can collide
/// on a version; the content fingerprint is what makes adoption sound
/// across arbitrary tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedDep {
    pub resolution: Resolution,
    /// Version of the target's entry at check time (0 when `target` is
    /// `None` — a negative witness has no entry).
    pub sig_version: u64,
    /// Content fingerprint of the target's signature at check time.
    pub sig_fingerprint: u64,
}

/// A shared derivation: everything a foreign tenant needs to decide the
/// derivation is valid for *its* table.
#[derive(Debug, Clone)]
pub struct SharedDerivation {
    /// Content fingerprint of the checked method's own signature, compared
    /// against the adopting tenant's entry in addition to the version.
    pub own_sig_fingerprint: u64,
    /// The publisher's rolling type-table fingerprint at check time. A
    /// consumer whose own table fingerprint equals this has performed the
    /// *identical* mutation sequence — every dependency (including ivar/
    /// cvar/gvar types, which witnesses don't cover) is trivially
    /// satisfied, so adoption is O(1). The common case for fleets of
    /// identical tenants.
    pub table_fp: u64,
    /// The publisher's class-hierarchy shape fingerprint at check time.
    /// Subtyping judgements read the hierarchy without recording per-use
    /// witnesses, so — like `var_fp` — the witness-replay path requires
    /// this to match exactly; witnesses only cover (TApp) resolutions.
    pub hier_fp: u64,
    /// The publisher's variable-type (ivar/cvar/gvar) fingerprint at
    /// check time. Derivations read variable types without recording
    /// per-variable witnesses, so the witness-replay path requires this
    /// to match exactly; the epoch fast path subsumes it (`table_fp`
    /// folds every variable registration too).
    pub var_fp: u64,
    /// Dependency witnesses with their at-check signature versions and
    /// contents — replayed one by one when the epoch fast path misses.
    pub deps: Arc<[SharedDep]>,
    /// The derivation's `rdl_cast` sites as `(file, lo, hi)` span
    /// triples: facts about the checked body, replicated on adoption so
    /// warm tenants report the Casts statistic identically to cold ones.
    /// (Adoption implies identical body text; file ids can only differ
    /// between tenants whose load orders diverge, which at worst
    /// double-counts a statistic, never affects soundness.)
    pub cast_sites: Arc<[(u32, u32, u32)]>,
}

/// Versioned sub-key: the method-table entry id the body was lowered from,
/// the signature version it was checked against, and the body fingerprint
/// (`engine::body_fingerprint`: source content hash + definition span +
/// captured-environment types) — the last guards against entry-id/version
/// counter coincidences between tenants running *different* codebases.
type VersionKey = (u64, u64, u64);

#[derive(Default)]
struct Shard {
    /// Method → (entry id, sig version) → derivation. The outer key groups
    /// an entry *family* so eviction of a method drops every cached
    /// version in one probe.
    entries: HashMap<MethodKey, HashMap<VersionKey, SharedDerivation>>,
    /// dep (annotation key) → methods whose shared derivations used it.
    dependents: HashMap<MethodKey, HashSet<MethodKey>>,
}

/// Aggregate counters (monotonic, relaxed; feeds `tenant_probe`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    /// Snapshots loaded from the legacy (pre-checksum) `HBSNAP01` layout
    /// — the "old artifact, no integrity check" warning counter.
    pub legacy_loads: u64,
}

/// Observer of tier mutations, called *after* the shard lock is released.
/// The fleet client hangs its publication tracking here: every insert is
/// a candidate for publish-back to the daemon, every family eviction a
/// candidate eviction notice. Hooks must be cheap and must not re-enter
/// the tier (they run on whatever tenant thread performed the mutation).
pub trait CacheEventHook: Send + Sync {
    /// A derivation for `key` was published into the tier.
    fn on_insert(&self, _key: &MethodKey) {}
    /// The entry family for `key` was evicted (at least one derivation
    /// dropped).
    fn on_evict(&self, _key: &MethodKey) {}
}

/// The shared tier. Cheap to clone behind `Arc`; every method takes
/// `&self` and is safe from any thread.
pub struct SharedCache {
    shards: Box<[RwLock<Shard>]>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    legacy_loads: AtomicU64,
    hooks: RwLock<Vec<Arc<dyn CacheEventHook>>>,
}

impl Default for SharedCache {
    fn default() -> SharedCache {
        SharedCache::with_shards(16)
    }
}

impl SharedCache {
    /// A shared tier with the default shard count.
    pub fn new() -> SharedCache {
        SharedCache::default()
    }

    /// A shared tier sharded `n` ways (`n` is rounded up to at least 1).
    pub fn with_shards(n: usize) -> SharedCache {
        let n = n.max(1);
        SharedCache {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            legacy_loads: AtomicU64::new(0),
            hooks: RwLock::new(Vec::new()),
        }
    }

    /// Registers a mutation observer (see [`CacheEventHook`]). Hooks are
    /// append-only for the tier's lifetime; each fleet-attached tenant
    /// registers its own tracker.
    pub fn add_event_hook(&self, hook: Arc<dyn CacheEventHook>) {
        self.hooks
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .push(hook);
    }

    /// Snapshot of the registered hooks (cloned out so no hook runs under
    /// the registry lock).
    fn hooks(&self) -> Vec<Arc<dyn CacheEventHook>> {
        self.hooks.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Shard by method key only, so an entry family and its eviction path
    /// always land in a single shard.
    fn shard_of(&self, key: &MethodKey) -> &RwLock<Shard> {
        &self.shards[(self.hasher.hash_one(key) as usize) % self.shards.len()]
    }

    // ----- poison recovery ---------------------------------------------------
    //
    // The tier is shared by every tenant thread in the process; a tenant
    // panicking while it holds a shard lock (a publisher dying mid-insert,
    // an app thread unwinding through an eviction) poisons that shard.
    // Propagating the poison — the old `.unwrap()` behaviour — would turn
    // one crashed tenant into a fleet-wide brick: every later adopter
    // panics on its first probe of the shard. Instead a poisoned shard is
    // *recovered* by clearing it: the interrupted mutation may have left
    // the shard logically half-applied (entry present, edges missing), and
    // eviction is always sound, so dropping the shard's derivations maps
    // the damage to a clean miss. Other tenants re-derive and republish.

    /// Clears and un-poisons a poisoned shard, counting the dropped
    /// derivations as evictions.
    fn recover_poisoned(&self, lock: &RwLock<Shard>) {
        let mut shard = match lock.write() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        let dropped: usize = shard.entries.values().map(|family| family.len()).sum();
        shard.entries.clear();
        shard.dependents.clear();
        lock.clear_poison();
        if dropped > 0 {
            self.evictions.fetch_add(dropped as u64, Ordering::Relaxed);
        }
    }

    /// Read-locks a shard, recovering it first if poisoned. A panic
    /// between the poison test and the acquisition still yields a guard
    /// (`into_inner`); the half-applied state behind it is memory-safe
    /// and at worst stale for this one operation — the next acquisition
    /// recovers it.
    fn shard_read<'a>(&self, lock: &'a RwLock<Shard>) -> RwLockReadGuard<'a, Shard> {
        if lock.is_poisoned() {
            self.recover_poisoned(lock);
        }
        lock.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Write-locks a shard, recovering it first if poisoned.
    fn shard_write<'a>(&self, lock: &'a RwLock<Shard>) -> RwLockWriteGuard<'a, Shard> {
        if lock.is_poisoned() {
            self.recover_poisoned(lock);
        }
        lock.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a derivation for `(key, method_entry_id, sig_version,
    /// body_fingerprint)`. The caller still must validate the returned
    /// signature fingerprints against its own type table before adopting.
    pub fn lookup(
        &self,
        key: &MethodKey,
        method_entry_id: u64,
        sig_version: u64,
        body_fingerprint: u64,
    ) -> Option<SharedDerivation> {
        let shard = self.shard_read(self.shard_of(key));
        let found = shard
            .entries
            .get(key)
            .and_then(|family| family.get(&(method_entry_id, sig_version, body_fingerprint)))
            .cloned();
        drop(shard);
        match found {
            Some(d) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(d)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// True when the exact `(key, entry id, sig version, body
    /// fingerprint)` derivation is present. Unlike [`SharedCache::lookup`]
    /// this is a pure probe: no clone, no hit/miss accounting — the fleet
    /// daemon's publish-dedup path, which must not skew adoption stats.
    pub fn contains(
        &self,
        key: &MethodKey,
        method_entry_id: u64,
        sig_version: u64,
        body_fingerprint: u64,
    ) -> bool {
        let shard = self.shard_read(self.shard_of(key));
        shard.entries.get(key).is_some_and(|family| {
            family.contains_key(&(method_entry_id, sig_version, body_fingerprint))
        })
    }

    /// Publishes a derivation and registers its dependency edges.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        key: MethodKey,
        method_entry_id: u64,
        sig_version: u64,
        body_fingerprint: u64,
        own_sig_fingerprint: u64,
        epochs: (u64, u64, u64),
        deps: Vec<SharedDep>,
        cast_sites: Vec<(u32, u32, u32)>,
    ) {
        let deps: Arc<[SharedDep]> = deps.into();
        {
            let mut shard = self.shard_write(self.shard_of(&key));
            shard.entries.entry(key).or_default().insert(
                (method_entry_id, sig_version, body_fingerprint),
                SharedDerivation {
                    own_sig_fingerprint,
                    table_fp: epochs.0,
                    hier_fp: epochs.1,
                    var_fp: epochs.2,
                    deps: deps.clone(),
                    cast_sites: cast_sites.into(),
                },
            );
        }
        for dep in deps.iter() {
            // Negative witnesses have no entry to hang an eviction edge on;
            // replay-validation alone guards them.
            if let Some(target) = dep.resolution.target {
                let mut shard = self.shard_write(self.shard_of(&target));
                shard.dependents.entry(target).or_default().insert(key);
            }
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        for hook in self.hooks() {
            hook.on_insert(&key);
        }
    }

    /// Evicts every cached version of `key` (the entry family), pruning
    /// the family's reverse-dependency edges so retired derivations can't
    /// trigger spurious fleet-wide evictions later and the edge map stays
    /// bounded across reload sessions (the shared-tier analogue of the
    /// engine's `unlink`). Returns the number of derivations dropped.
    pub fn evict_method(&self, key: &MethodKey) -> usize {
        let family = {
            let mut shard = self.shard_write(self.shard_of(key));
            shard.entries.remove(key)
        };
        let Some(family) = family else { return 0 };
        // Collect dep targets outside any lock (edge shards differ from
        // the entry shard; never hold two shard locks at once — the entry
        // shard's lock is already released, so a self-recursive method's
        // own edge prunes like any other).
        let targets: HashSet<MethodKey> = family
            .values()
            .flat_map(|d| d.deps.iter().filter_map(|dep| dep.resolution.target))
            .collect();
        for t in targets {
            let mut shard = self.shard_write(self.shard_of(&t));
            if let Some(set) = shard.dependents.get_mut(&t) {
                set.remove(key);
                if set.is_empty() {
                    shard.dependents.remove(&t);
                }
            }
        }
        self.evictions
            .fetch_add(family.len() as u64, Ordering::Relaxed);
        for hook in self.hooks() {
            hook.on_evict(key);
        }
        family.len()
    }

    /// The methods whose shared derivations currently depend on `key`
    /// (the direct reverse-dependency set [`SharedCache::evict_dependents`]
    /// would fan out to). The fleet daemon reads this before applying an
    /// eviction notice so every family it drops gets its own tombstone.
    pub fn dependents_of(&self, key: &MethodKey) -> Vec<MethodKey> {
        let shard = self.shard_read(self.shard_of(key));
        shard
            .dependents
            .get(key)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Evicts the families of every method whose shared derivation
    /// depended on `key` — Definition 1(2) across tenants. Returns the
    /// number of derivations dropped.
    pub fn evict_dependents(&self, key: &MethodKey) -> usize {
        let dependents = {
            let mut shard = self.shard_write(self.shard_of(key));
            shard.dependents.remove(key)
        };
        let mut removed = 0;
        if let Some(methods) = dependents {
            for m in methods {
                removed += self.evict_method(&m);
            }
        }
        removed
    }

    /// [`SharedCache::evict_method`] plus [`SharedCache::evict_dependents`]
    /// — the full Definition 1 fan-out for a replaced signature or
    /// redefined method.
    pub fn evict_with_dependents(&self, key: &MethodKey) -> usize {
        self.evict_method(key) + self.evict_dependents(key)
    }

    /// Number of live derivations (sums entry families across shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                self.shard_read(s)
                    .entries
                    .values()
                    .map(|family| family.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// True when no derivations are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live reverse-dependency edges (diagnostic: eviction
    /// keeps this bounded by the live entries' dependency sets).
    pub fn edge_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                self.shard_read(s)
                    .dependents
                    .values()
                    .map(|set| set.len())
                    .sum::<usize>()
            })
            .sum()
    }

    // ----- snapshots ---------------------------------------------------------

    /// Every live derivation as `(key, (entry_id, sig_version, body_fp),
    /// derivation)`, in deterministic key order (snapshot support).
    pub(crate) fn iter_derivations(&self) -> Vec<(MethodKey, VersionKey, SharedDerivation)> {
        let mut out: Vec<(MethodKey, VersionKey, SharedDerivation)> = Vec::new();
        for lock in self.shards.iter() {
            let shard = self.shard_read(lock);
            for (key, family) in &shard.entries {
                for (version, d) in family {
                    out.push((*key, *version, d.clone()));
                }
            }
        }
        out.sort_by_key(|(key, version, _)| (*key, *version));
        out
    }

    /// Serializes the tier into a portable [`crate::snapshot::CacheSnapshot`]
    /// (see [`crate::snapshot`] for the lifecycle and soundness story).
    pub fn snapshot(&self) -> crate::snapshot::CacheSnapshot {
        crate::snapshot::snapshot_of(self)
    }

    /// [`SharedCache::snapshot`] restricted to methods `keep` accepts —
    /// the delta encoder: the fleet daemon serializes only entries past a
    /// client's watermark; a fleet client serializes only its pending
    /// publications.
    pub fn snapshot_filtered(
        &self,
        keep: impl Fn(&MethodKey) -> bool,
    ) -> crate::snapshot::CacheSnapshot {
        crate::snapshot::snapshot_of_filtered(self, &keep)
    }

    /// Loads a snapshot's derivations into this tier, re-interning its
    /// symbol dictionary in this process. Returns the number of
    /// derivations loaded. Loaded entries are *candidates*: every adoption
    /// still passes the normal epoch/witness-replay validation, so a stale
    /// or divergent snapshot degrades to re-checking, never to unsound
    /// adoption.
    ///
    /// # Errors
    ///
    /// [`crate::snapshot::SnapshotError::BadSymbol`] when an entry
    /// references a symbol id outside the snapshot's dictionary (a
    /// malformed artifact). Validation happens before anything is
    /// inserted, so on `Err` the tier is untouched.
    pub fn load_snapshot(
        &self,
        snap: &crate::snapshot::CacheSnapshot,
    ) -> Result<usize, crate::snapshot::SnapshotError> {
        let loaded = crate::snapshot::load_into(self, snap)?;
        if snap.is_legacy() {
            // Counted, not refused: the entries are still candidates that
            // adoption validates, but the artifact had no integrity
            // checksum and operators should know one flowed in.
            self.legacy_loads.fetch_add(1, Ordering::Relaxed);
            hb_obs::hb_warn!(
                "hummingbird: loaded legacy HBSNAP01 snapshot ({} entries, no checksum)",
                loaded
            );
        }
        Ok(loaded)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            legacy_loads: self.legacy_loads.load(Ordering::Relaxed),
        }
    }
}

/// The eviction fan-out sink wired into each tenant's `RdlState` (see
/// `hb_rdl::RdlEventSink`): a tenant's type-table mutations evict the
/// affected shared entries immediately, on the mutating tenant's thread,
/// so other tenants stop adopting derivations checked against signatures
/// that no longer exist anywhere.
pub struct SharedEvictionSink {
    pub shared: Arc<SharedCache>,
}

impl RdlEventSink for SharedEvictionSink {
    fn on_rdl_event(&self, ev: &RdlEvent) {
        match ev {
            // Replacement invalidates the method and everything that
            // consulted its signature (Definition 1).
            RdlEvent::TypeReplaced(k) => {
                self.shared.evict_with_dependents(k);
            }
            // A new arm re-checks the method itself but leaves dependents
            // valid — the §4 "Cache Invalidation" intersection subtlety.
            RdlEvent::ArmAdded(k) => {
                self.shared.evict_method(k);
            }
            // Shadow-driven invalidation needs the class hierarchy, which
            // lives in the interpreter; the engine handles TypeAdded in
            // `process_events`.
            RdlEvent::TypeAdded(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(c: &str, m: &str) -> MethodKey {
        MethodKey::instance(c, m)
    }

    fn dep(c: &str, m: &str, v: u64) -> SharedDep {
        SharedDep {
            resolution: Resolution::of(c, false, m, Some(k(c, m))),
            sig_version: v,
            sig_fingerprint: 0xF00D,
        }
    }

    #[test]
    fn insert_lookup_and_version_mismatch() {
        let c = SharedCache::new();
        let key = k("Talk", "owner?");
        c.insert(
            key,
            7,
            3,
            0xB0D7,
            0x5167,
            (1, 1, 1),
            vec![dep("User", "name", 2)],
            vec![],
        );
        let d = c.lookup(&key, 7, 3, 0xB0D7).expect("exact version hits");
        assert_eq!(d.deps.as_ref(), &[dep("User", "name", 2)]);
        assert!(
            c.lookup(&key, 7, 4, 0xB0D7).is_none(),
            "sig version mismatch"
        );
        assert!(c.lookup(&key, 8, 3, 0xB0D7).is_none(), "entry id mismatch");
        assert!(
            c.lookup(&key, 7, 3, 0xDEAD).is_none(),
            "body fingerprint mismatch: same counters, different code"
        );
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 3, 1));
    }

    #[test]
    fn eviction_drops_family_and_dependents() {
        let c = SharedCache::new();
        let caller = k("Talk", "owner?");
        let other = k("Talk", "title");
        c.insert(
            caller,
            1,
            1,
            1,
            1,
            (1, 1, 1),
            vec![dep("User", "name", 1)],
            vec![],
        );
        c.insert(
            caller,
            2,
            2,
            1,
            1,
            (1, 1, 1),
            vec![dep("User", "name", 1)],
            vec![],
        ); // second family version
        c.insert(other, 3, 1, 1, 1, (1, 1, 1), vec![], vec![]);
        assert_eq!(c.len(), 3);
        assert_eq!(
            c.evict_with_dependents(&k("User", "name")),
            2,
            "both caller versions"
        );
        assert_eq!(c.len(), 1, "unrelated entry survives");
        assert!(c.lookup(&other, 3, 1, 1).is_some());
    }

    #[test]
    fn self_recursive_eviction_prunes_own_edge() {
        let c = SharedCache::new();
        let key = k("Talk", "visit");
        c.insert(
            key,
            1,
            1,
            1,
            1,
            (1, 1, 1),
            vec![dep("Talk", "visit", 1)],
            vec![],
        );
        assert_eq!(c.edge_count(), 1);
        assert_eq!(c.evict_method(&key), 1);
        assert_eq!(c.edge_count(), 0, "self edge pruned like any other");
    }

    #[test]
    fn shared_cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedCache>();
        assert_send_sync::<Arc<SharedCache>>();
    }

    /// A tenant thread panicking while it holds a shard lock (a publisher
    /// dying mid-insert) must not brick every other tenant's adoption
    /// path: the poisoned shard recovers as a clean miss + eviction.
    #[test]
    fn poisoned_shard_recovers_instead_of_bricking_adopters() {
        let c = Arc::new(SharedCache::with_shards(1));
        let key = k("Talk", "owner?");
        c.insert(
            key,
            1,
            1,
            1,
            1,
            (1, 1, 1),
            vec![dep("User", "name", 1)],
            vec![],
        );
        assert!(c.lookup(&key, 1, 1, 1).is_some());

        // Poison the (only) shard: a thread panics while holding the
        // write lock, exactly like a publisher dying mid-mutation.
        let c2 = c.clone();
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the test output quiet
        let joined = std::thread::spawn(move || {
            let _guard = c2.shards[0].write().unwrap();
            panic!("publisher dies while holding the shard lock");
        })
        .join();
        std::panic::set_hook(prev_hook);
        assert!(joined.is_err(), "the publisher thread must have panicked");
        assert!(c.shards[0].is_poisoned(), "the shard is poisoned");

        // Adopters are not bricked: the poisoned shard recovers by
        // clearing (its possibly half-applied state becomes a clean miss,
        // counted as evictions) and keeps serving.
        assert!(
            c.lookup(&key, 1, 1, 1).is_none(),
            "recovered shard serves a clean miss, not a panic"
        );
        assert_eq!(c.stats().evictions, 1, "dropped derivations are counted");
        assert!(!c.shards[0].is_poisoned(), "poison is cleared");

        // The tier keeps working end to end: publish again, adopt again.
        c.insert(
            key,
            1,
            1,
            1,
            1,
            (1, 1, 1),
            vec![dep("User", "name", 1)],
            vec![],
        );
        assert!(c.lookup(&key, 1, 1, 1).is_some());
        assert_eq!(c.evict_with_dependents(&k("User", "name")), 1);
    }
}
