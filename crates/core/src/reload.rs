//! Development-mode live reloading (paper §4 "Cache Invalidation" and the
//! §5 "Updates to Talks" experiment).
//!
//! Reloading a file re-evaluates it: classes re-open and `def` overwrites
//! method bodies. The engine diffs old and new CFGs so *unchanged* methods
//! keep their cached derivations; changed methods invalidate themselves and
//! their dependents; removed methods invalidate dependents.

use hb_il::{collect_method_defs, lower_method};
use hb_syntax::parser::parse_in;

/// What a reload changed (feeds Table 2's columns).
#[derive(Debug, Clone, Default)]
pub struct ReloadReport {
    /// Methods whose bodies changed (`Δ Meth`).
    pub changed: Vec<String>,
    /// Newly added methods (`Added`).
    pub added: Vec<String>,
    /// Methods removed by the new version.
    pub removed: Vec<String>,
    /// Dependent cache entries invalidated by this reload (`Deps` counts
    /// dependent *methods*; one cache entry per method key).
    pub dependents_invalidated: u64,
}

/// A method signature as tracked per file: `(owner, class_level, name)`.
pub type FileMethod = (String, bool, String);

impl crate::Hummingbird {
    /// Applies a live update of `name` to the new `src`, Rails-dev-mode
    /// style, and reports what changed.
    ///
    /// # Errors
    ///
    /// Parse errors and runtime errors raised while re-evaluating the file.
    pub fn reload_file(
        &mut self,
        name: &str,
        src: &str,
    ) -> Result<ReloadReport, hb_interp::HbError> {
        let program = parse_in(&mut self.interp.source_map, name, src).map_err(|e| {
            hb_interp::HbError::new(
                hb_interp::ErrorKind::Internal,
                e.render(&self.interp.source_map),
                e.span,
            )
        })?;
        let defs = collect_method_defs(&program);
        let mut report = ReloadReport::default();
        let mut new_set: Vec<FileMethod> = Vec::new();

        for d in &defs {
            new_set.push((d.owner.clone(), d.self_method, d.name.clone()));
            let display = format!(
                "{}{}{}",
                d.owner,
                if d.self_method { "." } else { "#" },
                d.name
            );
            let existing = self.interp.registry.lookup(&d.owner).and_then(|cid| {
                if d.self_method {
                    self.interp.registry.find_smethod(cid, &d.name)
                } else {
                    self.interp.registry.find_method(cid, &d.name)
                }
            });
            match existing {
                None => report.added.push(display),
                Some((_, entry)) => match &entry.body {
                    hb_interp::MethodBody::Ast(old_def) => {
                        let old_cfg = lower_method(old_def);
                        let new_cfg = lower_method(&d.def);
                        if !old_cfg.same_shape(&new_cfg) {
                            report.changed.push(display);
                        }
                    }
                    _ => report.changed.push(display),
                },
            }
        }

        // Methods present in the previous version of this file but not the
        // new one are removed (invalidating their dependents).
        if let Some(old_set) = self.file_methods.get(name).cloned() {
            for (owner, class_level, mname) in old_set {
                let still = new_set
                    .iter()
                    .any(|(o, l, n)| o == &owner && *l == class_level && n == &mname);
                if !still {
                    if let Some(cid) = self.interp.registry.lookup(&owner) {
                        self.interp.registry.remove_method(cid, &mname, class_level);
                        report.removed.push(format!(
                            "{}{}{}",
                            owner,
                            if class_level { "." } else { "#" },
                            mname
                        ));
                    }
                }
            }
        }
        self.file_methods.insert(name.to_string(), new_set);

        // Re-evaluate: re-opens classes, overwrites defs, emitting the
        // events the engine needs.
        let before = self.engine.stats().dependent_invalidations;
        self.interp.eval_program(&program)?;
        self.engine.process_events(&mut self.interp);
        report.dependents_invalidated = self.engine.stats().dependent_invalidations - before;
        Ok(report)
    }

    /// Records the methods a file defines on first load (reload diffing
    /// baseline).
    pub(crate) fn track_file_methods(&mut self, name: &str, src: &str) {
        if let Ok(program) = hb_syntax::parse_program(src, name) {
            let defs = collect_method_defs(&program);
            self.file_methods.insert(
                name.to_string(),
                defs.iter()
                    .map(|d| (d.owner.clone(), d.self_method, d.name.clone()))
                    .collect(),
            );
        }
    }
}
