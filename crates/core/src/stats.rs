//! Engine statistics feeding the evaluation tables.

use hb_rdl::MethodKey;
use hb_syntax::DiagCode;
use std::collections::{BTreeSet, VecDeque};

/// How a logged static check ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckVerdict {
    /// The derivation succeeded (and was cached).
    Pass,
    /// The check blamed, with the diagnostic's stable code. Blamed first
    /// calls used to be invisible in the log; now they are first-class
    /// entries.
    Blame(DiagCode),
}

impl CheckVerdict {
    /// True when the check passed.
    pub fn passed(self) -> bool {
        matches!(self, CheckVerdict::Pass)
    }
}

/// One static check performed (Table 2's "Chk'd" column counts these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckLogItem {
    pub key: MethodKey,
    /// Pass, or blame with its diagnostic code.
    pub outcome: CheckVerdict,
    /// Wall-clock nanoseconds the check took (lowering + `check_sig`,
    /// or the failed portion thereof).
    pub duration_ns: u64,
}

/// Aggregate engine counters.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Static checks that ran to a successful derivation (misses in both
    /// cache tiers). Blamed runs are counted separately in
    /// `checks_failed`, keeping first-call accounting (`shared_hits +
    /// checks_performed`) and per-derivation cost (`check_ns /
    /// checks_performed`) stable even when failures recur.
    pub checks_performed: u64,
    /// Static checks that ended in blame (the failures are also in
    /// `check_log` with their codes — a blamed first call is no longer
    /// invisible). Failures are never cached, so a repeatedly-called
    /// blamed method increments this on every call.
    pub checks_failed: u64,
    /// Blames swallowed by [`hb_rdl::CheckPolicy::Shadow`]: the check (or
    /// dynamic argument check) failed, the diagnostic was recorded, and
    /// the call proceeded anyway. A canary deploy watches this counter.
    pub shadowed_blames: u64,
    /// Calls answered from the per-engine derivation cache (hot tier).
    pub cache_hits: u64,
    /// First calls answered by adopting another tenant's derivation from
    /// the process-wide shared tier (no check run).
    pub shared_hits: u64,
    /// Nanoseconds spent on *successful* derivations (lowering +
    /// `check_sig`) — the numerator matching `checks_performed`.
    pub check_ns: u64,
    /// Nanoseconds spent on check runs that ended in blame — the
    /// numerator matching `checks_failed` (per-entry durations are in
    /// `check_log`).
    pub failed_check_ns: u64,
    /// Nanoseconds spent adopting shared derivations (lookup + structural
    /// validation) instead of deriving.
    pub shared_adopt_ns: u64,
    /// Calls that went through the engine hook.
    pub intercepted_calls: u64,
    /// Check tasks this engine enqueued onto the concurrent scheduler
    /// (deferred JIT admissions and parallel `check_all` fan-out).
    pub sched_tasks_enqueued: u64,
    /// Scheduled tasks whose completions this engine harvested (pass,
    /// blame or contained panic).
    pub sched_tasks_completed: u64,
    /// Harvested completions discarded because their capture-time
    /// fingerprints no longer matched the engine's state at publication
    /// (entry id, signature version, or epoch/witness validation) — the
    /// stale results that are *never* adopted.
    pub sched_tasks_stale: u64,
    /// Cold calls admitted immediately under
    /// [`hb_rdl::CheckPolicy::Deferred`]: the static check was enqueued
    /// and the call proceeded under full dynamic checks.
    pub deferred_admissions: u64,
    /// Deferred admissions *shed* to a synchronous Enforce check because
    /// the in-flight queue hit its high-water cap
    /// (`HummingbirdBuilder::deferred_queue_cap`): under overload the
    /// engine stops deferring and pays the check inline rather than
    /// growing the queue without bound.
    pub deferred_shed: u64,
    /// Full snapshot fetches from the fleet daemon (boot-time warm fetch
    /// plus any delta fetch the daemon widened to a full one).
    pub fleet_fetches: u64,
    /// Delta fetches from the fleet daemon (entries past this tenant's
    /// watermark only).
    pub fleet_deltas: u64,
    /// Locally derived entries published back to the fleet daemon.
    pub fleet_publishes: u64,
    /// Eviction notices sent to the fleet daemon (families this tenant's
    /// type-table mutations retired).
    pub fleet_evictions: u64,
    /// Dynamic argument checks executed.
    pub dyn_arg_checks: u64,
    /// Cache invalidations of the method itself.
    pub invalidations: u64,
    /// Cache invalidations of dependents (Definition 1(2)).
    pub dependent_invalidations: u64,
    /// Method bodies compiled to register bytecode (bytecode tier only;
    /// bodies outside the compilable subset tree-walk and never count).
    pub bytecode_compiled: u64,
    /// Fast-entry patch events: a cached derivation admitted a
    /// `(receiver class, method entry)` pair onto its checked fast
    /// prologue (hook probe and dynamic argument checks compiled out).
    pub fast_entries_patched: u64,
    /// Deoptimizations: fast entries patched back to the guarded
    /// prologue because their derivation was invalidated (reload,
    /// annotation change, enforcement change, cache flush).
    pub deopts: u64,
    /// Candidate signatures the whole-program inference pass verified
    /// through the real checker (`Hummingbird::infer`): every candidate
    /// that survived the hypothesis-world fixpoint, whether or not its
    /// registration was new.
    pub inferred_verified: u64,
    /// Verified candidates actually registered as
    /// [`hb_rdl::AnnotationSource::Inferred`] annotations (a re-run that
    /// re-derives an identical signature verifies but does not re-adopt,
    /// so adoption stays idempotent and the epoch stream quiet).
    pub inferred_adopted: u64,
    /// Candidate signatures the checker refuted (each becomes an HB2001
    /// suggestion instead of an annotation).
    pub inferred_rejected: u64,
    /// Distinct `rdl_cast` sites seen by the checker (Table 1 "Casts").
    pub cast_sites: BTreeSet<(u32, u32, u32)>,
    /// Distinct methods statically checked.
    pub checked_methods: BTreeSet<String>,
    /// Annotate→check alternation groups (Table 1 "Phs").
    pub phases: u64,
    /// Live cache entries at snapshot time.
    pub cache_entries: usize,
    /// Log of checks performed (drained by the update experiment).
    /// Bounded: passes are naturally capped by the cache (one per
    /// method), but failures are never cached and recur on every call to
    /// a buggy endpoint, so the engine retains only the most recent
    /// [`DEFAULT_CHECK_LOG_CAP`] entries between drains (oldest first).
    pub check_log: VecDeque<CheckLogItem>,
}

/// Default retention bound for [`EngineStats::check_log`] between
/// `take_check_log` drains — same rationale as the diagnostics store's
/// bound: a long-running tenant re-hitting a blamed method must not grow
/// the log without limit. Embedders size the window via
/// `HummingbirdBuilder::check_log_cap`.
pub const DEFAULT_CHECK_LOG_CAP: usize = 4096;

/// Default high-water cap on in-flight deferred admissions
/// (`EngineStats::deferred_admissions` currently enqueued but not yet
/// harvested). At the cap, a cold call under
/// [`hb_rdl::CheckPolicy::Deferred`] sheds to a synchronous Enforce check
/// (`EngineStats::deferred_shed`) rather than growing the scheduler queue
/// without bound. Embedders size it via
/// `HummingbirdBuilder::deferred_queue_cap`.
pub const DEFAULT_DEFERRED_CAP: usize = 1024;

/// Tracks the paper's §5 "phases": a phase is a run of annotation events
/// followed by a run of static checks.
#[derive(Debug, Clone, Default)]
pub struct PhaseTracker {
    pending_annotations: bool,
    phases: u64,
    any_check: bool,
}

impl PhaseTracker {
    /// Notes that a type annotation (or method definition) executed.
    pub fn note_annotation(&mut self) {
        self.pending_annotations = true;
    }

    /// Notes that a static check ran; opens a new phase if annotations
    /// happened since the previous check.
    pub fn note_check(&mut self) {
        if self.pending_annotations || !self.any_check {
            self.phases += 1;
            self.pending_annotations = false;
        }
        self.any_check = true;
    }

    /// The number of completed phases.
    pub fn phases(&self) -> u64 {
        self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_phase_when_annotations_precede_all_checks() {
        let mut p = PhaseTracker::default();
        p.note_annotation();
        p.note_annotation();
        p.note_check();
        p.note_check();
        p.note_check();
        assert_eq!(p.phases(), 1);
    }

    #[test]
    fn interleaving_counts_phases() {
        // Rolify-style: define → check → define → check.
        let mut p = PhaseTracker::default();
        p.note_annotation();
        p.note_check();
        p.note_annotation();
        p.note_check();
        p.note_annotation();
        p.note_check();
        assert_eq!(p.phases(), 3);
    }

    #[test]
    fn checks_without_annotations_stay_in_phase() {
        let mut p = PhaseTracker::default();
        p.note_annotation();
        p.note_check();
        p.note_check();
        p.note_annotation();
        p.note_check();
        assert_eq!(p.phases(), 2);
    }
}
