//! Engine statistics feeding the evaluation tables.

use hb_rdl::MethodKey;
use std::collections::BTreeSet;

/// One static check performed (Table 2's "Chk'd" column counts these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckLogItem {
    pub key: MethodKey,
}

/// Aggregate engine counters.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Static checks actually run (cache misses).
    pub checks_performed: u64,
    /// Calls answered from the derivation cache.
    pub cache_hits: u64,
    /// Calls that went through the engine hook.
    pub intercepted_calls: u64,
    /// Dynamic argument checks executed.
    pub dyn_arg_checks: u64,
    /// Cache invalidations of the method itself.
    pub invalidations: u64,
    /// Cache invalidations of dependents (Definition 1(2)).
    pub dependent_invalidations: u64,
    /// Distinct `rdl_cast` sites seen by the checker (Table 1 "Casts").
    pub cast_sites: BTreeSet<(u32, u32, u32)>,
    /// Distinct methods statically checked.
    pub checked_methods: BTreeSet<String>,
    /// Annotate→check alternation groups (Table 1 "Phs").
    pub phases: u64,
    /// Live cache entries at snapshot time.
    pub cache_entries: usize,
    /// Log of checks performed (drained by the update experiment).
    pub check_log: Vec<CheckLogItem>,
}

/// Tracks the paper's §5 "phases": a phase is a run of annotation events
/// followed by a run of static checks.
#[derive(Debug, Clone, Default)]
pub struct PhaseTracker {
    pending_annotations: bool,
    phases: u64,
    any_check: bool,
}

impl PhaseTracker {
    /// Notes that a type annotation (or method definition) executed.
    pub fn note_annotation(&mut self) {
        self.pending_annotations = true;
    }

    /// Notes that a static check ran; opens a new phase if annotations
    /// happened since the previous check.
    pub fn note_check(&mut self) {
        if self.pending_annotations || !self.any_check {
            self.phases += 1;
            self.pending_annotations = false;
        }
        self.any_check = true;
    }

    /// The number of completed phases.
    pub fn phases(&self) -> u64 {
        self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_phase_when_annotations_precede_all_checks() {
        let mut p = PhaseTracker::default();
        p.note_annotation();
        p.note_annotation();
        p.note_check();
        p.note_check();
        p.note_check();
        assert_eq!(p.phases(), 1);
    }

    #[test]
    fn interleaving_counts_phases() {
        // Rolify-style: define → check → define → check.
        let mut p = PhaseTracker::default();
        p.note_annotation();
        p.note_check();
        p.note_annotation();
        p.note_check();
        p.note_annotation();
        p.note_check();
        assert_eq!(p.phases(), 3);
    }

    #[test]
    fn checks_without_annotations_stay_in_phase() {
        let mut p = PhaseTracker::default();
        p.note_annotation();
        p.note_check();
        p.note_check();
        p.note_annotation();
        p.note_check();
        assert_eq!(p.phases(), 2);
    }
}
