//! Serializable snapshots of the shared derivation tier — PR 2's
//! warm-start win, carried *across processes*.
//!
//! Within one process, the second tenant to boot adopts the first tenant's
//! derivations from the [`SharedCache`] and never runs the checker. A
//! rolling deploy starts *new processes*, though, and each one used to pay
//! the full first-call check storm again. A [`CacheSnapshot`] closes that
//! gap: `Hummingbird::snapshot()` serializes every shared derivation —
//! version keys, (TApp) resolution witnesses, signature fingerprints and
//! the epoch (table/hierarchy/variable-type) fingerprints — and
//! [`SharedCache::load_snapshot`] rebuilds the tier in a freshly booted
//! process, which then resolves its first calls by adoption straight from
//! disk.
//!
//! # Symbol portability
//!
//! [`hb_intern::Sym`] indices are assigned in process-local interning
//! order and are meaningless in any other process. A snapshot therefore
//! carries a *symbol dictionary* ([`hb_intern::SymDictWriter`]): every
//! serialized symbol is a dense dictionary id, and loading re-interns the
//! dictionary strings in the consuming process
//! ([`hb_intern::SymDictReader`]). Nothing else in a derivation is
//! index-based — fingerprints hash string contents via
//! [`hb_intern::fingerprint64`], whose unkeyed hasher is stable across
//! processes of the same build.
//!
//! # Soundness
//!
//! Loading a snapshot adds *candidate* derivations; nothing is trusted
//! until the normal adoption gate passes. A tenant that looks one up still
//! validates it exactly as it would a live publisher's entry: the O(1)
//! epoch fast path when the mutation-sequence fingerprints match, witness
//! replay against the tenant's own table otherwise. A snapshot taken from
//! a divergent (e.g. shadowing) world fails that validation and the tenant
//! re-checks — stale snapshots cost latency, never soundness. A snapshot
//! from a *different build* of the engine simply misses (its fingerprints
//! match nothing) for the same reason.
//!
//! # Wire format
//!
//! A version-tagged, length-prefixed little-endian binary layout (magic
//! `HBSNAP02`), hand-rolled like the rest of the workspace's
//! serialization; [`CacheSnapshot::from_bytes`] validates structure and
//! every dictionary reference before anything reaches the cache. The v2
//! format appends a trailing content checksum ([`hb_intern::fingerprint64`]
//! over everything before it), verified before any parsing, so a
//! bit-flipped artifact fails loudly with
//! [`SnapshotError::BadChecksum`] instead of desynchronizing the cursor
//! into garbage entries. Legacy `HBSNAP01` artifacts (no checksum) still
//! parse — [`CacheSnapshot::is_legacy`] is set, and
//! [`SharedCache::load_snapshot`] counts the load in
//! [`crate::SharedCacheStats::legacy_loads`] so fleets can see unchecked
//! artifacts flowing in.

use crate::shared_cache::{SharedCache, SharedDep};
use hb_intern::{fingerprint64, MethodKey, SymDictReader, SymDictWriter};
use hb_rdl::Resolution;

/// Magic + format version (v2: trailing content checksum). Bump when the
/// layout changes; `from_bytes` rejects unknown versions instead of
/// misparsing them.
const MAGIC: &[u8; 8] = b"HBSNAP02";

/// The pre-checksum format, still accepted on load (with a warning
/// counted in [`crate::SharedCacheStats::legacy_loads`]) so artifacts
/// written by earlier builds keep booting fleets during a rollout.
const MAGIC_V1: &[u8; 8] = b"HBSNAP01";

/// A method key with its symbols replaced by dictionary ids.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SnapKey {
    pub class: u32,
    pub class_level: bool,
    pub method: u32,
}

/// A [`SharedDep`] with its symbols replaced by dictionary ids.
#[derive(Debug, Clone)]
pub(crate) struct SnapDep {
    pub start: u32,
    pub skip_receiver: bool,
    pub class_level: bool,
    pub method: u32,
    pub target: Option<SnapKey>,
    pub sig_version: u64,
    pub sig_fingerprint: u64,
}

/// One serialized shared derivation.
#[derive(Debug, Clone)]
pub(crate) struct SnapEntry {
    pub key: SnapKey,
    pub method_entry_id: u64,
    pub sig_version: u64,
    pub body_fp: u64,
    pub own_sig_fp: u64,
    pub table_fp: u64,
    pub hier_fp: u64,
    pub var_fp: u64,
    pub deps: Vec<SnapDep>,
    pub cast_sites: Vec<(u32, u32, u32)>,
}

/// A serializable image of a [`SharedCache`]: the derivations plus the
/// symbol dictionary that makes them portable. Obtain one from
/// [`SharedCache::snapshot`] (or `Hummingbird::snapshot()`), persist it
/// with [`CacheSnapshot::to_bytes`], and rebuild a tier in another process
/// with [`CacheSnapshot::from_bytes`] + [`SharedCache::load_snapshot`].
#[derive(Debug, Clone, Default)]
pub struct CacheSnapshot {
    pub(crate) symbols: Vec<String>,
    pub(crate) entries: Vec<SnapEntry>,
    /// True when the bytes parsed as the legacy `HBSNAP01` layout (no
    /// content checksum). Loading such a snapshot works but is counted in
    /// [`crate::SharedCacheStats::legacy_loads`].
    pub(crate) legacy: bool,
}

/// Why a snapshot failed to parse or load. Malformed bytes are reported,
/// never partially applied past the point of detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the `HBSNAP02` (or legacy
    /// `HBSNAP01`) magic — wrong file or an incompatible format version.
    BadMagic,
    /// The buffer ended mid-structure.
    Truncated,
    /// The trailing content checksum did not match the body: the artifact
    /// was corrupted (bit flip, torn write) after it was written. Nothing
    /// past the magic was parsed.
    BadChecksum,
    /// A dictionary string was not valid UTF-8.
    BadUtf8,
    /// A symbol reference pointed outside the dictionary.
    BadSymbol(u32),
    /// [`crate::Hummingbird::load_snapshot`] was called on a system with
    /// no attached shared tier — there is nowhere for the entries to go.
    NoSharedTier,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a Hummingbird cache snapshot (bad magic)"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadChecksum => {
                write!(f, "snapshot content checksum mismatch (corrupted artifact)")
            }
            SnapshotError::BadUtf8 => write!(f, "snapshot symbol dictionary is not UTF-8"),
            SnapshotError::BadSymbol(id) => {
                write!(f, "snapshot references unknown symbol id {id}")
            }
            SnapshotError::NoSharedTier => {
                write!(f, "no shared cache attached to load the snapshot into")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

// ----- encoding --------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_key(out: &mut Vec<u8>, k: &SnapKey) {
    put_u32(out, k.class);
    out.push(u8::from(k.class_level));
    put_u32(out, k.method);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        Ok(self.u8()? != 0)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn key(&mut self) -> Result<SnapKey, SnapshotError> {
        Ok(SnapKey {
            class: self.u32()?,
            class_level: self.bool()?,
            method: self.u32()?,
        })
    }
}

impl CacheSnapshot {
    /// Number of serialized derivations.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of dictionary symbols.
    pub fn symbol_count(&self) -> usize {
        self.symbols.len()
    }

    /// The method keys this snapshot carries derivations for, interned
    /// into the live process. This is the coverage set a live-system load
    /// ([`crate::Hummingbird::load_snapshot`]) retires locally: every
    /// listed method re-validates against the fresh artifact on its next
    /// call instead of trusting a derivation the artifact may supersede.
    pub fn method_keys(&self) -> Result<Vec<MethodKey>, SnapshotError> {
        let dict = SymDictReader::new(self.symbols.iter().map(String::as_str));
        let sym = |id: u32| dict.sym(id).ok_or(SnapshotError::BadSymbol(id));
        let mut keys = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            keys.push(MethodKey {
                class: sym(e.key.class)?,
                class_level: e.key.class_level,
                method: sym(e.key.method)?,
            });
        }
        Ok(keys)
    }

    /// True when this snapshot was parsed from the legacy (pre-checksum)
    /// `HBSNAP01` layout. Loads are still sound — entries are candidates
    /// validated at adoption — but the artifact had no integrity check,
    /// so [`SharedCache::load_snapshot`] counts it in
    /// [`crate::SharedCacheStats::legacy_loads`].
    pub fn is_legacy(&self) -> bool {
        self.legacy
    }

    /// Every entry's `(method key, entry id, sig version, body
    /// fingerprint)` version tuple, interned into the live process — the
    /// identity a [`SharedCache::contains`] probe takes. The fleet daemon
    /// uses this to distinguish genuinely new publications from re-sends
    /// of derivations it already serves.
    pub fn entry_versions(&self) -> Result<Vec<(MethodKey, u64, u64, u64)>, SnapshotError> {
        let dict = SymDictReader::new(self.symbols.iter().map(String::as_str));
        let sym = |id: u32| dict.sym(id).ok_or(SnapshotError::BadSymbol(id));
        let mut out = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let key = MethodKey {
                class: sym(e.key.class)?,
                class_level: e.key.class_level,
                method: sym(e.key.method)?,
            };
            out.push((key, e.method_entry_id, e.sig_version, e.body_fp));
        }
        Ok(out)
    }

    /// Serializes to the `HBSNAP02` wire format (trailing content
    /// checksum included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, self.symbols.len() as u32);
        for s in &self.symbols {
            put_u32(&mut out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
        put_u32(&mut out, self.entries.len() as u32);
        for e in &self.entries {
            put_key(&mut out, &e.key);
            for v in [
                e.method_entry_id,
                e.sig_version,
                e.body_fp,
                e.own_sig_fp,
                e.table_fp,
                e.hier_fp,
                e.var_fp,
            ] {
                put_u64(&mut out, v);
            }
            put_u32(&mut out, e.deps.len() as u32);
            for d in &e.deps {
                put_u32(&mut out, d.start);
                out.push(u8::from(d.skip_receiver));
                out.push(u8::from(d.class_level));
                put_u32(&mut out, d.method);
                match &d.target {
                    Some(t) => {
                        out.push(1);
                        put_key(&mut out, t);
                    }
                    None => out.push(0),
                }
                put_u64(&mut out, d.sig_version);
                put_u64(&mut out, d.sig_fingerprint);
            }
            put_u32(&mut out, e.cast_sites.len() as u32);
            for (f, lo, hi) in &e.cast_sites {
                put_u32(&mut out, *f);
                put_u32(&mut out, *lo);
                put_u32(&mut out, *hi);
            }
        }
        // Trailing content checksum over everything before it (magic
        // included): bit flips and torn writes fail loudly at parse time
        // instead of desynchronizing the cursor into garbage entries.
        let sum = fingerprint64(&out[..]);
        put_u64(&mut out, sum);
        out
    }

    /// Parses the `HBSNAP02` wire format — checksum verified before any
    /// structure is read — or the legacy `HBSNAP01` layout (no checksum;
    /// the result has [`CacheSnapshot::is_legacy`] set).
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on bad magic, checksum mismatch, truncation, or
    /// invalid UTF-8 in the symbol dictionary. (Dangling symbol references
    /// surface later, from [`SharedCache::load_snapshot`].)
    pub fn from_bytes(bytes: &[u8]) -> Result<CacheSnapshot, SnapshotError> {
        let magic = bytes.get(..MAGIC.len()).ok_or(SnapshotError::Truncated)?;
        let (body, legacy) = if magic == MAGIC {
            // v2: split off and verify the trailing checksum first.
            if bytes.len() < MAGIC.len() + 8 {
                return Err(SnapshotError::Truncated);
            }
            let (body, tail) = bytes.split_at(bytes.len() - 8);
            let expected = u64::from_le_bytes(tail.try_into().unwrap());
            if fingerprint64(body) != expected {
                return Err(SnapshotError::BadChecksum);
            }
            (body, false)
        } else if magic == MAGIC_V1 {
            (bytes, true)
        } else {
            return Err(SnapshotError::BadMagic);
        };
        let mut c = Cursor {
            buf: body,
            pos: MAGIC.len(),
        };
        let nsyms = c.u32()? as usize;
        let mut symbols = Vec::with_capacity(nsyms.min(1 << 16));
        for _ in 0..nsyms {
            let len = c.u32()? as usize;
            let s = std::str::from_utf8(c.take(len)?).map_err(|_| SnapshotError::BadUtf8)?;
            symbols.push(s.to_string());
        }
        let nentries = c.u32()? as usize;
        let mut entries = Vec::with_capacity(nentries.min(1 << 16));
        for _ in 0..nentries {
            let key = c.key()?;
            let method_entry_id = c.u64()?;
            let sig_version = c.u64()?;
            let body_fp = c.u64()?;
            let own_sig_fp = c.u64()?;
            let table_fp = c.u64()?;
            let hier_fp = c.u64()?;
            let var_fp = c.u64()?;
            let ndeps = c.u32()? as usize;
            let mut deps = Vec::with_capacity(ndeps.min(1 << 12));
            for _ in 0..ndeps {
                let start = c.u32()?;
                let skip_receiver = c.bool()?;
                let class_level = c.bool()?;
                let method = c.u32()?;
                let target = if c.bool()? { Some(c.key()?) } else { None };
                deps.push(SnapDep {
                    start,
                    skip_receiver,
                    class_level,
                    method,
                    target,
                    sig_version: c.u64()?,
                    sig_fingerprint: c.u64()?,
                });
            }
            let ncasts = c.u32()? as usize;
            let mut cast_sites = Vec::with_capacity(ncasts.min(1 << 12));
            for _ in 0..ncasts {
                cast_sites.push((c.u32()?, c.u32()?, c.u32()?));
            }
            entries.push(SnapEntry {
                key,
                method_entry_id,
                sig_version,
                body_fp,
                own_sig_fp,
                table_fp,
                hier_fp,
                var_fp,
                deps,
                cast_sites,
            });
        }
        Ok(CacheSnapshot {
            symbols,
            entries,
            legacy,
        })
    }
}

// ----- capture / restore -----------------------------------------------------

fn key_id(dict: &mut SymDictWriter, k: &MethodKey) -> SnapKey {
    SnapKey {
        class: dict.id(k.class),
        class_level: k.class_level,
        method: dict.id(k.method),
    }
}

pub(crate) fn snapshot_of(cache: &SharedCache) -> CacheSnapshot {
    snapshot_of_filtered(cache, &|_| true)
}

/// [`snapshot_of`] restricted to methods `keep` accepts — the delta
/// encoder: the fleet daemon serializes only the entries past a client's
/// watermark, and a fleet client serializes only its pending
/// publications.
pub(crate) fn snapshot_of_filtered(
    cache: &SharedCache,
    keep: &dyn Fn(&MethodKey) -> bool,
) -> CacheSnapshot {
    let mut dict = SymDictWriter::new();
    let mut entries = Vec::new();
    for (key, version, d) in cache.iter_derivations() {
        if !keep(&key) {
            continue;
        }
        let skey = key_id(&mut dict, &key);
        let deps = d
            .deps
            .iter()
            .map(|dep| SnapDep {
                start: dict.id(dep.resolution.start),
                skip_receiver: dep.resolution.skip_receiver,
                class_level: dep.resolution.class_level,
                method: dict.id(dep.resolution.method),
                target: dep.resolution.target.map(|t| key_id(&mut dict, &t)),
                sig_version: dep.sig_version,
                sig_fingerprint: dep.sig_fingerprint,
            })
            .collect();
        entries.push(SnapEntry {
            key: skey,
            method_entry_id: version.0,
            sig_version: version.1,
            body_fp: version.2,
            own_sig_fp: d.own_sig_fingerprint,
            table_fp: d.table_fp,
            hier_fp: d.hier_fp,
            var_fp: d.var_fp,
            deps,
            cast_sites: d.cast_sites.to_vec(),
        });
    }
    CacheSnapshot {
        symbols: dict.strings().iter().map(|s| s.to_string()).collect(),
        entries,
        legacy: false,
    }
}

pub(crate) fn load_into(cache: &SharedCache, snap: &CacheSnapshot) -> Result<usize, SnapshotError> {
    let dict = SymDictReader::new(snap.symbols.iter().map(String::as_str));
    let sym = |id: u32| dict.sym(id).ok_or(SnapshotError::BadSymbol(id));
    let key = |k: &SnapKey| -> Result<MethodKey, SnapshotError> {
        Ok(MethodKey {
            class: sym(k.class)?,
            class_level: k.class_level,
            method: sym(k.method)?,
        })
    };
    // Two-phase: translate (and thereby validate) EVERY entry before
    // inserting ANY, so a malformed snapshot leaves the live tier exactly
    // as it was — an embedder can treat Err as "nothing happened" and
    // retry with a corrected artifact.
    let mut translated = Vec::with_capacity(snap.entries.len());
    for e in &snap.entries {
        let k = key(&e.key)?;
        let mut deps = Vec::with_capacity(e.deps.len());
        for d in &e.deps {
            deps.push(SharedDep {
                resolution: Resolution {
                    start: sym(d.start)?,
                    skip_receiver: d.skip_receiver,
                    class_level: d.class_level,
                    method: sym(d.method)?,
                    target: d.target.as_ref().map(&key).transpose()?,
                },
                sig_version: d.sig_version,
                sig_fingerprint: d.sig_fingerprint,
            });
        }
        translated.push((k, e, deps));
    }
    let loaded = translated.len();
    for (k, e, deps) in translated {
        cache.insert(
            k,
            e.method_entry_id,
            e.sig_version,
            e.body_fp,
            e.own_sig_fp,
            (e.table_fp, e.hier_fp, e.var_fp),
            deps,
            e.cast_sites.clone(),
        );
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(c: &str, m: &str) -> MethodKey {
        MethodKey::instance(c, m)
    }

    fn sample_cache() -> SharedCache {
        let c = SharedCache::new();
        c.insert(
            k("Talk", "owner?"),
            7,
            3,
            0xB0D7,
            0x5167,
            (11, 22, 33),
            vec![SharedDep {
                resolution: Resolution::of("User", false, "name", Some(k("User", "name"))),
                sig_version: 2,
                sig_fingerprint: 0xF00D,
            }],
            vec![(1, 10, 20)],
        );
        c.insert(
            k("Talk", "title"),
            9,
            1,
            0xCAFE,
            0x7777,
            (11, 22, 33),
            vec![SharedDep {
                // Negative witness: no target.
                resolution: Resolution::of("Talk", false, "missing", None),
                sig_version: 0,
                sig_fingerprint: 0,
            }],
            vec![],
        );
        c
    }

    #[test]
    fn snapshot_round_trips_bytes_and_cache() {
        let c = sample_cache();
        let snap = c.snapshot();
        assert_eq!(snap.entry_count(), 2);
        let bytes = snap.to_bytes();
        let parsed = CacheSnapshot::from_bytes(&bytes).expect("parses");
        assert_eq!(parsed.entry_count(), 2);
        assert_eq!(parsed.symbol_count(), snap.symbol_count());

        let fresh = SharedCache::new();
        assert_eq!(fresh.load_snapshot(&parsed).expect("loads"), 2);
        assert_eq!(fresh.len(), 2);
        let d = fresh
            .lookup(&k("Talk", "owner?"), 7, 3, 0xB0D7)
            .expect("restored derivation hits under the original version key");
        assert_eq!(d.own_sig_fingerprint, 0x5167);
        assert_eq!((d.table_fp, d.hier_fp, d.var_fp), (11, 22, 33));
        assert_eq!(d.deps.len(), 1);
        assert_eq!(d.deps[0].resolution.target, Some(k("User", "name")));
        assert_eq!(d.cast_sites.as_ref(), &[(1, 10, 20)]);
        // Negative witnesses survive too.
        let d2 = fresh.lookup(&k("Talk", "title"), 9, 1, 0xCAFE).unwrap();
        assert_eq!(d2.deps[0].resolution.target, None);
        // Dependency edges were rebuilt: evicting the dep key drops the
        // dependent derivation.
        assert_eq!(fresh.evict_with_dependents(&k("User", "name")), 1);
    }

    /// Rewrites v2 bytes into the legacy HBSNAP01 layout: v1 magic, no
    /// trailing checksum. What an artifact written by a pre-checksum
    /// build looks like.
    fn as_legacy(bytes: &[u8]) -> Vec<u8> {
        let mut v1 = bytes[..bytes.len() - 8].to_vec();
        v1[..MAGIC_V1.len()].copy_from_slice(MAGIC_V1);
        v1
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert_eq!(
            CacheSnapshot::from_bytes(b"not a snapshot").unwrap_err(),
            SnapshotError::BadMagic
        );
        // v2 truncation is caught by the checksum (verified before any
        // structure is read).
        let bytes = sample_cache().snapshot().to_bytes();
        let mut short = bytes.clone();
        short.truncate(bytes.len() - 3);
        assert_eq!(
            CacheSnapshot::from_bytes(&short).unwrap_err(),
            SnapshotError::BadChecksum
        );
        // A bit flip anywhere in the body is likewise a checksum failure.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert_eq!(
            CacheSnapshot::from_bytes(&flipped).unwrap_err(),
            SnapshotError::BadChecksum
        );
        // Legacy bytes have no checksum, so truncation surfaces as the
        // structural error.
        let mut legacy_short = as_legacy(&bytes);
        legacy_short.truncate(legacy_short.len() - 3);
        assert_eq!(
            CacheSnapshot::from_bytes(&legacy_short).unwrap_err(),
            SnapshotError::Truncated
        );
    }

    #[test]
    fn legacy_hbsnap01_artifacts_still_load_with_a_warning_stat() {
        let snap = sample_cache().snapshot();
        let v1 = as_legacy(&snap.to_bytes());
        let parsed = CacheSnapshot::from_bytes(&v1).expect("legacy layout parses");
        assert!(parsed.is_legacy());
        assert_eq!(parsed.entry_count(), snap.entry_count());
        let fresh = SharedCache::new();
        assert_eq!(fresh.load_snapshot(&parsed).unwrap(), 2);
        assert_eq!(
            fresh.stats().legacy_loads,
            1,
            "loading a checksum-less artifact is counted"
        );
        // A v2 load does not touch the counter.
        assert_eq!(fresh.load_snapshot(&snap).unwrap(), 2);
        assert_eq!(fresh.stats().legacy_loads, 1);
    }

    #[test]
    fn filtered_snapshot_serializes_only_kept_methods() {
        let c = sample_cache();
        let keep = k("Talk", "owner?");
        let snap = c.snapshot_filtered(|key| *key == keep);
        assert_eq!(snap.entry_count(), 1);
        let versions = snap.entry_versions().unwrap();
        assert_eq!(versions, vec![(keep, 7, 3, 0xB0D7)]);
        assert!(
            c.contains(&keep, 7, 3, 0xB0D7),
            "contains probes the same version tuple"
        );
        assert!(!c.contains(&keep, 7, 3, 0xDEAD));
    }

    #[test]
    fn load_rejects_dangling_symbol_ids_without_partial_application() {
        let entry = |method: u32| SnapEntry {
            key: SnapKey {
                class: 0,
                class_level: false,
                method,
            },
            method_entry_id: 1,
            sig_version: 1,
            body_fp: 1,
            own_sig_fp: 1,
            table_fp: 1,
            hier_fp: 1,
            var_fp: 1,
            deps: vec![],
            cast_sites: vec![],
        };
        let snap = CacheSnapshot {
            symbols: vec!["Talk".into(), "title".into()],
            entries: vec![
                entry(1), // valid
                entry(9), // dangling
            ],
            legacy: false,
        };
        let fresh = SharedCache::new();
        assert_eq!(
            fresh.load_snapshot(&snap).unwrap_err(),
            SnapshotError::BadSymbol(9)
        );
        assert!(
            fresh.is_empty(),
            "nothing half-loaded — the valid entry before the malformed \
             one was not applied either"
        );
    }
}
