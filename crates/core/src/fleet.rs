//! The fleet client: warm-booting a tenant *process* from a long-lived
//! derivation daemon (`hb-fleetd`) over a Unix-domain socket.
//!
//! PR 2 shares derivations between tenants of one process; PR 4 carries
//! them across processes as a file-at-boot snapshot. This module closes
//! ROADMAP item 1's remaining gap: a fleet of N app-server processes
//! warm-boots from — and continuously feeds — one daemon-owned
//! [`SharedCache`] tier, over the versioned, length-prefixed `HBFLEET1`
//! protocol (see `docs/HBFLEET1.md`). The payloads reuse the `HBSNAP02`
//! snapshot encoding ([`crate::snapshot`]) wholesale: a fetch response
//! *is* a snapshot, restricted to the entries past the client's
//! watermark when the daemon can prove the delta.
//!
//! # Soundness
//!
//! The daemon is never trusted. Every fetched derivation lands in the
//! tenant's shared tier as a *candidate* and passes the existing
//! adoption funnel — the O(1) epoch fast path or per-witness replay
//! ([`crate::engine`]) — before anything skips a check. A divergent,
//! stale, or actively wrong daemon therefore costs latency (the tenant
//! re-checks locally), never soundness. Connection or protocol failures
//! degrade the same way: the session detaches and the tenant falls back
//! to purely local checking.
//!
//! # Watermarks and deltas
//!
//! Fetch responses carry an opaque watermark — the daemon's publication
//! sequence number plus the `(table, hierarchy, var)` epoch-fingerprint
//! triple of its current world. A delta fetch echoes the watermark back;
//! the daemon serves only entries published after it (plus tombstones
//! for evicted families) when the watermark is genuine and recent enough
//! to enumerate, and silently widens to a full snapshot otherwise. The
//! client treats both shapes identically, so a restarted or compacted
//! daemon is indistinguishable from a slow one.

use crate::engine::Engine;
use crate::shared_cache::{CacheEventHook, SharedCache};
use crate::snapshot::{CacheSnapshot, SnapshotError};
use hb_interp::Interp;
use hb_rdl::MethodKey;
use std::collections::HashSet;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The `HBFLEET1` framing layer, shared verbatim by the client (here)
/// and the daemon (`hb-fleetd`): an 8-byte magic handshake in each
/// direction, then length-prefixed frames `u32 LE len | u8 opcode |
/// payload` where `len` counts the opcode byte plus the payload.
/// Method keys travel as strings (symbols are process-local) and are
/// re-interned on receipt.
pub mod wire {
    use super::FleetError;
    use hb_intern::Sym;
    use hb_rdl::MethodKey;
    use std::io::{Read, Write};

    /// Protocol magic, exchanged by both sides immediately after
    /// connect. A mismatch is [`FleetError::BadHandshake`].
    pub const MAGIC: &[u8; 8] = b"HBFLEET1";

    /// Upper bound on a frame's declared length (opcode + payload).
    /// Anything larger is [`FleetError::FrameTooLarge`] — a corrupt or
    /// hostile length prefix must not turn into an allocation.
    pub const MAX_FRAME: u32 = 64 << 20;

    // ----- request opcodes ---------------------------------------------------

    /// Full snapshot fetch. Empty payload; answered with
    /// [`RESP_SNAPSHOT`].
    pub const FETCH_FULL: u8 = 0x01;
    /// Delta fetch: payload is a watermark (`u64` seq + three `u64`
    /// epoch fingerprints). Answered with [`RESP_SNAPSHOT`] — a delta
    /// when the daemon can prove one, a full snapshot otherwise.
    pub const FETCH_DELTA: u8 = 0x02;
    /// Publish-back: payload is three `u64` epoch fingerprints (the
    /// publisher's current world) followed by `HBSNAP02` snapshot bytes
    /// of the locally derived entries. Answered with [`RESP_ACK`]
    /// carrying the count of genuinely new entries.
    pub const PUBLISH: u8 = 0x03;
    /// Eviction notice: payload is a `u32` count of method keys. The
    /// daemon drops each family plus its dependents, tombstoning every
    /// removal. Answered with [`RESP_ACK`] carrying the dropped count.
    pub const EVICT: u8 = 0x04;
    /// Daemon statistics. Empty payload; answered with [`RESP_STATS`].
    pub const STATS: u8 = 0x05;
    /// Liveness probe. Empty payload; answered with [`RESP_ACK`].
    pub const PING: u8 = 0x06;
    /// Orderly shutdown (test and CI harness use). Answered with
    /// [`RESP_ACK`] before the daemon exits its accept loop.
    pub const SHUTDOWN: u8 = 0x07;
    /// Extended daemon metrics. Empty payload; answered with
    /// [`RESP_STATS_V2`] carrying the daemon's full metrics registry
    /// (request counters and latency histograms) rendered in the
    /// Prometheus text exposition format. Unlike the fixed-layout
    /// [`STATS`], the payload is self-describing, so the daemon can add
    /// series without a protocol revision; a pre-`STATS_V2` daemon
    /// answers [`RESP_ERR`], which clients surface as
    /// [`FleetError::Daemon`] and treat as "not supported".
    pub const STATS_V2: u8 = 0x08;

    // ----- response opcodes --------------------------------------------------

    /// Snapshot response (see [`SnapshotResp`]).
    pub const RESP_SNAPSHOT: u8 = 0x81;
    /// Acknowledgement carrying one `u64` value.
    pub const RESP_ACK: u8 = 0x82;
    /// Daemon statistics (see [`DaemonStats`]).
    pub const RESP_STATS: u8 = 0x83;
    /// Extended daemon metrics: the payload is UTF-8 Prometheus text.
    pub const RESP_STATS_V2: u8 = 0x84;
    /// Typed daemon-side failure: payload is a UTF-8 message. The
    /// connection stays usable.
    pub const RESP_ERR: u8 = 0x7F;

    /// Writes one frame.
    pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> std::io::Result<()> {
        let len = (payload.len() + 1) as u32;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&[opcode])?;
        w.write_all(payload)?;
        w.flush()
    }

    /// Reads one frame, enforcing [`MAX_FRAME`].
    pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), FleetError> {
        let mut len = [0u8; 4];
        r.read_exact(&mut len).map_err(FleetError::Io)?;
        let len = u32::from_le_bytes(len);
        if len == 0 {
            return Err(FleetError::BadFrame("zero-length frame"));
        }
        if len > MAX_FRAME {
            return Err(FleetError::FrameTooLarge(len));
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body).map_err(FleetError::Io)?;
        let opcode = body[0];
        body.drain(..1);
        Ok((opcode, body))
    }

    // ----- payload encoding --------------------------------------------------

    /// Appends a `u32` (little-endian).
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a method key as strings (`u8` class-level flag, then
    /// length-prefixed class and method names).
    pub fn put_key(out: &mut Vec<u8>, key: &MethodKey) {
        out.push(u8::from(key.class_level));
        let class = key.class.as_str();
        put_u32(out, class.len() as u32);
        out.extend_from_slice(class.as_bytes());
        let method = key.method.as_str();
        put_u32(out, method.len() as u32);
        out.extend_from_slice(method.as_bytes());
    }

    /// Bounds-checked reader over a frame payload. Every overrun is the
    /// typed [`FleetError::BadFrame`], never a panic or a misparse.
    pub struct PayloadCursor<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> PayloadCursor<'a> {
        /// A cursor over `buf`.
        pub fn new(buf: &'a [u8]) -> PayloadCursor<'a> {
            PayloadCursor { buf, pos: 0 }
        }

        /// Bytes remaining past the cursor.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Takes `n` raw bytes.
        pub fn take(&mut self, n: usize) -> Result<&'a [u8], FleetError> {
            let end = self
                .pos
                .checked_add(n)
                .ok_or(FleetError::BadFrame("length overflow"))?;
            let s = self
                .buf
                .get(self.pos..end)
                .ok_or(FleetError::BadFrame("payload truncated"))?;
            self.pos = end;
            Ok(s)
        }

        /// Reads one byte.
        pub fn u8(&mut self) -> Result<u8, FleetError> {
            Ok(self.take(1)?[0])
        }

        /// Reads a `u32` (little-endian).
        pub fn u32(&mut self) -> Result<u32, FleetError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }

        /// Reads a `u64` (little-endian).
        pub fn u64(&mut self) -> Result<u64, FleetError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }

        /// Reads a length-prefixed UTF-8 string.
        pub fn string(&mut self) -> Result<&'a str, FleetError> {
            let len = self.u32()? as usize;
            std::str::from_utf8(self.take(len)?)
                .map_err(|_| FleetError::BadFrame("string is not UTF-8"))
        }

        /// Reads a method key ([`put_key`]'s inverse), interning its
        /// symbols into this process.
        pub fn key(&mut self) -> Result<MethodKey, FleetError> {
            let class_level = self.u8()? != 0;
            let class = Sym::intern(self.string()?);
            let method = Sym::intern(self.string()?);
            Ok(MethodKey {
                class,
                class_level,
                method,
            })
        }
    }

    /// A decoded [`RESP_SNAPSHOT`] payload: the new watermark, the
    /// tombstoned families, and the (possibly delta-restricted)
    /// `HBSNAP02` snapshot bytes.
    #[derive(Debug, Clone)]
    pub struct SnapshotResp {
        /// True when the snapshot holds only entries past the client's
        /// watermark; false when the daemon served the full tier.
        pub delta: bool,
        /// The daemon's publication sequence number — the `seq` half of
        /// the next watermark.
        pub seq: u64,
        /// The daemon's current world epoch triple — the other half.
        pub epochs: (u64, u64, u64),
        /// Families evicted since the watermark (delta only; a full
        /// snapshot carries none — the client replaces wholesale).
        pub tombstones: Vec<MethodKey>,
        /// `HBSNAP02` bytes ([`crate::CacheSnapshot::from_bytes`]).
        pub snapshot: Vec<u8>,
    }

    /// Encodes a [`SnapshotResp`] payload.
    pub fn encode_snapshot_resp(resp: &SnapshotResp) -> Vec<u8> {
        let mut out = Vec::with_capacity(resp.snapshot.len() + 64);
        out.push(u8::from(resp.delta));
        put_u64(&mut out, resp.seq);
        put_u64(&mut out, resp.epochs.0);
        put_u64(&mut out, resp.epochs.1);
        put_u64(&mut out, resp.epochs.2);
        put_u32(&mut out, resp.tombstones.len() as u32);
        for key in &resp.tombstones {
            put_key(&mut out, key);
        }
        put_u32(&mut out, resp.snapshot.len() as u32);
        out.extend_from_slice(&resp.snapshot);
        out
    }

    /// Decodes a [`RESP_SNAPSHOT`] payload.
    pub fn decode_snapshot_resp(payload: &[u8]) -> Result<SnapshotResp, FleetError> {
        let mut c = PayloadCursor::new(payload);
        let delta = c.u8()? != 0;
        let seq = c.u64()?;
        let epochs = (c.u64()?, c.u64()?, c.u64()?);
        let ntombs = c.u32()? as usize;
        let mut tombstones = Vec::with_capacity(ntombs.min(1 << 16));
        for _ in 0..ntombs {
            tombstones.push(c.key()?);
        }
        let snap_len = c.u32()? as usize;
        let snapshot = c.take(snap_len)?.to_vec();
        if c.remaining() != 0 {
            return Err(FleetError::BadFrame("trailing bytes after snapshot"));
        }
        Ok(SnapshotResp {
            delta,
            seq,
            epochs,
            tombstones,
            snapshot,
        })
    }

    /// Daemon-side counters carried by [`RESP_STATS`].
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct DaemonStats {
        /// Live derivations in the daemon's tier.
        pub entries: u64,
        /// Current publication sequence number.
        pub seq: u64,
        /// Full snapshot fetches served.
        pub fetches: u64,
        /// Delta fetches served (not widened to full).
        pub deltas: u64,
        /// Genuinely new entries accepted from publish-backs.
        pub publishes: u64,
        /// Families dropped by eviction notices (dependents included).
        pub evictions: u64,
        /// Families dropped by the LRU compaction pass.
        pub compactions: u64,
        /// Background snapshot writebacks completed.
        pub writebacks: u64,
    }

    /// Encodes a [`RESP_STATS`] payload.
    pub fn encode_stats(s: &DaemonStats) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        for v in [
            s.entries,
            s.seq,
            s.fetches,
            s.deltas,
            s.publishes,
            s.evictions,
            s.compactions,
            s.writebacks,
        ] {
            put_u64(&mut out, v);
        }
        out
    }

    /// Decodes a [`RESP_STATS`] payload.
    pub fn decode_stats(payload: &[u8]) -> Result<DaemonStats, FleetError> {
        let mut c = PayloadCursor::new(payload);
        let s = DaemonStats {
            entries: c.u64()?,
            seq: c.u64()?,
            fetches: c.u64()?,
            deltas: c.u64()?,
            publishes: c.u64()?,
            evictions: c.u64()?,
            compactions: c.u64()?,
            writebacks: c.u64()?,
        };
        if c.remaining() != 0 {
            return Err(FleetError::BadFrame("trailing bytes after stats"));
        }
        Ok(s)
    }
}

/// Why a fleet operation failed. Every failure is typed and every
/// failure is survivable: the tenant detaches from the daemon and
/// degrades to local checking — a fleet error never poisons the live
/// tier or the engine.
#[derive(Debug)]
pub enum FleetError {
    /// Socket-level failure (connect, read, write, unexpected EOF).
    Io(std::io::Error),
    /// The peer did not present the `HBFLEET1` magic.
    BadHandshake,
    /// A structurally malformed frame payload (truncated field, bad
    /// UTF-8, trailing bytes). The static message names the defect.
    BadFrame(&'static str),
    /// A frame declared a length above [`wire::MAX_FRAME`].
    FrameTooLarge(u32),
    /// The daemon answered with a typed error ([`wire::RESP_ERR`]).
    Daemon(String),
    /// The response payload embedded a snapshot that failed to parse or
    /// load ([`SnapshotError`]).
    Snapshot(SnapshotError),
    /// The peer answered with an opcode the request cannot accept.
    UnexpectedOpcode(u8),
    /// The session was detached by an earlier error (rendered here);
    /// the tenant is running on purely local checking.
    Detached(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Io(e) => write!(f, "fleet socket error: {e}"),
            FleetError::BadHandshake => write!(f, "peer is not an HBFLEET1 endpoint"),
            FleetError::BadFrame(what) => write!(f, "malformed HBFLEET1 frame: {what}"),
            FleetError::FrameTooLarge(len) => {
                write!(f, "HBFLEET1 frame of {len} bytes exceeds the 64 MiB bound")
            }
            FleetError::Daemon(msg) => write!(f, "fleet daemon refused: {msg}"),
            FleetError::Snapshot(e) => write!(f, "fleet response snapshot: {e}"),
            FleetError::UnexpectedOpcode(op) => {
                write!(f, "unexpected HBFLEET1 response opcode {op:#04x}")
            }
            FleetError::Detached(why) => {
                write!(f, "fleet session detached (local checking only): {why}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Io(e) => Some(e),
            FleetError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> FleetError {
        FleetError::Io(e)
    }
}

/// The client's position in the daemon's publication stream: the
/// sequence number and world epoch triple the daemon reported on the
/// last fetch, echoed back verbatim on the next delta fetch. Opaque by
/// design — only the daemon interprets it, and an unrecognizable
/// watermark simply widens the response to a full snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetWatermark {
    /// The daemon's publication sequence number at fetch time.
    pub seq: u64,
    /// The daemon's world epoch triple at fetch time.
    pub epochs: (u64, u64, u64),
}

/// A connected `HBFLEET1` client: one framed request/response exchange
/// at a time over a Unix-domain socket. [`FleetSession`] drives it for
/// an embedded tenant; probes and tests use it directly.
pub struct FleetClient {
    stream: UnixStream,
}

impl FleetClient {
    /// Connects and performs the magic handshake.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] on socket failure, [`FleetError::BadHandshake`]
    /// when the peer is not an `HBFLEET1` endpoint.
    pub fn connect(path: &Path) -> Result<FleetClient, FleetError> {
        let mut stream = UnixStream::connect(path)?;
        stream.write_all(wire::MAGIC)?;
        stream.flush()?;
        let mut echo = [0u8; 8];
        stream.read_exact(&mut echo)?;
        if &echo != wire::MAGIC {
            return Err(FleetError::BadHandshake);
        }
        Ok(FleetClient { stream })
    }

    /// One request/response exchange; [`wire::RESP_ERR`] becomes
    /// [`FleetError::Daemon`].
    fn call(&mut self, opcode: u8, payload: &[u8]) -> Result<(u8, Vec<u8>), FleetError> {
        wire::write_frame(&mut self.stream, opcode, payload)?;
        let (op, body) = wire::read_frame(&mut self.stream)?;
        if op == wire::RESP_ERR {
            return Err(FleetError::Daemon(
                String::from_utf8_lossy(&body).into_owned(),
            ));
        }
        Ok((op, body))
    }

    fn expect_snapshot(
        &mut self,
        opcode: u8,
        payload: &[u8],
    ) -> Result<wire::SnapshotResp, FleetError> {
        let (op, body) = self.call(opcode, payload)?;
        if op != wire::RESP_SNAPSHOT {
            return Err(FleetError::UnexpectedOpcode(op));
        }
        wire::decode_snapshot_resp(&body)
    }

    fn expect_ack(&mut self, opcode: u8, payload: &[u8]) -> Result<u64, FleetError> {
        let (op, body) = self.call(opcode, payload)?;
        if op != wire::RESP_ACK {
            return Err(FleetError::UnexpectedOpcode(op));
        }
        let mut c = wire::PayloadCursor::new(&body);
        let v = c.u64()?;
        if c.remaining() != 0 {
            return Err(FleetError::BadFrame("trailing bytes after ack"));
        }
        Ok(v)
    }

    /// Fetches the daemon's full tier.
    pub fn fetch_full(&mut self) -> Result<wire::SnapshotResp, FleetError> {
        self.expect_snapshot(wire::FETCH_FULL, &[])
    }

    /// Fetches entries past `watermark` (the daemon may widen to a full
    /// snapshot; check [`wire::SnapshotResp::delta`]).
    pub fn fetch_delta(
        &mut self,
        watermark: FleetWatermark,
    ) -> Result<wire::SnapshotResp, FleetError> {
        let mut payload = Vec::with_capacity(32);
        wire::put_u64(&mut payload, watermark.seq);
        wire::put_u64(&mut payload, watermark.epochs.0);
        wire::put_u64(&mut payload, watermark.epochs.1);
        wire::put_u64(&mut payload, watermark.epochs.2);
        self.expect_snapshot(wire::FETCH_DELTA, &payload)
    }

    /// Publishes locally derived entries (as `HBSNAP02` bytes) stamped
    /// with the publisher's current epoch triple. Returns the count of
    /// entries the daemon had not seen before.
    pub fn publish(
        &mut self,
        epochs: (u64, u64, u64),
        snapshot_bytes: &[u8],
    ) -> Result<u64, FleetError> {
        let mut payload = Vec::with_capacity(snapshot_bytes.len() + 24);
        wire::put_u64(&mut payload, epochs.0);
        wire::put_u64(&mut payload, epochs.1);
        wire::put_u64(&mut payload, epochs.2);
        payload.extend_from_slice(snapshot_bytes);
        self.expect_ack(wire::PUBLISH, &payload)
    }

    /// Sends eviction notices for `keys`. Returns the number of
    /// families the daemon dropped (dependents included).
    pub fn evict(&mut self, keys: &[MethodKey]) -> Result<u64, FleetError> {
        let mut payload = Vec::with_capacity(keys.len() * 24 + 4);
        wire::put_u32(&mut payload, keys.len() as u32);
        for key in keys {
            wire::put_key(&mut payload, key);
        }
        self.expect_ack(wire::EVICT, &payload)
    }

    /// Fetches the daemon's counters.
    pub fn daemon_stats(&mut self) -> Result<wire::DaemonStats, FleetError> {
        let (op, body) = self.call(wire::STATS, &[])?;
        if op != wire::RESP_STATS {
            return Err(FleetError::UnexpectedOpcode(op));
        }
        wire::decode_stats(&body)
    }

    /// Fetches the daemon's extended metrics (request counters and
    /// latency histograms) as Prometheus text — the `STATS_V2` exchange.
    /// A daemon predating the opcode answers [`wire::RESP_ERR`], which
    /// surfaces here as [`FleetError::Daemon`]; callers degrade to
    /// [`daemon_stats`](FleetClient::daemon_stats).
    pub fn daemon_stats_v2(&mut self) -> Result<String, FleetError> {
        let (op, body) = self.call(wire::STATS_V2, &[])?;
        if op != wire::RESP_STATS_V2 {
            return Err(FleetError::UnexpectedOpcode(op));
        }
        String::from_utf8(body).map_err(|_| FleetError::BadFrame("stats text is not UTF-8"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), FleetError> {
        self.expect_ack(wire::PING, &[]).map(|_| ())
    }

    /// Asks the daemon to exit its accept loop (test/CI harness use).
    pub fn shutdown(&mut self) -> Result<(), FleetError> {
        self.expect_ack(wire::SHUTDOWN, &[]).map(|_| ())
    }
}

/// The tier-mutation observer a fleet-attached tenant registers on its
/// [`SharedCache`]: inserts become pending publications, family
/// evictions become pending eviction notices, both drained by the next
/// [`FleetSession::sync`]. The `suppress` latch masks the echo while
/// the session itself applies daemon-fetched entries — without it every
/// fetch would immediately republish.
#[derive(Default)]
pub(crate) struct FleetTracker {
    pending_pubs: Mutex<HashSet<MethodKey>>,
    pending_evicts: Mutex<HashSet<MethodKey>>,
    suppress: AtomicBool,
}

impl FleetTracker {
    fn take_pubs(&self) -> HashSet<MethodKey> {
        std::mem::take(&mut self.pending_pubs.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn take_evicts(&self) -> Vec<MethodKey> {
        let mut set = self
            .pending_evicts
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut keys: Vec<MethodKey> = std::mem::take(&mut *set).into_iter().collect();
        keys.sort();
        keys
    }

    fn restore_pubs(&self, keys: HashSet<MethodKey>) {
        self.pending_pubs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend(keys);
    }

    fn restore_evicts(&self, keys: &[MethodKey]) {
        self.pending_evicts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend(keys.iter().copied());
    }

    /// Masks tracking until the guard drops (daemon-fetch application).
    fn suppressed(self: &Arc<Self>) -> SuppressGuard {
        self.suppress.store(true, Ordering::Release);
        SuppressGuard {
            tracker: self.clone(),
        }
    }
}

struct SuppressGuard {
    tracker: Arc<FleetTracker>,
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        self.tracker.suppress.store(false, Ordering::Release);
    }
}

impl CacheEventHook for FleetTracker {
    fn on_insert(&self, key: &MethodKey) {
        if self.suppress.load(Ordering::Acquire) {
            return;
        }
        self.pending_pubs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(*key);
    }

    fn on_evict(&self, key: &MethodKey) {
        if self.suppress.load(Ordering::Acquire) {
            return;
        }
        self.pending_evicts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(*key);
    }
}

/// What one fleet sync round ([`crate::Hummingbird::fleet_sync`]) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetSyncReport {
    /// Locally derived entries published back to the daemon.
    pub published: usize,
    /// Eviction notices sent (families this tenant's type-table
    /// mutations retired).
    pub evict_notices: usize,
    /// Entries in the fetched snapshot (zero when the fleet is quiet —
    /// the steady-state delta).
    pub fetched_entries: usize,
    /// Tombstoned families applied from the fetch.
    pub tombstones: usize,
    /// True when the fetch was served as a delta (false: full snapshot,
    /// including the watermark-invalid fallback).
    pub delta: bool,
}

/// A tenant's live attachment to the fleet daemon: the connected
/// client, the mutation tracker, and the current watermark. Created by
/// `HummingbirdBuilder::fleet_socket`, driven by
/// `Hummingbird::fleet_sync`.
pub struct FleetSession {
    client: FleetClient,
    tracker: Arc<FleetTracker>,
    shared: Arc<SharedCache>,
    watermark: Option<FleetWatermark>,
}

impl FleetSession {
    /// Connects to the daemon at `path`, registers the mutation tracker
    /// on `shared`, and warm-boots the tier with a full snapshot fetch.
    /// Returns the session and the number of candidate derivations
    /// loaded.
    ///
    /// # Errors
    ///
    /// Any [`FleetError`]; on `Err` the tier holds whatever the fetch
    /// managed to validate (snapshot loads are all-or-nothing, so in
    /// practice: nothing) and the caller degrades to local checking.
    pub(crate) fn attach(
        path: &Path,
        shared: Arc<SharedCache>,
    ) -> Result<(FleetSession, usize), FleetError> {
        let mut client = FleetClient::connect(path)?;
        let tracker = Arc::new(FleetTracker::default());
        shared.add_event_hook(tracker.clone());
        let resp = client.fetch_full()?;
        let snap = CacheSnapshot::from_bytes(&resp.snapshot).map_err(FleetError::Snapshot)?;
        let loaded = {
            let _mask = tracker.suppressed();
            shared.load_snapshot(&snap).map_err(FleetError::Snapshot)?
        };
        Ok((
            FleetSession {
                client,
                tracker,
                shared,
                watermark: Some(FleetWatermark {
                    seq: resp.seq,
                    epochs: resp.epochs,
                }),
            },
            loaded,
        ))
    }

    /// The watermark of the last successful fetch.
    pub fn watermark(&self) -> Option<FleetWatermark> {
        self.watermark
    }

    /// One synchronization round: drain pending eviction notices and
    /// publications to the daemon, then fetch the delta past the
    /// current watermark and apply it (tombstones evicted, entries
    /// loaded as candidates, covered local derivations retired so the
    /// next dispatch re-validates). Failed sends restore their pending
    /// state, so a transient error loses nothing.
    pub(crate) fn sync(
        &mut self,
        engine: &Engine,
        interp: &mut Interp,
    ) -> Result<FleetSyncReport, FleetError> {
        // Land queued scheduler results and type-table events first so
        // the tracker has seen every local mutation up to "now".
        engine.process_events(interp);

        let obs = engine.obs();
        let mut report = FleetSyncReport::default();

        let evicts = self.tracker.take_evicts();
        if !evicts.is_empty() {
            if let Err(e) = self.client.evict(&evicts) {
                self.tracker.restore_evicts(&evicts);
                return Err(e);
            }
            report.evict_notices = evicts.len();
            if let Some(obs) = &obs {
                obs.record(hb_obs::EventKind::FleetEvict, crate::obs::fleet_key());
            }
        }

        let pubs = self.tracker.take_pubs();
        if !pubs.is_empty() {
            let snap = self.shared.snapshot_filtered(|k| pubs.contains(k));
            // Keys whose families were since evicted serialize nothing;
            // only a non-empty snapshot is worth a frame.
            if snap.entry_count() > 0 {
                let epochs = (
                    engine.rdl.table_fingerprint(),
                    interp.registry.shape_fingerprint(),
                    engine.rdl.var_fingerprint(),
                );
                let t_pub = std::time::Instant::now();
                if let Err(e) = self.client.publish(epochs, &snap.to_bytes()) {
                    self.tracker.restore_pubs(pubs);
                    return Err(e);
                }
                if let Some(obs) = &obs {
                    let ns = t_pub.elapsed().as_nanos() as u64;
                    obs.fleet_publish.record(ns);
                    obs.record_span(hb_obs::EventKind::FleetPublish, crate::obs::fleet_key(), ns);
                }
                report.published = snap.entry_count();
            }
        }

        let t_fetch = std::time::Instant::now();
        let resp = match self.watermark {
            Some(w) => self.client.fetch_delta(w)?,
            None => self.client.fetch_full()?,
        };
        if let Some(obs) = &obs {
            let ns = t_fetch.elapsed().as_nanos() as u64;
            obs.fleet_fetch.record(ns);
            let kind = if resp.delta {
                hb_obs::EventKind::FleetDelta
            } else {
                hb_obs::EventKind::FleetFetch
            };
            obs.record_span(kind, crate::obs::fleet_key(), ns);
        }
        let snap = CacheSnapshot::from_bytes(&resp.snapshot).map_err(FleetError::Snapshot)?;
        report.fetched_entries = snap.entry_count();
        report.tombstones = resp.tombstones.len();
        report.delta = resp.delta;
        {
            // Applying the daemon's view must not echo back as pending
            // publications/evictions next round.
            let _mask = self.tracker.suppressed();
            for key in &resp.tombstones {
                self.shared.evict_method(key);
            }
            if report.fetched_entries > 0 {
                // Loads into the shared tier and retires covered local
                // derivations (fast entries deoptimized) so the next
                // dispatch re-validates against the fresh entries.
                engine.load_snapshot(&snap).map_err(FleetError::Snapshot)?;
            }
        }
        // Tombstoned families must re-validate locally too.
        engine.retire_methods(&resp.tombstones);
        self.watermark = Some(FleetWatermark {
            seq: resp.seq,
            epochs: resp.epochs,
        });
        let (fetches, deltas) = if resp.delta { (0, 1) } else { (1, 0) };
        engine.add_fleet_counters(
            fetches,
            deltas,
            report.published as u64,
            report.evict_notices as u64,
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(c: &str, m: &str) -> MethodKey {
        MethodKey::instance(c, m)
    }

    #[test]
    fn frames_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        wire::write_frame(&mut buf, wire::PUBLISH, b"payload").unwrap();
        let (op, body) = wire::read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(op, wire::PUBLISH);
        assert_eq!(body, b"payload");
    }

    #[test]
    fn read_frame_rejects_zero_and_oversized_lengths() {
        let zero = 0u32.to_le_bytes();
        assert!(matches!(
            wire::read_frame(&mut zero.as_slice()),
            Err(FleetError::BadFrame(_))
        ));
        let huge = (wire::MAX_FRAME + 1).to_le_bytes();
        assert!(matches!(
            wire::read_frame(&mut huge.as_slice()),
            Err(FleetError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn snapshot_resp_round_trips_with_string_keys() {
        let resp = wire::SnapshotResp {
            delta: true,
            seq: 42,
            epochs: (1, 2, 3),
            tombstones: vec![k("Talk", "owner?"), MethodKey::class_level("Talk", "find")],
            snapshot: vec![9, 9, 9],
        };
        let payload = wire::encode_snapshot_resp(&resp);
        let back = wire::decode_snapshot_resp(&payload).unwrap();
        assert_eq!(back.delta, resp.delta);
        assert_eq!(back.seq, resp.seq);
        assert_eq!(back.epochs, resp.epochs);
        assert_eq!(back.tombstones, resp.tombstones);
        assert_eq!(back.snapshot, resp.snapshot);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_bytes() {
        let resp = wire::SnapshotResp {
            delta: false,
            seq: 7,
            epochs: (0, 0, 0),
            tombstones: vec![k("Talk", "title")],
            snapshot: vec![1, 2, 3, 4],
        };
        let payload = wire::encode_snapshot_resp(&resp);
        for cut in 1..payload.len() {
            assert!(
                wire::decode_snapshot_resp(&payload[..cut]).is_err(),
                "truncation at {cut} must be a typed error"
            );
        }
        let mut long = payload.clone();
        long.push(0);
        assert!(matches!(
            wire::decode_snapshot_resp(&long),
            Err(FleetError::BadFrame(_))
        ));
    }

    #[test]
    fn stats_round_trip() {
        let s = wire::DaemonStats {
            entries: 1,
            seq: 2,
            fetches: 3,
            deltas: 4,
            publishes: 5,
            evictions: 6,
            compactions: 7,
            writebacks: 8,
        };
        assert_eq!(wire::decode_stats(&wire::encode_stats(&s)).unwrap(), s);
    }

    #[test]
    fn tracker_records_and_suppresses() {
        let tracker = Arc::new(FleetTracker::default());
        tracker.on_insert(&k("Talk", "title"));
        tracker.on_evict(&k("Talk", "owner?"));
        {
            let _mask = tracker.suppressed();
            tracker.on_insert(&k("User", "name"));
            tracker.on_evict(&k("User", "name"));
        }
        tracker.on_insert(&k("Talk", "slug"));
        let pubs = tracker.take_pubs();
        assert!(pubs.contains(&k("Talk", "title")));
        assert!(pubs.contains(&k("Talk", "slug")));
        assert!(!pubs.contains(&k("User", "name")), "suppressed");
        assert_eq!(tracker.take_evicts(), vec![k("Talk", "owner?")]);
    }
}
