//! Engine integration tests: just-in-time checking, memoisation,
//! invalidation, dynamic checks, metaprogramming flows from the paper's
//! figures, and dev-mode reloading.

use hummingbird::{ErrorKind, Hummingbird, MethodKey, Mode};

fn hb() -> Hummingbird {
    Hummingbird::builder().build()
}

#[test]
fn checks_on_first_call_and_caches() {
    let mut hb = hb();
    hb.eval(
        r#"
class Talk
  type :owner?, "(String) -> %bool", { "check" => true }
  def owner?(user)
    user == "alice"
  end
end
t = Talk.new
t.owner?("alice")
t.owner?("bob")
t.owner?("carol")
"#,
    )
    .unwrap();
    let s = hb.stats();
    assert_eq!(s.checks_performed, 1, "checked once at first call");
    assert_eq!(s.cache_hits, 2, "later calls hit the cache");
}

#[test]
fn no_cache_mode_rechecks_every_call() {
    let mut hb = Hummingbird::builder().mode(Mode::NoCache).build();
    hb.eval(
        r#"
class Talk
  type :go, "() -> Fixnum", { "check" => true }
  def go
    1
  end
end
t = Talk.new
t.go
t.go
t.go
"#,
    )
    .unwrap();
    let s = hb.stats();
    assert_eq!(s.checks_performed, 3);
    assert_eq!(s.cache_hits, 0);
}

#[test]
fn original_mode_does_nothing() {
    let mut hb = Hummingbird::builder().mode(Mode::Original).build();
    hb.eval(
        r#"
class Talk
  type :go, "() -> Fixnum", { "check" => true }
  def go
    "not an int"
  end
end
Talk.new.go
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 0);
    assert_eq!(hb.stats().intercepted_calls, 0);
}

#[test]
fn type_error_is_blame_at_call() {
    let mut hb = hb();
    // Loading the class is fine (bodies are not checked at definition,
    // paper rule (TDef)).
    hb.eval(
        r#"
class Talk
  type :bad, "() -> Fixnum", { "check" => true }
  def bad
    "string"
  end
end
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 0);
    // The error appears when the method is first called.
    let err = hb.eval("Talk.new.bad").unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    assert!(err.message.contains("Talk#bad"), "{}", err.message);
}

#[test]
fn blame_is_not_rescuable() {
    let mut hb = hb();
    let err = hb
        .eval(
            r#"
class T
  type :bad, "() -> Fixnum", { "check" => true }
  def bad
    "s"
  end
end
begin
  T.new.bad
rescue => e
  "swallowed"
end
"#,
        )
        .unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
}

#[test]
fn def_and_type_order_is_free() {
    // Paper: "there is no ordering dependency between def and type".
    let mut hb = hb();
    hb.eval(
        r#"
class A
  def m(x)
    x + 1
  end
end
class A
  type :m, "(Fixnum) -> Fixnum", { "check" => true }
end
A.new.m(1)
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 1);
}

#[test]
fn calling_method_typed_in_same_body_before_execution_fails() {
    // The paper's §3 example: a method that defines B.m, types it, then
    // calls it — the type expression has not executed when the body is
    // checked, so the call has no type.
    let mut hb = hb();
    let err = hb
        .eval(
            r#"
class B
end
class A
  type :m, "() -> %any", { "check" => true }
  def m
    B.define_method(:bm) { 1 }
    type B, :bm, "() -> Fixnum"
    B.new.bm
  end
end
A.new.m
"#,
        )
        .unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    assert!(err.message.contains("no type for B#bm"), "{}", err.message);
}

#[test]
fn figure2_dynamic_method_with_generated_type_checks() {
    // Fig. 2 end-to-end: define_dynamic_method creates methods and a pre
    // hook supplies their types; bodies are checked at first call.
    let mut hb = hb();
    hb.eval(
        r##"
module RolifyDynamic
  def define_dynamic_method(role_name)
    self.class.class_eval do
      define_method("is_#{role_name}?".to_sym) do
        has_role?("#{role_name}")
      end if !method_defined?("is_#{role_name}?".to_sym)
    end
  end
end
class User
  include RolifyDynamic
  type :has_role?, "(String) -> %bool", { "check" => true }
  def initialize
    @roles = []
  end
  var_type :@roles, "Array<String>"
  def has_role?(r)
    @roles.include?(r)
  end
end
pre User, :define_dynamic_method do |role_name|
  type "is_#{role_name}?", "() -> %bool", { "check" => true }
  true
end
user = User.new
user.define_dynamic_method("professor")
user.is_professor?
"##,
    )
    .unwrap();
    let s = hb.stats();
    // has_role? and is_professor? both statically checked.
    assert!(
        s.checked_methods.contains("User#is_professor?"),
        "{:?}",
        s.checked_methods
    );
    assert!(s.checked_methods.contains("User#has_role?"));
    // The generated annotation counts as dynamically generated and used.
    let rs = hb.rdl_stats();
    assert!(rs.dynamic_generated >= 1);
    assert!(rs.dynamic_used >= 1);
}

#[test]
fn figure3_struct_add_types_checks_consumer() {
    let mut hb = hb();
    hb.eval(
        r##"
class Struct
  def self.add_types(*types)
    members.zip(types).each {|pair|
      name = pair[0]
      t = pair[1]
      self.class_eval do
        type name, "() -> #{t}"
        type "#{name}=", "(#{t}) -> #{t}"
      end
    }
  end
end
Transaction = Struct.new(:kind, :account_name, :amount)
Transaction.add_types("String", "String", "String")
class ApplicationRunner
  type :process, "(Array<Transaction>) -> Array<String>", { "check" => true }
  def process(transactions)
    transactions.map { |t| t.account_name.upcase }
  end
end
ApplicationRunner.new.process([Transaction.new("credit", "alice", "100")])
"##,
    )
    .unwrap();
    let s = hb.stats();
    assert!(s.checked_methods.contains("ApplicationRunner#process"));
    let rs = hb.rdl_stats();
    assert!(rs.dynamic_generated >= 6, "{rs:?}");
}

#[test]
fn redefinition_invalidates_and_rechecks() {
    let mut hb = hb();
    hb.eval(
        r#"
class A
  type :m, "() -> Fixnum", { "check" => true }
  def m
    1
  end
end
A.new.m
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 1);
    // Redefine with a different body: next call rechecks.
    hb.eval("class A\n def m\n  2\n end\nend\nA.new.m").unwrap();
    assert_eq!(hb.stats().checks_performed, 2);
    // Redefine with a type-incorrect body: next call blames.
    let err = hb
        .eval("class A\n def m\n  \"s\"\n end\nend\nA.new.m")
        .unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
}

#[test]
fn dependent_invalidation_on_type_replace() {
    let mut hb = hb();
    hb.eval(
        r#"
class Helper
  type :value, "() -> Fixnum", { "check" => true }
  def value
    41
  end
end
class UserOfHelper
  type :compute, "(Helper) -> Fixnum", { "check" => true }
  def compute(h)
    h.value + 1
  end
end
UserOfHelper.new.compute(Helper.new)
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 2);
    // Replace Helper#value's type: compute's cached derivation used it, so
    // it must recheck — and now fail, since value returns String.
    let err = hb
        .eval(
            r#"
class Helper
  type :value, "() -> String", { "replace" => true }
  def value
    "forty-one"
  end
end
UserOfHelper.new.compute(Helper.new)
"#,
        )
        .unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    assert!(
        err.message.contains("UserOfHelper#compute"),
        "{}",
        err.message
    );
}

#[test]
fn adding_intersection_arm_keeps_dependents() {
    // §4 "Cache Invalidation": a new arm re-checks the method itself but
    // does not invalidate dependents.
    let mut hb = hb();
    hb.eval(
        r#"
class H
  type :v, "() -> Fixnum", { "check" => true }
  def v
    1
  end
end
class U
  type :c, "(H) -> Fixnum", { "check" => true }
  def c(h)
    h.v + 1
  end
end
U.new.c(H.new)
"#,
    )
    .unwrap();
    let before = hb.stats();
    assert_eq!(before.checks_performed, 2);
    // Add an arm to H#v (the body satisfies both: 1 is a Fixnum... second
    // arm takes an optional arg form).
    hb.eval("class H\n type :v, \"(?Fixnum) -> Fixnum\"\nend")
        .unwrap();
    hb.eval("U.new.c(H.new)").unwrap();
    let after = hb.stats();
    // H#v rechecked (against both arms); U#c stayed cached.
    assert_eq!(after.dependent_invalidations, 0);
    assert!(after.checked_methods.contains("H#v"));
    assert_eq!(
        after.checks_performed,
        before.checks_performed + 1,
        "only H#v rechecked"
    );
}

#[test]
fn module_methods_cached_per_mixin_class() {
    // §4 "Modules": M#foo checks separately as C#foo and D#foo.
    let mut hb = hb();
    hb.eval(
        r#"
module M
  def foo(x)
    bar(x)
  end
end
class C
  include M
  type :foo, "(Fixnum) -> Fixnum", { "check" => true }
  type :bar, "(Fixnum) -> Fixnum", { "check" => true }
  def bar(x)
    x + 1
  end
end
class D
  include M
  type :foo, "(Fixnum) -> String", { "check" => true }
  type :bar, "(Fixnum) -> String", { "check" => true }
  def bar(x)
    x.to_s
  end
end
C.new.foo(1)
D.new.foo(2)
"#,
    )
    .unwrap();
    let s = hb.stats();
    assert!(s.checked_methods.contains("C#foo"));
    assert!(s.checked_methods.contains("D#foo"));
    assert_eq!(s.checks_performed, 4);
}

#[test]
fn dynamic_arg_check_from_unchecked_caller() {
    let mut hb = hb();
    hb.eval(
        r#"
class T
  type :takes_int, "(Fixnum) -> Fixnum", { "check" => true }
  def takes_int(x)
    x + 1
  end
end
"#,
    )
    .unwrap();
    // Top-level caller is unchecked: args are dynamically checked.
    hb.eval("T.new.takes_int(1)").unwrap();
    assert!(hb.stats().dyn_arg_checks >= 1);
    let err = hb.eval("T.new.takes_int(\"oops\")").unwrap_err();
    assert_eq!(err.kind, ErrorKind::ContractBlame);
}

#[test]
fn dyn_checks_skipped_between_checked_methods() {
    let mut hb = hb();
    hb.eval(
        r#"
class T
  type :outer, "() -> Fixnum", { "check" => true }
  type :inner, "(Fixnum) -> Fixnum", { "check" => true }
  def outer
    inner(5)
  end
  def inner(x)
    x + 1
  end
end
"#,
    )
    .unwrap();
    hb.eval("T.new.outer").unwrap();
    let with_elim = hb.stats().dyn_arg_checks;
    // Only the outer call (from the unchecked top level) is dyn-checked;
    // the inner call comes from a statically checked frame.
    assert_eq!(with_elim, 1, "inner call must skip the dynamic check");
}

#[test]
fn always_dyn_check_flag_overrides_elimination() {
    let mut hb = hb();
    hb.eval(
        r#"
class T
  type :outer, "() -> Fixnum", { "check" => true }
  type :params_like, "(Fixnum) -> Fixnum", { "check" => true, "dyn" => true }
  def outer
    params_like(5)
  end
  def params_like(x)
    x + 1
  end
end
"#,
    )
    .unwrap();
    hb.eval("T.new.outer").unwrap();
    assert_eq!(
        hb.stats().dyn_arg_checks,
        2,
        "params-style methods always check"
    );
}

#[test]
fn rdl_cast_checks_dynamically_and_promotes_statically() {
    let mut hb = hb();
    hb.eval(
        r#"
class Loader
  type :load_ints, "(Array) -> Fixnum", { "check" => true }
  def load_ints(raw)
    xs = raw.rdl_cast("Array<Fixnum>")
    xs[0] + 1
  end
end
Loader.new.load_ints([1, 2, 3])
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().cast_sites.len(), 1);
    // A failing cast is contract blame.
    let err = hb.eval("Loader.new.load_ints([1, \"x\"])").unwrap_err();
    assert_eq!(err.kind, ErrorKind::ContractBlame);
}

#[test]
fn reload_unchanged_method_keeps_cache() {
    let mut hb = hb();
    let v1 = r#"
class A
  def stable
    1
  end
  def changing
    1
  end
end
"#;
    hb.load_file("a.rb", v1).unwrap();
    hb.eval(
        r#"
class A
  type :stable, "() -> Fixnum", { "check" => true }
  type :changing, "() -> Fixnum", { "check" => true }
end
A.new.stable
A.new.changing
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 2);
    // Reload with only `changing` changed.
    let v2 = r#"
class A
  def stable
    1
  end
  def changing
    2
  end
end
"#;
    let report = hb.reload_file("a.rb", v2).unwrap();
    assert_eq!(report.changed, vec!["A#changing"]);
    assert!(report.added.is_empty());
    assert!(report.removed.is_empty());
    hb.eval("A.new.stable\nA.new.changing").unwrap();
    let s = hb.stats();
    // Only `changing` rechecked; `stable` still cached.
    assert_eq!(s.checks_performed, 3, "{:?}", s.checked_methods);
}

#[test]
fn reload_detects_added_and_removed() {
    let mut hb = hb();
    hb.load_file("b.rb", "class B\n def gone\n 1\n end\nend")
        .unwrap();
    let report = hb
        .reload_file("b.rb", "class B\n def fresh\n 2\n end\nend")
        .unwrap();
    assert_eq!(report.added, vec!["B#fresh"]);
    assert_eq!(report.removed, vec!["B#gone"]);
}

#[test]
fn reload_invalidates_dependents_of_changed_methods() {
    let mut hb = hb();
    hb.load_file(
        "c.rb",
        r#"
class Dep
  def base
    1
  end
  def caller_m
    base + 1
  end
end
"#,
    )
    .unwrap();
    hb.eval(
        r#"
class Dep
  type :base, "() -> Fixnum", { "check" => true }
  type :caller_m, "() -> Fixnum", { "check" => true }
end
Dep.new.caller_m
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 2);
    let report = hb
        .reload_file(
            "c.rb",
            r#"
class Dep
  def base
    2
  end
  def caller_m
    base + 1
  end
end
"#,
        )
        .unwrap();
    assert_eq!(report.changed, vec!["Dep#base"]);
    hb.eval("Dep.new.caller_m").unwrap();
    // base changed → base rechecked; caller_m depends on base's type...
    // which did not change, but the paper's reload invalidates dependents
    // of changed methods, so caller_m rechecks too.
    let s = hb.stats();
    assert!(s.checks_performed >= 4, "{}", s.checks_performed);
}

#[test]
fn phases_count_annotation_check_alternations() {
    let mut hb = hb();
    hb.eval(
        r#"
class P
  type :a, "() -> Fixnum", { "check" => true }
  type :b, "() -> Fixnum", { "check" => true }
  def a
    1
  end
  def b
    2
  end
end
P.new.a
P.new.b
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().phases, 1, "annotations then checks = one phase");
    hb.eval(
        r#"
class P
  type :c, "() -> Fixnum", { "check" => true }
  def c
    3
  end
end
P.new.c
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().phases, 2);
}

#[test]
fn trusted_annotations_are_not_statically_checked() {
    let mut hb = hb();
    hb.eval(
        r#"
class Lib
  type :helper, "() -> Fixnum"
  def helper
    "actually a string"
  end
end
Lib.new.helper
"#,
    )
    .unwrap();
    // No static check ran (trusted), so the lie is not caught statically.
    assert_eq!(hb.stats().checks_performed, 0);
}

#[test]
fn unannotated_methods_run_unchecked() {
    let mut hb = hb();
    hb.eval("class Z\n def free\n \"anything\"\n end\nend\nZ.new.free")
        .unwrap();
    assert_eq!(hb.stats().checks_performed, 0);
}

#[test]
fn class_level_methods_check_too() {
    let mut hb = hb();
    hb.eval(
        r#"
class Registry
  type "self.register", "(String) -> String", { "check" => true }
  def self.register(name)
    name.upcase
  end
end
Registry.register("x")
"#,
    )
    .unwrap();
    assert!(hb.stats().checked_methods.contains("Registry.register"));
}

#[test]
fn check_error_inside_block_is_reported() {
    let mut hb = hb();
    let err = hb
        .eval(
            r#"
class W
  type :sum_names, "(Array<String>) -> Fixnum", { "check" => true }
  def sum_names(names)
    total = 0
    names.each do |n|
      total += n
    end
    total
  end
end
W.new.sum_names(["a"])
"#,
        )
        .unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    assert!(
        err.message.contains("Fixnum#+") || err.message.contains("argument type mismatch"),
        "{}",
        err.message
    );
}

#[test]
fn cache_dump_reports_dependency_sets() {
    use hummingbird::MethodKey;
    let mut hb = hb();
    hb.eval(
        r#"
class Chain3
  type :base, "() -> Fixnum", { "check" => true }
  type :mid, "() -> Fixnum", { "check" => true }
  type :top, "() -> Fixnum", { "check" => true }
  def base
    1
  end
  def mid
    base + 1
  end
  def top
    mid + 1
  end
end
Chain3.new.top
"#,
    )
    .unwrap();
    let dump = hb.engine.cache_dump();
    assert_eq!(dump.len(), 3, "{dump:?}");
    // Sorted by interned key, alphabetically: base, mid, top.
    assert_eq!(dump[0].key, MethodKey::instance("Chain3", "base"));
    let top = dump
        .iter()
        .find(|e| e.key == MethodKey::instance("Chain3", "top"))
        .unwrap();
    assert!(
        top.deps.contains(&MethodKey::instance("Chain3", "mid")),
        "top's derivation consulted mid's annotation: {top:?}"
    );
    let mid = dump
        .iter()
        .find(|e| e.key == MethodKey::instance("Chain3", "mid"))
        .unwrap();
    assert!(mid.deps.contains(&MethodKey::instance("Chain3", "base")));
    // Every entry's recorded sig_version matches the live table's.
    for e in &dump {
        let entry = hb.rdl.entry(&e.key).expect("annotation exists");
        assert_eq!(e.sig_version, entry.version, "{:?}", e.key);
    }
}

#[test]
fn dependent_chain_invalidation_is_one_level() {
    // Definition 1(2): replacing base's type invalidates base and the
    // entries that used base's type (mid) — but not mid's dependents (top),
    // whose consulted types are all unchanged.
    use hummingbird::MethodKey;
    let mut hb = hb();
    hb.eval(
        r#"
class Chain3
  type :base, "() -> Fixnum", { "check" => true }
  type :mid, "() -> Fixnum", { "check" => true }
  type :top, "() -> Fixnum", { "check" => true }
  def base
    1
  end
  def mid
    base + 1
  end
  def top
    mid + 1
  end
end
Chain3.new.top
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 3);
    hb.eval("class Chain3\n type :base, \"() -> Fixnum\", { \"replace\" => true }\nend")
        .unwrap();
    hb.eval("Chain3.new.top").unwrap();
    let s = hb.stats();
    // top stayed cached (a hit); base and mid re-checked.
    assert_eq!(s.checks_performed, 5, "{:?}", hb.engine.cache_dump());
    assert_eq!(s.dependent_invalidations, 1, "only mid was a dependent");
    let dump = hb.engine.cache_dump();
    assert!(dump
        .iter()
        .any(|e| e.key == MethodKey::instance("Chain3", "top")));
}

#[test]
fn module_mixin_cache_keys_are_per_receiver_class() {
    // §4 "Modules": one method body in the module yields one interned cache
    // key per mix-in class, each with its own dependency set.
    use hummingbird::MethodKey;
    let mut hb = hb();
    hb.eval(
        r#"
module Greeter
  def greet(x)
    hello(x)
  end
end
class CG
  include Greeter
  type :greet, "(Fixnum) -> Fixnum", { "check" => true }
  type :hello, "(Fixnum) -> Fixnum", { "check" => true }
  def hello(x)
    x + 1
  end
end
class DG
  include Greeter
  type :greet, "(Fixnum) -> String", { "check" => true }
  type :hello, "(Fixnum) -> String", { "check" => true }
  def hello(x)
    x.to_s
  end
end
CG.new.greet(1)
DG.new.greet(2)
"#,
    )
    .unwrap();
    let dump = hb.engine.cache_dump();
    let cg = dump
        .iter()
        .find(|e| e.key == MethodKey::instance("CG", "greet"))
        .expect("module method cached under CG");
    let dg = dump
        .iter()
        .find(|e| e.key == MethodKey::instance("DG", "greet"))
        .expect("module method cached under DG");
    // Same body (same lowered method entry), distinct per-class keys and
    // per-class dependency sets.
    assert_eq!(cg.method_entry_id, dg.method_entry_id);
    assert!(cg.deps.contains(&MethodKey::instance("CG", "hello")));
    assert!(dg.deps.contains(&MethodKey::instance("DG", "hello")));
    assert!(!cg.deps.contains(&MethodKey::instance("DG", "hello")));
    // Invalidating DG#hello's type must not touch CG's cached derivation.
    hb.eval("class DG\n type :hello, \"(Fixnum) -> String\", { \"replace\" => true }\nend")
        .unwrap();
    hb.eval("CG.new.greet(3)\nDG.new.greet(4)").unwrap();
    let s = hb.stats();
    assert!(
        s.checked_methods.contains("CG#greet") && s.checked_methods.contains("DG#greet"),
        "{:?}",
        s.checked_methods
    );
    assert_eq!(
        s.dependent_invalidations, 1,
        "only DG#greet depended on DG#hello"
    );
}

// ----- invalidation-soundness bug sweep (this PR's satellite fixes) --------

#[test]
fn stale_reverse_dep_edges_are_pruned_on_recheck() {
    // Bug: edges from a superseded derivation lingered in `dependents`,
    // so changing a dependency the *current* derivation never consulted
    // spuriously invalidated (and re-checked) the method.
    let mut hb = hb();
    hb.eval(
        r#"
class H1
  type :h, "() -> Fixnum"
  def h
    1
  end
end
class H2
  type :h, "() -> Fixnum"
  def h
    2
  end
end
class Caller
  type :m, "() -> Fixnum", { "check" => true }
  def m
    H1.new.h
  end
end
Caller.new.m
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 1);
    // Redefine the body to consult H2 instead of H1; the recheck builds a
    // fresh derivation whose dependency set no longer mentions H1#h.
    hb.eval("class Caller\n def m\n  H2.new.h\n end\nend\nCaller.new.m")
        .unwrap();
    assert_eq!(hb.stats().checks_performed, 2);
    let dump = hb.engine.cache_dump();
    let entry = dump
        .iter()
        .find(|e| e.key == MethodKey::instance("Caller", "m"))
        .expect("Caller#m cached");
    assert!(!entry.deps.contains(&MethodKey::instance("H1", "h")));
    // Replacing H1#h must now be invisible to Caller#m: no spurious
    // dependent invalidation, no third check.
    hb.eval("class H1\n type :h, \"() -> String\", { \"replace\" => true }\nend\nCaller.new.m")
        .unwrap();
    let s = hb.stats();
    assert_eq!(
        s.dependent_invalidations, 0,
        "stale H1#h -> Caller#m edge must have been pruned"
    );
    assert_eq!(s.checks_performed, 2, "no spurious recheck");
}

#[test]
fn invalidations_count_only_actual_removals() {
    // Bug: `invalidate` bumped `stats.invalidations` even when the key had
    // no cache entry, over-counting Table-2-style reports.
    let mut hb = hb();
    hb.eval(
        r#"
class Quiet
  type :never_called, "() -> Fixnum", { "check" => true }
  def never_called
    1
  end
end
"#,
    )
    .unwrap();
    // Replace the type of a method that was never called (nothing cached),
    // then force event processing with an unrelated checked call.
    hb.eval(
        r#"
class Quiet
  type :never_called, "() -> String", { "replace" => true }
end
class Unrelated
  type :go, "() -> Fixnum", { "check" => true }
  def go
    7
  end
end
Unrelated.new.go
"#,
    )
    .unwrap();
    let s = hb.stats();
    assert_eq!(
        s.invalidations, 0,
        "no entry was cached, so nothing was invalidated"
    );
    assert_eq!(s.dependent_invalidations, 0);
}

#[test]
fn new_shadowing_annotation_invalidates_dependents() {
    // Bug (Definition 1 soundness hole): a brand-new annotation that
    // shadows an ancestor's resolution left dependents cached against the
    // wrong signature.
    let mut hb = hb();
    hb.eval(
        r#"
class Animal
  type :sound, "() -> String"
  def sound
    "generic"
  end
end
class Dog < Animal
end
class Speaker
  type :speak, "() -> String", { "check" => true }
  def speak
    Dog.new.sound
  end
end
Speaker.new.speak
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 1);
    let dump = hb.engine.cache_dump();
    let entry = dump
        .iter()
        .find(|e| e.key == MethodKey::instance("Speaker", "speak"))
        .expect("Speaker#speak cached");
    assert!(
        entry.deps.contains(&MethodKey::instance("Animal", "sound")),
        "derivation resolved sound along Dog's chain to Animal#sound"
    );
    // A new Dog#sound annotation shadows Animal#sound for Dog receivers;
    // the cached Speaker#speak derivation is now valid against the wrong
    // signature and must be re-checked — which fails, since sound now
    // returns Fixnum while speak is declared to return String.
    let err = hb
        .eval(
            r#"
class Dog
  type :sound, "() -> Fixnum"
  def sound
    42
  end
end
Speaker.new.speak
"#,
        )
        .unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    assert!(err.message.contains("Speaker#speak"), "{}", err.message);
}

#[test]
fn first_ever_annotation_invalidates_negative_dependents() {
    // The None→Some half of resolution-change invalidation: a derivation
    // that relied on a lookup resolving to *nothing* (here `Box.new` with
    // an unannotated constructor, which the checker accepts with any
    // arguments) has no shadowed entry for the TypeAdded walk to find.
    // Without a negative dependency edge, the first-ever annotation for
    // that name leaves the derivation cached and the String argument
    // below never blames.
    let mut hb = hb();
    hb.eval(
        r#"
class Box
  def initialize(v)
    @v = v
  end
end
class Talk
  type :make, "() -> Box", { "check" => true }
  def make
    Box.new("str")
  end
end
Talk.new.make
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 1);
    // First-ever annotation on Box#initialize: Talk#make's derivation
    // relied on that lookup missing and must re-check — which blames,
    // since the constructor now requires a Fixnum.
    let err = hb
        .eval(
            r#"
class Box
  type :initialize, "(Fixnum) -> Box"
end
Talk.new.make
"#,
        )
        .unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    assert!(err.message.contains("Talk#make"), "{}", err.message);
}

#[test]
fn post_first_call_include_invalidates_shadowed_dependents() {
    // Same hole via `include`: mixing a module in after first calls
    // changes what the shadowed method resolves to.
    let mut hb = hb();
    hb.eval(
        r#"
module Loud
  type :sound, "() -> Fixnum"
  def sound
    99
  end
end
class Cat
  type :sound, "() -> String"
  def sound
    "meow"
  end
end
class Kitten < Cat
end
class Listener
  type :listen, "() -> String", { "check" => true }
  def listen
    Kitten.new.sound
  end
end
Listener.new.listen
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 1);
    // Include Loud into Kitten: Kitten's chain now resolves sound to
    // Loud#sound (Fixnum), so the cached Listener#listen derivation is
    // stale and its recheck must blame.
    let err = hb
        .eval("class Kitten\n include Loud\nend\nListener.new.listen")
        .unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    assert!(err.message.contains("Listener#listen"), "{}", err.message);
}

#[test]
fn module_annotation_shadows_through_including_classes() {
    // The shadowing annotation lives on a *module*: resolution changes for
    // every class that mixed the module in, not for chains through the
    // module's own (trivial) ancestor chain.
    let mut hb = hb();
    hb.eval(
        r#"
module Noisy
  def sound
    99
  end
end
class Animal
  type :sound, "() -> String"
  def sound
    "generic"
  end
end
class Dog < Animal
  include Noisy
end
class Speaker2
  type :speak, "() -> String", { "check" => true }
  def speak
    Dog.new.sound
  end
end
Speaker2.new.speak
"#,
    )
    .unwrap();
    assert_eq!(hb.stats().checks_performed, 1);
    // Annotating Noisy#sound now shadows Animal#sound along Dog's chain
    // ([Dog, Noisy, Animal]); the cached Speaker2#speak derivation is
    // stale and its recheck must blame (sound now returns Fixnum).
    let err = hb
        .eval("module Noisy\n type :sound, \"() -> Fixnum\"\nend\nSpeaker2.new.speak")
        .unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    assert!(err.message.contains("Speaker2#speak"), "{}", err.message);
}
