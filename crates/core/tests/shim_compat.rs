//! Compatibility coverage for the deprecated pre-v1 constructors.
//!
//! `Hummingbird::new` / `with_mode` / `new_tenant` / `tenant_with_mode`
//! are thin shims over [`hummingbird::HummingbirdBuilder`]; this is the
//! ONE in-repo caller allowed to use them, proving each shim still
//! assembles the configuration its name promises. Everything else in the
//! repo goes through the builder.

#![allow(deprecated)]

use hummingbird::{Hummingbird, Mode, SharedCache};
use std::sync::Arc;

const PROGRAM: &str = r#"
class Talk
  type :title_line, "(String) -> String", { "check" => true }
  def title_line(prefix)
    prefix + ": talk"
  end
end
Talk.new.title_line("PLDI")
"#;

#[test]
fn new_checks_and_caches_like_the_builder() {
    let mut hb = Hummingbird::new();
    hb.eval(PROGRAM).unwrap();
    hb.eval("Talk.new.title_line(\"again\")").unwrap();
    let s = hb.stats();
    assert_eq!(s.checks_performed, 1, "checked once");
    assert!(s.cache_hits >= 1, "second call hits the cache");
}

#[test]
fn with_mode_original_disables_interception() {
    let mut hb = Hummingbird::with_mode(Mode::Original);
    hb.eval("class Talk\n def t\n 1\n end\nend\nTalk.new.t")
        .unwrap();
    assert_eq!(hb.stats().intercepted_calls, 0);
}

#[test]
fn with_mode_nocache_rechecks_every_call() {
    let mut hb = Hummingbird::with_mode(Mode::NoCache);
    hb.eval(PROGRAM).unwrap();
    hb.eval("Talk.new.title_line(\"again\")").unwrap();
    assert_eq!(
        hb.stats().checks_performed,
        2,
        "no caching: every call checks"
    );
}

#[test]
fn tenant_shims_attach_the_shared_tier() {
    let shared = Arc::new(SharedCache::new());
    let mut t1 = Hummingbird::new_tenant(shared.clone());
    t1.eval(PROGRAM).unwrap();
    assert_eq!(t1.stats().checks_performed, 1);
    assert!(!shared.is_empty(), "the first tenant published");

    let mut t2 = Hummingbird::tenant_with_mode(Mode::Full, shared.clone());
    t2.eval(PROGRAM).unwrap();
    let s = t2.stats();
    assert_eq!(
        s.checks_performed, 0,
        "the second tenant adopts, never checks"
    );
    assert_eq!(s.shared_hits, 1);
}
