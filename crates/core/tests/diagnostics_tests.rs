//! Structured-diagnostics integration tests: the `TypeDiagnostic` surface
//! threaded through the engine — codes, blame labels, the dummy-span
//! both-spans fix, failed-check logging, and the eager `check_all` mode.

use hb_interp::{MethodBody, ProcVal, Scope, Value};
use hb_syntax::Span;
use hummingbird::{
    BlameTarget, CheckVerdict, DiagCode, ErrorKind, Hummingbird, LabelRole, MethodKey,
};
use std::rc::Rc;

#[test]
fn jit_blame_carries_structured_diagnostic() {
    let mut hb = Hummingbird::builder().build();
    hb.load_file(
        "talk.rb",
        r#"
class Talk
  type :pick, "(Symbol) -> Fixnum"
  def pick(k)
    1
  end
  type :go, "() -> Fixnum", { "check" => true }
  def go
    pick(true)
  end
end
"#,
    )
    .unwrap();
    let err = hb.eval("Talk.new.go").unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    let diag = err.diagnostic().expect("blame carries a diagnostic");
    assert_eq!(diag.code, DiagCode::ArgumentType);
    // The *callee's* annotation is blamed, machine-readably.
    let pick = MethodKey::instance("Talk", "pick");
    assert_eq!(diag.blame, BlameTarget::Annotation(pick));
    // Its label resolves to the real `type :pick` line in talk.rb.
    let label = diag
        .label(LabelRole::BlamedAnnotation)
        .expect("blame label");
    assert_eq!(label.method, Some(pick));
    let described = hb.source_map().describe(label.span);
    assert_eq!(
        described, "talk.rb:3:3",
        "annotation span resolves to the type call"
    );
    // The triggering call site is labeled too.
    let call = diag.label(LabelRole::CallSite).expect("call-site label");
    assert_eq!(hb.source_map().describe(call.span), "<eval>:1:1");
    // And the diagnostics accessor retains it.
    let all = hb.diagnostics();
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].code, DiagCode::ArgumentType);
}

#[test]
fn failed_checks_are_logged_with_outcome_and_duration() {
    let mut hb = Hummingbird::builder().build();
    hb.eval(
        r#"
class T
  type :ok, "() -> Fixnum", { "check" => true }
  def ok
    1
  end
  type :bad, "() -> Fixnum", { "check" => true }
  def bad
    "s"
  end
end
T.new.ok
"#,
    )
    .unwrap();
    hb.eval("T.new.bad").unwrap_err();
    let s = hb.stats();
    assert_eq!(s.checks_performed, 1, "only the passing check derives");
    assert_eq!(s.checks_failed, 1, "the blamed first call is visible now");
    let log = hb.engine.take_check_log();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].key, MethodKey::instance("T", "ok"));
    assert_eq!(log[0].outcome, CheckVerdict::Pass);
    assert_eq!(log[1].key, MethodKey::instance("T", "bad"));
    assert_eq!(log[1].outcome, CheckVerdict::Blame(DiagCode::ReturnType));
}

/// The engine.rs dummy-span satellite: when the checker positions an error
/// at synthesized code (a `define_method`-style proc with no source span),
/// the old surface silently dropped the checker span and showed only the
/// call site. Structured labels must emit *both*: primary = call site,
/// plus an explicit note that the blamed code is spanless.
#[test]
fn dummy_checker_span_keeps_call_site_and_note() {
    let mut hb = Hummingbird::builder().build();
    hb.eval("class Gen\nend").unwrap();
    // A method whose body is a synthesized proc (span = dummy), as the
    // Rails substrate generates for model accessors. The body returns a
    // String but the annotation declares Fixnum.
    let prog = hb_syntax::parse_program("\"not an int\"", "<gen>").unwrap();
    let cid = hb.interp.registry.lookup("Gen").unwrap();
    let proc_val = ProcVal {
        params: vec![],
        body: Rc::new(prog.body),
        env: Scope::root(),
        self_val: Value::Nil,
        definee: cid,
        span: Span::dummy(),
    };
    hb.interp
        .registry
        .add_method(cid, "gen", MethodBody::FromProc(Rc::new(proc_val)), false);
    hb.eval("class Gen\n type :gen, \"() -> Fixnum\", { \"check\" => true }\nend")
        .unwrap();
    let err = hb.eval("Gen.new.gen").unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    let diag = err.diagnostic().unwrap();
    assert_eq!(diag.code, DiagCode::ReturnType);
    // Primary span falls back to the (real) call site...
    assert_ne!(diag.span, Span::dummy());
    assert!(hb.source_map().describe(diag.span).starts_with("<eval>"));
    // ...the call site is labeled...
    assert!(diag.label(LabelRole::CallSite).is_some());
    // ...and the spanless checker location is kept as an explicit note
    // instead of being dropped.
    let note = diag.label(LabelRole::Note).expect("spanless-blame note");
    assert!(note.message.contains("no source span"), "{}", note.message);
}

#[test]
fn check_all_finds_errors_without_any_call() {
    let mut hb = Hummingbird::builder().build();
    hb.load_file(
        "app.rb",
        r#"
class Acct
  type :rate, "() -> Float"
  def rate
    0.5
  end
  type :label, "() -> String", { "check" => true }
  def label
    "acct"
  end
  type :bad_total, "() -> Fixnum", { "check" => true }
  def bad_total
    rate
  end
end
"#,
    )
    .unwrap();
    // No request ever calls bad_total: just-in-time checking alone would
    // never surface the bug.
    assert_eq!(hb.stats().checks_performed, 0);
    let diags = hb.check_all();
    assert_eq!(diags.len(), 1, "exactly the one broken method");
    assert_eq!(diags[0].code, DiagCode::ReturnType);
    assert_eq!(
        diags[0].method,
        Some(MethodKey::instance("Acct", "bad_total"))
    );
    // Eager mode anchors the primary span at the blamed method, not at a
    // (nonexistent) call.
    assert_ne!(diags[0].span, Span::dummy());
    let s = hb.stats();
    assert_eq!(s.checks_failed, 1);
    assert_eq!(s.checks_performed, 1, "the clean checked method derived");
}

#[test]
fn check_all_clean_program_is_empty_and_warms_the_cache() {
    let mut hb = Hummingbird::builder().build();
    hb.eval(
        r#"
class W
  type :go, "(Fixnum) -> Fixnum", { "check" => true }
  def go(x)
    x + 1
  end
end
"#,
    )
    .unwrap();
    assert!(hb.check_all().is_empty());
    assert_eq!(hb.stats().checks_performed, 1);
    // The eager derivation is the same cache entry the JIT path uses: the
    // first real call is a pure cache hit.
    hb.eval("W.new.go(1)").unwrap();
    let s = hb.stats();
    assert_eq!(s.checks_performed, 1, "no re-check at the first call");
    assert_eq!(s.cache_hits, 1);
}

#[test]
fn dynamic_arg_check_failure_is_structured() {
    let mut hb = Hummingbird::builder().build();
    hb.load_file(
        "t.rb",
        r#"
class T
  type :takes_int, "(Fixnum) -> Fixnum"
  def takes_int(x)
    x
  end
end
"#,
    )
    .unwrap();
    let err = hb.eval("T.new.takes_int(\"s\")").unwrap_err();
    assert_eq!(err.kind, ErrorKind::ContractBlame);
    let diag = err.diagnostic().unwrap();
    assert_eq!(diag.code, DiagCode::DynamicArgCheck);
    assert_eq!(
        diag.blame,
        BlameTarget::Annotation(MethodKey::instance("T", "takes_int"))
    );
    let label = diag.label(LabelRole::BlamedAnnotation).unwrap();
    assert_eq!(hb.source_map().describe(label.span), "t.rb:3:3");
}

#[test]
fn cast_failure_is_structured_with_cast_site() {
    let mut hb = Hummingbird::builder().build();
    let err = hb
        .load_file("c.rb", "x = \"s\"\ny = x.rdl_cast(\"Fixnum\")\n")
        .unwrap_err();
    assert_eq!(err.kind, ErrorKind::ContractBlame);
    let diag = err.diagnostic().unwrap();
    assert_eq!(diag.code, DiagCode::CastFailure);
    assert_eq!(diag.blame, BlameTarget::Cast);
    let site = diag.label(LabelRole::CastSite).unwrap();
    assert_eq!(hb.source_map().describe(site.span), "c.rb:2:5");
    // Cast blame reaches the shared diagnostics store too.
    let all = hb.diagnostics();
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].code, DiagCode::CastFailure);
}

#[test]
fn diagnostic_json_round_trips_fields() {
    let mut hb = Hummingbird::builder().build();
    hb.load_file(
        "j.rb",
        "class J\n type :m, \"() -> Fixnum\", { \"check\" => true }\n def m\n  \"s\"\n end\nend\n",
    )
    .unwrap();
    let err = hb.eval("J.new.m").unwrap_err();
    let diag = err.diagnostic().unwrap();
    let json = diag.to_json(hb.source_map());
    assert!(json.contains("\"code\":\"HB0007\""), "{json}");
    assert!(json.contains("\"kind\":\"annotation\""), "{json}");
    assert!(json.contains("\"method\":\"J#m\""), "{json}");
    assert!(json.contains("\"file\":\"j.rb\""), "{json}");
    // Every code that appears in JSON parses back to the same code.
    assert_eq!(DiagCode::parse("HB0007"), Some(diag.code));
}
