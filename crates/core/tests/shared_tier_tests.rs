//! Multi-tenant shared derivation tier: identical tenants warm each other,
//! divergent tenants are protected by dependency-version validation, and
//! invalidation fans out across tenants.

use hummingbird::{ErrorKind, Hummingbird, MethodKey, SharedCache};
use std::sync::Arc;
use std::thread;

const APP: &str = r#"
class Helper
  type :value, "() -> Fixnum", { "check" => true }
  def value
    41
  end
end
class Talk
  type :compute, "(Helper) -> Fixnum", { "check" => true }
  def compute(h)
    h.value + 1
  end
  type :title_line, "(String) -> String", { "check" => true }
  def title_line(prefix)
    prefix + ": talk"
  end
end
t = Talk.new
t.compute(Helper.new)
t.title_line("PLDI")
"#;

#[test]
fn second_tenant_warm_starts_with_zero_checks() {
    let shared = Arc::new(SharedCache::new());

    // Tenant 1 (cold) runs on its own thread and pays all static checks.
    let s1 = shared.clone();
    let cold = thread::spawn(move || {
        let mut hb = Hummingbird::builder().shared_cache(s1).build();
        hb.eval(APP).unwrap();
        hb.stats()
    })
    .join()
    .unwrap();
    assert_eq!(cold.checks_performed, 3, "cold tenant checks everything");
    assert_eq!(cold.shared_hits, 0);
    assert_eq!(
        shared.stats().inserts,
        3,
        "cold tenant published its derivations"
    );

    // Tenant 2 (warm), a different thread and a fresh interpreter built
    // from identical sources: every first call adopts from the shared
    // tier, so check_sig never runs.
    let s2 = shared.clone();
    let warm = thread::spawn(move || {
        let mut hb = Hummingbird::builder().shared_cache(s2).build();
        hb.eval(APP).unwrap();
        hb.stats()
    })
    .join()
    .unwrap();
    assert_eq!(warm.checks_performed, 0, "warm tenant never runs check_sig");
    assert_eq!(
        warm.shared_hits, 3,
        "all three first calls adopt shared derivations"
    );
    assert_eq!(
        warm.cache_entries, 3,
        "adopted derivations fill the hot tier"
    );
}

#[test]
fn divergent_tenant_fails_validation_and_rechecks() {
    let shared = Arc::new(SharedCache::new());
    let mut t1 = Hummingbird::builder().shared_cache(shared.clone()).build();
    t1.eval(APP).unwrap();
    assert_eq!(t1.stats().checks_performed, 3);

    // Tenant 2 replaces Helper#value's signature *before* first calls.
    // Its sig replacement also evicts the shared Talk#compute entry (the
    // fan-out sink), and even a racing stale read would fail dependency
    // version validation — either way the tenant re-derives soundly.
    let mut t2 = Hummingbird::builder().shared_cache(shared.clone()).build();
    t2.eval(
        r#"
class Helper
  type :value, "() -> Fixnum", { "check" => true }
  def value
    41
  end
end
class Helper
  type :value, "() -> Fixnum", { "replace" => true }
end
class Talk
  type :compute, "(Helper) -> Fixnum", { "check" => true }
  def compute(h)
    h.value + 1
  end
  type :title_line, "(String) -> String", { "check" => true }
  def title_line(prefix)
    prefix + ": talk"
  end
end
t = Talk.new
t.compute(Helper.new)
t.title_line("PLDI")
"#,
    )
    .unwrap();
    let s = t2.stats();
    // title_line has no divergent deps and keeps warm-hitting; the two
    // methods touching the replaced signature must re-check.
    assert!(
        s.checks_performed >= 2,
        "divergent derivations re-check: {s:?}"
    );
    assert!(
        shared
            .lookup(
                &MethodKey::instance("Talk", "compute"),
                u64::MAX,
                u64::MAX,
                0
            )
            .is_none(),
        "sanity: lookups with wrong versions never hit"
    );
}

#[test]
fn cross_tenant_eviction_fans_out() {
    let shared = Arc::new(SharedCache::new());
    let mut t1 = Hummingbird::builder().shared_cache(shared.clone()).build();
    t1.eval(APP).unwrap();
    let before = shared.len();
    assert_eq!(before, 3);

    // Tenant 1 replaces Helper#value: the sink evicts the method's shared
    // family plus dependents (Talk#compute) immediately.
    t1.eval("class Helper\n type :value, \"() -> String\", { \"replace\" => true }\nend")
        .unwrap();
    assert_eq!(
        shared.len(),
        1,
        "Helper#value and its dependent Talk#compute evicted; title_line survives"
    );
    assert!(shared.stats().evictions >= 2);
}

#[test]
fn divergent_hierarchy_blocks_adoption() {
    // check_sig makes is_subtype judgements straight off the class
    // hierarchy, and those judgements leave no witnesses in the
    // derivation's dependency set. A tenant whose hierarchy lacks a
    // subtyping edge the publisher had — same annotations, same body
    // text, same (here: empty) resolution witness set — must re-derive
    // and blame, not adopt the publisher's derivation.
    let shared = Arc::new(SharedCache::new());
    // Evaled as its own source text by both tenants so the body
    // fingerprints coincide; only the hierarchy prelude differs.
    let talk = r#"
class Talk
  type :pick, "(Sub) -> Base", { "check" => true }
  def pick(s)
    s
  end
end
Talk.new.pick(Sub.new)
"#;

    let mut t1 = Hummingbird::builder().shared_cache(shared.clone()).build();
    t1.eval("class Base\nend\nclass Sub < Base\nend").unwrap();
    t1.eval(talk).unwrap();
    assert_eq!(t1.stats().checks_performed, 1);
    assert_eq!(shared.stats().inserts, 1, "publisher shares Talk#pick");

    // Tenant 2 defines Sub *without* the superclass edge, so its own
    // checker would reject pick (Sub is not a subtype of Base).
    let mut t2 = Hummingbird::builder().shared_cache(shared.clone()).build();
    t2.eval("class Base\nend\nclass Sub\nend").unwrap();
    let err = t2.eval(talk).unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    assert!(err.message.contains("Talk#pick"), "{}", err.message);
    let s = t2.stats();
    assert_eq!(s.shared_hits, 0, "divergent hierarchy must not adopt");
}

#[test]
fn divergent_variable_types_block_adoption() {
    // Derivations read ivar/gvar types without per-use witnesses, so a
    // tenant whose variable-type registrations diverge must re-derive
    // (its var fingerprint differs) rather than adopt.
    let shared = Arc::new(SharedCache::new());
    let gvar_app = r#"
var_type "$level", "Fixnum"
class Gauge
  type :level, "() -> Fixnum", { "check" => true }
  def level
    $level
  end
end
$level = 3
Gauge.new.level
"#;
    let mut t1 = Hummingbird::builder().shared_cache(shared.clone()).build();
    t1.eval(gvar_app).unwrap();
    assert_eq!(t1.stats().checks_performed, 1);

    // Same method annotations and body text, but $level is declared
    // String first (then Fixnum, so the call itself still type-checks):
    // the var fingerprint differs, adoption is rejected, and the tenant
    // re-derives.
    let mut t2 = Hummingbird::builder().shared_cache(shared.clone()).build();
    t2.eval(
        r#"
var_type "$dummy", "String"
var_type "$level", "Fixnum"
class Gauge
  type :level, "() -> Fixnum", { "check" => true }
  def level
    $level
  end
end
$level = 3
Gauge.new.level
"#,
    )
    .unwrap();
    let s = t2.stats();
    assert_eq!(s.shared_hits, 0, "divergent var types must not adopt");
    assert_eq!(s.checks_performed, 1, "re-derives instead");
}
