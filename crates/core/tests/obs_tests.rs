//! PR 10 observability: the stats-accounting reconciliation invariant
//! across check policies and execution tiers, and the metrics/trace
//! export surfaces end to end.
//!
//! The reconciliation invariant: every dispatched call to a checked
//! method resolves as exactly one of a derivation-cache hit, a
//! shared-tier adoption, a passing check, or a failing check — so
//! `cache_hits + shared_hits + checks_performed + checks_failed` must
//! equal the number of dispatched calls, and
//! `checks_performed + checks_failed + shared_hits` must equal the
//! first calls. Deferred admissions settle at `sched_quiesce`; after
//! the barrier the same identity holds.

use hummingbird::{CheckPolicy, ExecTier, Hummingbird, ObsLevel, SharedCache};
use std::sync::Arc;

/// Three cleanly checkable methods.
const CLEAN: &str = r#"
class Talk
  type :title, "() -> Fixnum", { "check" => true }
  def title
    1
  end
  type :minutes, "() -> Fixnum", { "check" => true }
  def minutes
    30
  end
  type :pad, "(Fixnum) -> Fixnum", { "check" => true }
  def pad(mins)
    mins + 5
  end
end
"#;

/// [`CLEAN`] plus a method whose body cannot satisfy its annotation.
const WITH_BAD: &str = r#"
class Talk
  type :title, "() -> Fixnum", { "check" => true }
  def title
    1
  end
  type :minutes, "() -> Fixnum", { "check" => true }
  def minutes
    30
  end
  type :pad, "(Fixnum) -> Fixnum", { "check" => true }
  def pad(mins)
    mins + 5
  end
  type :late?, "(Fixnum) -> %bool", { "check" => true }
  def late?(mins)
    mins + 1
  end
end
"#;

/// Dispatches one round of calls to the checked methods; returns how
/// many checked-method calls were made.
fn drive(hb: &mut Hummingbird, with_bad: bool) -> u64 {
    hb.eval("t = Talk.new\nt.title\nt.minutes\nt.pad(40)")
        .expect("clean calls succeed");
    if with_bad {
        // Blames are shadowed in the configurations that drive this.
        hb.eval("Talk.new.late?(5)")
            .expect("shadowed call continues");
        4
    } else {
        3
    }
}

/// Asserts the four-way accounting identity on one engine.
fn assert_reconciles(hb: &Hummingbird, dispatched: u64, first_calls: u64, label: &str) {
    let s = hb.stats();
    let resolved = s.cache_hits + s.shared_hits + s.checks_performed + s.checks_failed;
    assert_eq!(
        resolved, dispatched,
        "{label}: every dispatched call resolves exactly once: {s:?}"
    );
    assert_eq!(
        s.checks_performed + s.checks_failed + s.shared_hits,
        first_calls,
        "{label}: first calls are checks or adoptions: {s:?}"
    );
}

/// One policy × tier configuration: two tenants over one shared tier,
/// `rounds` dispatch rounds each. Returns the tenants for extra checks.
fn run_matrix_point(
    policy: CheckPolicy,
    tier: ExecTier,
    rounds: u64,
) -> (Hummingbird, Hummingbird) {
    let with_bad = policy == CheckPolicy::Shadow;
    let fixture = if with_bad { WITH_BAD } else { CLEAN };
    let methods = if with_bad { 4 } else { 3 };
    let shared = Arc::new(SharedCache::new());
    let label = format!("{policy:?}/{tier:?}");

    let build = |shared: &Arc<SharedCache>| {
        let mut b = Hummingbird::builder()
            .check_policy(policy)
            .exec_tier(tier)
            .shared_cache(shared.clone())
            .observability(ObsLevel::Metrics);
        if policy == CheckPolicy::Deferred {
            b = b.worker_threads(2);
        }
        b.build()
    };

    let mut t1 = build(&shared);
    t1.eval(fixture).unwrap();
    let mut dispatched = 0;
    for round in 0..rounds {
        dispatched += drive(&mut t1, with_bad);
        if round == 0 {
            // Deferred: let the admitted first-call checks land before
            // the steady-state rounds, so the identity is settled.
            t1.sched_quiesce();
        }
    }
    t1.sched_quiesce();
    // A failing check is never adopted into the cache, so under Shadow
    // the bad method re-checks (and re-blames) every round; the identity
    // covers both outcomes, so no per-policy arithmetic is needed.
    assert_reconciles(
        &t1,
        dispatched,
        t1.stats().checks_performed + t1.stats().checks_failed,
        &format!("tenant1 {label}"),
    );
    assert_eq!(
        t1.stats().shared_hits,
        0,
        "tenant1 {label}: nothing to adopt from an empty tier"
    );

    // Tenant 2 boots against the tier tenant 1 populated: its passing
    // first calls adopt instead of deriving.
    let mut t2 = build(&shared);
    t2.eval(fixture).unwrap();
    let mut dispatched2 = 0;
    for round in 0..rounds {
        dispatched2 += drive(&mut t2, with_bad);
        if round == 0 {
            t2.sched_quiesce();
        }
    }
    t2.sched_quiesce();
    let s2 = t2.stats();
    assert_reconciles(
        &t2,
        dispatched2,
        s2.checks_performed + s2.checks_failed + s2.shared_hits,
        &format!("tenant2 {label}"),
    );
    assert_eq!(
        s2.shared_hits,
        methods as u64 - if with_bad { 1 } else { 0 },
        "tenant2 {label}: every passing first call adopts tenant 1's derivation: {s2:?}"
    );
    assert_eq!(
        s2.checks_performed, 0,
        "tenant2 {label}: adoption leaves nothing to derive: {s2:?}"
    );
    (t1, t2)
}

#[test]
fn accounting_reconciles_across_policies_and_tiers() {
    for tier in [ExecTier::TreeWalk, ExecTier::Bytecode] {
        for policy in [
            CheckPolicy::Enforce,
            CheckPolicy::Shadow,
            CheckPolicy::Deferred,
        ] {
            run_matrix_point(policy, tier, 4);
        }
    }
}

#[test]
fn deferred_admissions_settle_into_the_identity() {
    // No quiesce between rounds this time: latched re-admissions pile
    // up while the first-call checks are in flight. After the final
    // quiesce every admitted check has landed, and admissions plus
    // resolutions cover every dispatch exactly once.
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Deferred)
        .worker_threads(2)
        .observability(ObsLevel::Metrics)
        .build();
    hb.eval(CLEAN).unwrap();
    let mut dispatched = 0;
    for _ in 0..6 {
        dispatched += drive(&mut hb, false);
    }
    hb.sched_quiesce();
    let s = hb.stats();
    // Each dispatch resolved as a cache hit, a landed check, or an
    // admission of an already-in-flight key (which the landed check
    // then covered). Shedding would convert to sync checks — also
    // counted — so the three-way split is exhaustive.
    assert_eq!(
        s.cache_hits + s.checks_performed + s.checks_failed + s.deferred_admissions
            - (s.sched_tasks_completed - s.sched_tasks_stale),
        dispatched,
        "admissions and landed completions reconcile: {s:?}"
    );
    assert!(s.deferred_admissions >= 3, "first calls admitted: {s:?}");
}

#[test]
fn metrics_exports_round_trip() {
    let mut hb = Hummingbird::builder()
        .observability(ObsLevel::Trace)
        .build();
    hb.eval(CLEAN).unwrap();
    hb.eval("t = Talk.new\nt.title\nt.title").unwrap();

    let json = hb.metrics();
    hummingbird::validate_json(&json).expect("metrics JSON is valid");
    for needle in [
        "\"schema_version\":1",
        "\"stats\":",
        "\"hb_check_duration_ns\"",
        "\"hb_first_request_ns\"",
        "\"checks_performed\":1",
    ] {
        assert!(
            json.contains(needle),
            "metrics() must carry {needle}: {json}"
        );
    }

    let prom = hb.metrics_prometheus();
    for needle in [
        "# TYPE hb_check_duration_ns histogram",
        "hb_check_duration_ns_count 1",
        "hb_checks_observed_total 1",
        "hb_engine_checks_performed 1",
        "hb_engine_cache_hits 1",
    ] {
        assert!(
            prom.contains(needle),
            "prometheus must carry {needle}: {prom}"
        );
    }

    let trace = hb.trace_json();
    hummingbird::validate_json(&trace).expect("trace JSON is valid");
    assert!(
        trace.contains("\"traceEvents\""),
        "chrome trace shape: {trace}"
    );

    let obs = hb.engine.obs().expect("trace level keeps a collector");
    let events = obs.ring_snapshot();
    let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
    assert!(
        names.contains(&"check_pass") && names.contains(&"cache_hit"),
        "flight recorder saw the check and the hit: {names:?}"
    );
    assert_eq!(obs.check_duration.summary().count, 1);
    assert_eq!(obs.first_request.summary().count, 1);
}

#[test]
fn observability_off_is_inert() {
    let mut hb = Hummingbird::builder().build();
    hb.eval(CLEAN).unwrap();
    hb.eval("Talk.new.title").unwrap();
    assert!(
        hb.engine.obs().is_none(),
        "off is the absence of a collector"
    );
    let json = hb.metrics();
    hummingbird::validate_json(&json).expect("off still renders valid JSON");
    assert!(json.contains("\"counters\":{}"), "no series exist: {json}");
    let prom = hb.metrics_prometheus();
    assert!(
        !prom.contains("hb_check_duration_ns") && prom.contains("hb_engine_checks_performed"),
        "off exports only the flat stats: {prom}"
    );
    let trace = hb.trace_json();
    hummingbird::validate_json(&trace).expect("empty trace is valid JSON");
    assert!(trace.contains("traceEvents"), "trace shape: {trace}");
}
