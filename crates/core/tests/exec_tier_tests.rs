//! Execution-tier tests: the bytecode VM with derivation-driven check
//! elision must patch checked fast prologues in steady state, deoptimize
//! (patch back to the guarded entry) whenever the backing derivation is
//! invalidated — reloads, annotation changes, enforcement changes, cache
//! flushes — and re-patch once the fresh derivation lands.

use hummingbird::{CheckPolicy, ErrorKind, ExecTier, Hummingbird};

fn hb_bytecode() -> Hummingbird {
    Hummingbird::builder().exec_tier(ExecTier::Bytecode).build()
}

/// A checked driver looping a checked inner call: the paper's
/// steady-state shape. After the first iterations both methods are
/// checked, cached, and the `(receiver class, entry)` pairs are patched
/// onto the fast prologue — the hook never runs again.
const STEADY_STATE: &str = r#"
class Steady
  type :inner, "(Fixnum) -> Fixnum", { "check" => true }
  type :driver, "(Fixnum) -> Fixnum", { "check" => true }
  def inner(x)
    x + 1
  end
  def driver(n)
    i = 0
    acc = 0
    while i < n
      acc = inner(acc)
      i = i + 1
    end
    acc
  end
end
"#;

#[test]
fn bytecode_tier_compiles_patches_and_counts_fast_hits() {
    let mut hb = hb_bytecode();
    hb.eval(STEADY_STATE).unwrap();
    let v = hb.eval("Steady.new.driver(200)").unwrap();
    assert_eq!(format!("{v:?}"), "200");
    let s = hb.stats();
    assert_eq!(s.checks_performed, 2, "driver and inner each checked once");
    assert!(s.bytecode_compiled >= 2, "both bodies compiled: {s:?}");
    assert!(
        s.fast_entries_patched >= 1,
        "inner patched onto the fast prologue: {s:?}"
    );
    assert_eq!(s.deopts, 0);
    // Fast hits fold into cache_hits so the counter stays comparable with
    // the tree-walk tier: 200 inner calls minus the first (checked).
    assert!(s.cache_hits >= 199, "{s:?}");
}

#[test]
fn tree_walk_tier_reports_no_bytecode_activity() {
    let mut hb = Hummingbird::builder().exec_tier(ExecTier::TreeWalk).build();
    hb.eval(STEADY_STATE).unwrap();
    hb.eval("Steady.new.driver(50)").unwrap();
    let s = hb.stats();
    assert_eq!(s.bytecode_compiled, 0);
    assert_eq!(s.fast_entries_patched, 0);
    assert_eq!(s.deopts, 0);
    assert_eq!(s.checks_performed, 2, "semantics identical across tiers");
}

#[test]
fn reload_mid_steady_state_deopts_then_repatches() {
    let mut hb = hb_bytecode();
    let v1 = r#"
class R
  def inner(x)
    x + 1
  end
  def driver(n)
    i = 0
    acc = 0
    while i < n
      acc = inner(acc)
      i = i + 1
    end
    acc
  end
end
"#;
    hb.load_file("r.rb", v1).unwrap();
    hb.eval(
        r#"
class R
  type :inner, "(Fixnum) -> Fixnum", { "check" => true }
  type :driver, "(Fixnum) -> Fixnum", { "check" => true }
end
R.new.driver(100)
"#,
    )
    .unwrap();
    let warm = hb.stats();
    assert!(warm.fast_entries_patched >= 1, "{warm:?}");
    assert_eq!(warm.deopts, 0);
    // Reload with `inner` changed mid-steady-state: its derivation (and
    // its dependents') is invalidated, so the patched fast entries must
    // fall back to the guarded prologue — the deopt analogue.
    let v2 = r#"
class R
  def inner(x)
    x + 2
  end
  def driver(n)
    i = 0
    acc = 0
    while i < n
      acc = inner(acc)
      i = i + 1
    end
    acc
  end
end
"#;
    let report = hb.reload_file("r.rb", v2).unwrap();
    assert_eq!(report.changed, vec!["R#inner"]);
    let after_reload = hb.stats();
    assert!(
        after_reload.deopts >= 1,
        "reload must depatch fast entries: {after_reload:?}"
    );
    // The new body runs (semantics first), rechecks land, and steady
    // state re-patches.
    let v = hb.eval("R.new.driver(100)").unwrap();
    assert_eq!(format!("{v:?}"), "200");
    let rewarmed = hb.stats();
    assert!(
        rewarmed.fast_entries_patched > warm.fast_entries_patched,
        "fresh derivations re-patch: {rewarmed:?}"
    );
}

#[test]
fn annotation_replace_mid_steady_state_still_blames() {
    // The soundness test behind elision: once `inner` is patched, the
    // hook no longer runs for it — but replacing its type must deopt and
    // the very next driver call must re-check and blame, exactly as the
    // tree-walk tier would.
    let mut hb = hb_bytecode();
    hb.eval(STEADY_STATE).unwrap();
    hb.eval("Steady.new.driver(100)").unwrap();
    assert!(hb.stats().fast_entries_patched >= 1);
    hb.eval("class Steady\n type :inner, \"(Fixnum) -> String\", { \"replace\" => true }\nend")
        .unwrap();
    let err = hb.eval("Steady.new.driver(100)").unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    let s = hb.stats();
    assert!(s.deopts >= 1, "annotation change must deopt: {s:?}");
}

#[test]
fn enforcement_change_mid_steady_state_deopts() {
    // Patching is only sound while every per-call decision the hook could
    // make is statically trivial; switching the global policy away from
    // Enforce revokes that, synchronously.
    let mut hb = hb_bytecode();
    hb.eval(STEADY_STATE).unwrap();
    hb.eval("Steady.new.driver(100)").unwrap();
    let warm = hb.stats();
    assert!(warm.fast_entries_patched >= 1);
    hb.set_check_policy(CheckPolicy::Shadow);
    let s = hb.stats();
    assert!(
        s.deopts >= 1,
        "policy change must flush fast entries: {s:?}"
    );
    // Under a non-trivial policy nothing re-patches (the hook must stay
    // in the loop to shadow blames), but execution continues correctly.
    hb.eval("Steady.new.driver(10)").unwrap();
    assert_eq!(hb.stats().fast_entries_patched, warm.fast_entries_patched);
}

#[test]
fn bytecode_tier_matches_tree_walk_diagnostics() {
    // A blame surfaced from compiled code carries the same structured
    // diagnostic as the tree-walk tier, byte for byte.
    let src = r#"
class D
  type :bad, "() -> Fixnum", { "check" => true }
  def bad
    "string"
  end
end
D.new.bad
"#;
    let mut tw = Hummingbird::builder().exec_tier(ExecTier::TreeWalk).build();
    let e1 = tw.eval(src).unwrap_err();
    let mut bc = hb_bytecode();
    let e2 = bc.eval(src).unwrap_err();
    assert_eq!(e1.kind, e2.kind);
    assert_eq!(e1.message, e2.message);
    let d1 = e1.diagnostic().expect("tree-walk diagnostic");
    let d2 = e2.diagnostic().expect("bytecode diagnostic");
    assert_eq!(d1.code, d2.code);
    assert_eq!(
        d1.render(tw.source_map()),
        d2.render(bc.source_map()),
        "rendered diagnostics identical across tiers"
    );
}

#[test]
fn dynamic_arg_checks_still_run_from_unchecked_callers() {
    // The fast prologue only ever serves checked callers; top-level
    // (unchecked) calls keep their guarded entry and full dynamic checks,
    // patched or not.
    let mut hb = hb_bytecode();
    hb.eval(STEADY_STATE).unwrap();
    hb.eval("Steady.new.driver(100)").unwrap();
    assert!(hb.stats().fast_entries_patched >= 1);
    let err = hb.eval("Steady.new.inner(\"oops\")").unwrap_err();
    assert_eq!(err.kind, ErrorKind::ContractBlame);
}
