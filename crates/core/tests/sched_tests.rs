//! Concurrent check scheduler tests: deferred JIT admission, asynchronous
//! blame, stale-result discard (reload during an in-flight check), worker
//! panic containment, and parallel `check_all` determinism.

use hummingbird::{CheckPolicy, DiagCode, Hummingbird, MethodKey, Scheduler};
use std::sync::Arc;

const CLEAN_APP: &str = r#"
class Talk
  type :title_line, "(String) -> String", { "check" => true }
  def title_line(prefix)
    prefix + ": talk"
  end
end
"#;

const BUGGY_APP: &str = r#"
class Talk
  type :late?, "(Fixnum) -> %bool", { "check" => true }
  def late?(mins)
    mins + 1
  end
end
"#;

#[test]
fn deferred_admission_checks_in_background_and_lands_at_quiesce() {
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Deferred)
        .worker_threads(2)
        .build();
    hb.eval(CLEAN_APP).unwrap();
    hb.eval("Talk.new.title_line(\"PLDI\")").unwrap();
    let s = hb.stats();
    assert_eq!(s.deferred_admissions, 1, "the cold call was admitted");
    assert_eq!(s.sched_tasks_enqueued, 1, "one task was enqueued");
    hb.sched_quiesce();
    let s = hb.stats();
    assert_eq!(s.sched_tasks_completed, 1);
    assert_eq!(s.sched_tasks_stale, 0);
    assert_eq!(
        s.checks_performed, 1,
        "the worker's derivation was validated and adopted"
    );
    assert!(
        hb.diagnostics().is_empty(),
        "a passing check blames nothing"
    );
    // The adopted derivation is a hot-tier entry now: the next call hits.
    let hits_before = hb.stats().cache_hits;
    hb.eval("Talk.new.title_line(\"again\")").unwrap();
    assert_eq!(hb.stats().cache_hits, hits_before + 1);
    assert_eq!(hb.stats().deferred_admissions, 1, "no second admission");
}

#[test]
fn deferred_blame_arrives_asynchronously_with_its_code() {
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Deferred)
        .worker_threads(2)
        .build();
    hb.eval(BUGGY_APP).unwrap();
    // The ill-typed method is admitted and runs to completion — Shadow
    // semantics for the deferred blame.
    let v = hb.eval("Talk.new.late?(5)").unwrap();
    assert!(format!("{v:?}").contains('6'), "the call ran");
    hb.sched_quiesce();
    let diags = hb.diagnostics();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, DiagCode::ReturnType, "exact HB0007");
    assert!(
        diags[0]
            .labels
            .iter()
            .any(|l| l.message.contains("deferred check policy")),
        "the asynchronous blame is self-describing"
    );
    let s = hb.stats();
    assert_eq!(s.checks_failed, 1);
    assert_eq!(
        s.checks_performed, 0,
        "a blamed derivation is never adopted"
    );
    assert_eq!(
        hb.engine.cache_len(),
        0,
        "nothing cached for the blamed method"
    );
}

#[test]
fn stale_inflight_derivation_is_discarded_never_adopted() {
    let sched = Arc::new(Scheduler::new(1));
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Deferred)
        .scheduler(sched.clone())
        .build();
    hb.eval(CLEAN_APP).unwrap();
    // Hold the worker so the task stays in flight across the reload.
    sched.pause();
    hb.eval("Talk.new.title_line(\"PLDI\")").unwrap();
    assert_eq!(hb.stats().sched_tasks_enqueued, 1);
    // Reload the method with a different body while the check (against
    // the OLD body and world) is still queued.
    hb.eval(
        r#"
class Talk
  def title_line(prefix)
    "v2: " + prefix
  end
end
"#,
    )
    .unwrap();
    sched.resume();
    hb.sched_quiesce();
    let s = hb.stats();
    assert_eq!(s.sched_tasks_completed, 1);
    assert_eq!(
        s.sched_tasks_stale, 1,
        "the pre-reload derivation no longer matches the entry id and is discarded"
    );
    assert_eq!(s.checks_performed, 0, "stale results are never adopted");
    assert_eq!(hb.engine.cache_len(), 0);
    // The method still checks correctly against its NEW body.
    hb.eval("Talk.new.title_line(\"PLDI\")").unwrap();
    hb.sched_quiesce();
    let s = hb.stats();
    assert_eq!(s.checks_performed, 1, "re-enqueued against the new body");
    assert_eq!(s.sched_tasks_stale, 1, "no further staleness");
    assert_eq!(hb.engine.cache_len(), 1);
}

#[test]
fn stale_blame_rechecks_against_the_current_world_instead_of_reporting_stale() {
    let sched = Arc::new(Scheduler::new(1));
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Deferred)
        .scheduler(sched.clone())
        .build();
    hb.eval(BUGGY_APP).unwrap();
    sched.pause();
    hb.eval("Talk.new.late?(5)").unwrap();
    // An UNRELATED annotation lands while the blame is in flight: the
    // captured epochs no longer match, so the blame completion is
    // discarded as stale — but the method identity is current, so the
    // engine re-checks against the current world and the (still-real)
    // blame re-lands at quiesce rather than being silently lost.
    hb.eval("class Talk\n  type :other, \"() -> String\"\nend")
        .unwrap();
    sched.resume();
    hb.sched_quiesce();
    let s = hb.stats();
    assert_eq!(s.sched_tasks_stale, 1, "the in-flight blame went stale");
    assert_eq!(
        s.sched_tasks_enqueued, 2,
        "one original task plus one re-enqueued against the current world"
    );
    let diags = hb.diagnostics();
    assert_eq!(diags.len(), 1, "exactly one blame — no duplicates, no loss");
    assert_eq!(diags[0].code, DiagCode::ReturnType);
    assert_eq!(s.checks_failed, 1);
}

#[test]
fn worker_panic_poisons_only_its_task_not_the_pool() {
    let sched = Arc::new(Scheduler::new(2));
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Deferred)
        .scheduler(sched.clone())
        .build();
    hb.eval(CLEAN_APP).unwrap();
    hb.eval(
        r#"
class Talk
  type :other, "() -> String", { "check" => true }
  def other
    "ok"
  end
end
"#,
    )
    .unwrap();
    sched.panic_on(MethodKey::instance("Talk", "title_line"));
    hb.eval("t = Talk.new\nt.title_line(\"x\")\nt.other")
        .unwrap();
    hb.sched_quiesce();
    // The panicking task surfaced as a structured HB0011 diagnostic...
    let diags = hb.diagnostics();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, DiagCode::CheckerPanic);
    assert!(diags[0].message.contains("Talk#title_line"));
    assert!(
        diags[0]
            .labels
            .iter()
            .any(|l| l.message.contains("contained to this task")),
        "the diagnostic is self-describing"
    );
    assert_eq!(sched.tasks_panicked(), 1);
    // ...while the sibling task on the same pool completed normally.
    let s = hb.stats();
    assert_eq!(s.sched_tasks_completed, 2);
    assert_eq!(s.checks_performed, 1, "Talk#other was adopted");
    // The pool survives: the panicking method re-checks cleanly once the
    // instrumentation is lifted.
    sched.clear_panic_keys();
    hb.eval("Talk.new.title_line(\"y\")").unwrap();
    hb.sched_quiesce();
    assert_eq!(hb.stats().checks_performed, 2);
    assert_eq!(hb.engine.cache_len(), 2);
}

#[test]
fn check_all_parallel_matches_serial_output_and_counts_tasks() {
    let program = r#"
class Talk
  type :title_line, "(String) -> String", { "check" => true }
  def title_line(prefix)
    prefix + ": talk"
  end
  type :late?, "(Fixnum) -> %bool", { "check" => true }
  def late?(mins)
    mins + 1
  end
  type :slot, "() -> Fixnum", { "check" => true }
  def slot
    "three"
  end
end
"#;
    let mut serial = Hummingbird::builder().build();
    serial.eval(program).unwrap();
    let serial_diags = serial.check_all();

    let mut parallel = Hummingbird::builder().build();
    parallel.eval(program).unwrap();
    let parallel_diags = parallel.check_all_parallel(4);

    assert_eq!(serial_diags.len(), 2, "two of the three methods blame");
    let render = |hb: &Hummingbird, ds: &[hummingbird::TypeDiagnostic]| -> Vec<String> {
        ds.iter().map(|d| d.render(hb.source_map())).collect()
    };
    assert_eq!(
        render(&serial, &serial_diags),
        render(&parallel, &parallel_diags),
        "byte-identical diagnostics in the same sorted order"
    );
    let s = parallel.stats();
    assert_eq!(s.sched_tasks_enqueued, 3);
    assert_eq!(s.sched_tasks_completed, 3);
    assert_eq!(s.sched_tasks_stale, 0);
    assert_eq!(
        s.checks_performed, 1,
        "the passing method was adopted from its worker derivation"
    );
    // The sweep re-derived only the failures, serially.
    assert_eq!(s.checks_failed, 2);
}

#[test]
fn check_all_parallel_warms_the_cache_like_serial() {
    let mut hb = Hummingbird::builder().build();
    hb.eval(CLEAN_APP).unwrap();
    assert!(hb.check_all_parallel(2).is_empty());
    let hits = hb.stats().cache_hits;
    hb.eval("Talk.new.title_line(\"x\")").unwrap();
    assert_eq!(
        hb.stats().cache_hits,
        hits + 1,
        "first call hits the warmed cache"
    );
}

#[test]
fn quiesce_without_scheduler_is_a_noop() {
    let mut hb = Hummingbird::builder().build();
    hb.eval(CLEAN_APP).unwrap();
    hb.sched_quiesce();
    assert_eq!(hb.stats().sched_tasks_completed, 0);
}

#[test]
fn deferred_queue_at_its_cap_sheds_to_synchronous_enforce() {
    let sched = Arc::new(Scheduler::new(1));
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Deferred)
        .scheduler(sched.clone())
        .deferred_queue_cap(2)
        .build();
    hb.eval(
        r#"
class Flood
  type :m1, "() -> Fixnum", { "check" => true }
  def m1
    1
  end
  type :m2, "() -> Fixnum", { "check" => true }
  def m2
    2
  end
  type :m3, "() -> Fixnum", { "check" => true }
  def m3
    3
  end
  type :m4, "() -> Fixnum", { "check" => true }
  def m4
    4
  end
end
class Buggy
  type :bad, "() -> String", { "check" => true }
  def bad
    1
  end
end
"#,
    )
    .unwrap();
    // Hold the worker: admitted tasks stay in flight, so the queue fills.
    sched.pause();
    hb.eval("f = Flood.new\nf.m1\nf.m2").unwrap();
    let s = hb.stats();
    assert_eq!(s.deferred_admissions, 2, "the queue accepts up to its cap");
    assert_eq!(s.deferred_shed, 0);
    assert_eq!(s.checks_performed, 0, "nothing checked inline yet");

    // The third cold method finds the queue at its high-water mark: the
    // call is shed to a synchronous Enforce check instead of growing the
    // backlog unboundedly.
    hb.eval("Flood.new.m3").unwrap();
    let s = hb.stats();
    assert_eq!(s.deferred_shed, 1, "shed counted");
    assert_eq!(s.deferred_admissions, 2, "no admission past the cap");
    assert_eq!(s.checks_performed, 1, "the shed call checked inline");

    // Shed calls carry full Enforce semantics: an ill-typed method
    // blames by *raising*, not by Shadow-logging after the fact.
    assert!(
        hb.eval("Buggy.new.bad").is_err(),
        "shed blame raises like Enforce"
    );
    let s = hb.stats();
    assert_eq!(s.deferred_shed, 2);
    assert_eq!(s.checks_failed, 1);

    // Draining the queue restores deferred admission.
    sched.resume();
    hb.sched_quiesce();
    let s = hb.stats();
    assert_eq!(s.sched_tasks_completed, 2, "the held tasks landed");
    hb.eval("Flood.new.m4").unwrap();
    let s = hb.stats();
    assert_eq!(s.deferred_admissions, 3, "capacity recovered after quiesce");
    assert_eq!(s.deferred_shed, 2, "no further shedding");
}

#[test]
fn deferred_policy_parses_and_reports() {
    assert_eq!(CheckPolicy::parse("deferred"), Some(CheckPolicy::Deferred));
    assert_eq!(CheckPolicy::Deferred.as_str(), "deferred");
    // The RubyLite builtin accepts it too.
    let mut hb = Hummingbird::builder().worker_threads(1).build();
    hb.eval("check_policy \"deferred\"").unwrap();
    hb.eval(CLEAN_APP).unwrap();
    hb.eval("Talk.new.title_line(\"x\")").unwrap();
    hb.sched_quiesce();
    assert_eq!(hb.stats().deferred_admissions, 1);
    assert_eq!(hb.stats().checks_performed, 1);
}
