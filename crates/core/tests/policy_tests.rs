//! CheckPolicy semantics: Enforce raises, Shadow records-and-continues,
//! Off skips; resolution precedence; the `check_policy` RubyLite builtin;
//! builder-configured caps and streaming diagnostic sinks.

use hummingbird::{
    CheckPolicy, DiagCode, DiagnosticSink, ErrorKind, Hummingbird, MethodKey, TypeDiagnostic, Value,
};
use std::cell::RefCell;
use std::rc::Rc;

/// A method whose body cannot satisfy its annotation: `Fixnum` out,
/// `%bool` promised.
const BAD_RETURN: &str = r#"
class Talk
  type :late?, "(Fixnum) -> %bool", { "check" => true }
  def late?(mins)
    mins + 1
  end
end
"#;

#[test]
fn enforce_raises_where_shadow_continues() {
    // Enforce (default): the first call blames and aborts.
    let mut hb = Hummingbird::builder().build();
    hb.eval(BAD_RETURN).unwrap();
    let err = hb.eval("Talk.new.late?(5)").unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);
    assert_eq!(hb.stats().shadowed_blames, 0);

    // Shadow: the same check runs and blames, the diagnostic lands in the
    // store, and the call completes with the body's actual value.
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Shadow)
        .build();
    hb.eval(BAD_RETURN).unwrap();
    let v = hb.eval("Talk.new.late?(5)").unwrap();
    assert!(matches!(v, Value::Int(6)), "execution continued: {v:?}");
    let s = hb.stats();
    assert_eq!(s.shadowed_blames, 1);
    assert_eq!(s.checks_failed, 1, "the check really ran");
    let diags = hb.diagnostics();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, DiagCode::ReturnType);
    assert!(
        diags[0]
            .labels
            .iter()
            .any(|l| l.message.contains("shadow check policy")),
        "shadow blames are self-describing: {diags:?}"
    );
}

#[test]
fn shadowed_method_body_is_not_marked_checked() {
    // A method whose check failed runs unchecked, so its callees keep
    // their dynamic argument checks — shadowing must not silently extend
    // static trust to an unverified body.
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Shadow)
        .build();
    hb.eval(
        r#"
class Helper
  type :mul, "(Fixnum) -> Fixnum"
  def mul(x)
    x
  end
end
class Talk
  type :driver, "() -> Fixnum", { "check" => true }
  def driver
    helper_object.mul(2)
  end
  def helper_object
    Helper.new
  end
end
"#,
    )
    .unwrap();
    // driver's check blames (helper_object is untyped), gets shadowed,
    // and the body runs *unchecked* — so the call into mul must pay a
    // dynamic argument check.
    hb.eval("Talk.new.driver").unwrap();
    let s = hb.stats();
    assert_eq!(s.shadowed_blames, 1);
    assert!(
        s.dyn_arg_checks >= 1,
        "callee of a shadow-failed body keeps dynamic checks: {s:?}"
    );
}

#[test]
fn shadowed_dyn_rejection_does_not_extend_static_trust() {
    // m's STATIC check passes (it assumes x: Fixnum per the annotation),
    // but this call's actual argument violates the annotation and the
    // dynamic rejection is shadowed. The frame must NOT be marked
    // checked: mul's own dynamic check has to run (and blame) on the
    // ill-typed value flowing through — those downstream blames are what
    // the canary observes.
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Shadow)
        .build();
    hb.eval(
        r#"
class Helper
  type :mul, "(Fixnum) -> Fixnum"
  def mul(x)
    x
  end
end
class Talk
  type :m, "(Fixnum) -> Fixnum", { "check" => true }
  def m(x)
    Helper.new.mul(x)
  end
end
"#,
    )
    .unwrap();
    hb.eval("Talk.new.m(\"oops\")").unwrap();
    let s = hb.stats();
    assert_eq!(s.shadowed_blames, 2, "m's dyn rejection AND mul's: {s:?}");
    assert_eq!(
        s.dyn_arg_checks, 2,
        "mul kept its dynamic check despite m's static pass: {s:?}"
    );
    let codes: Vec<String> = hb
        .diagnostics()
        .iter()
        .map(|d| d.code.to_string())
        .collect();
    assert_eq!(
        codes,
        vec!["HB0010", "HB0010"],
        "both boundary violations observed"
    );
}

#[test]
fn shadow_swallows_dynamic_argument_blame_too() {
    let prog = r#"
class Talk
  type :add, "(Fixnum) -> Fixnum"
  def add(x)
    7
  end
end
"#;
    let mut hb = Hummingbird::builder().build();
    hb.eval(prog).unwrap();
    let err = hb.eval("Talk.new.add(\"oops\")").unwrap_err();
    assert_eq!(err.kind, ErrorKind::ContractBlame);

    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Shadow)
        .build();
    hb.eval(prog).unwrap();
    let v = hb.eval("Talk.new.add(\"oops\")").unwrap();
    assert!(
        matches!(v, Value::Int(7)),
        "call proceeded under shadow: {v:?}"
    );
    assert_eq!(hb.stats().shadowed_blames, 1);
    let d = &hb.diagnostics()[0];
    assert_eq!(d.code, DiagCode::DynamicArgCheck);
    assert!(
        d.labels
            .iter()
            .any(|l| l.message.contains("shadow check policy")),
        "shadowed dynamic-arg blames are self-describing too: {d:?}"
    );
}

#[test]
fn shadowed_precondition_is_counted_and_self_describing() {
    let prog = r#"
class Talk
  def m(x)
    x
  end
end
pre Talk, "m" do |x|
  false
end
"#;
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Shadow)
        .build();
    hb.eval(prog).unwrap();
    let v = hb.eval("Talk.new.m(1)").unwrap();
    assert!(matches!(v, Value::Int(1)), "rejected call proceeded: {v:?}");
    assert_eq!(
        hb.stats().shadowed_blames,
        1,
        "precondition shadows count in the canary counter too"
    );
    let d = &hb.diagnostics()[0];
    assert_eq!(d.code, DiagCode::PreconditionFailed);
    assert!(
        d.labels
            .iter()
            .any(|l| l.message.contains("shadow check policy")),
        "shadowed precondition blames are self-describing: {d:?}"
    );

    // Enforce still rejects the same call.
    let mut hb = Hummingbird::builder().build();
    hb.eval(prog).unwrap();
    let err = hb.eval("Talk.new.m(1)").unwrap_err();
    assert_eq!(err.kind, ErrorKind::ContractBlame);
}

#[test]
fn policy_rollback_restores_the_trivial_fast_path() {
    // The hot path's one-Cell-load fast test must come back after a
    // canary rolls its policy changes back to Enforce — triviality is
    // semantic (everything resolves to Enforce), not a one-way latch.
    let hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Shadow)
        .build();
    assert!(!hb.rdl.policies_trivial());
    hb.set_check_policy(CheckPolicy::Enforce);
    assert!(hb.rdl.policies_trivial(), "global rollback un-latches");

    hb.set_class_policy("Talk", CheckPolicy::Shadow);
    hb.set_method_policy(MethodKey::instance("Talk", "m"), CheckPolicy::Off);
    assert!(!hb.rdl.policies_trivial());
    hb.set_class_policy("Talk", CheckPolicy::Enforce);
    hb.set_method_policy(MethodKey::instance("Talk", "m"), CheckPolicy::Enforce);
    assert!(
        hb.rdl.policies_trivial(),
        "lingering Enforce overrides are still the trivial configuration"
    );
}

#[test]
fn off_skips_static_and_dynamic_enforcement() {
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Off)
        .build();
    hb.eval(BAD_RETURN).unwrap();
    let v = hb.eval("Talk.new.late?(5)").unwrap();
    assert!(matches!(v, Value::Int(6)), "{v:?}");
    let s = hb.stats();
    assert_eq!(s.checks_performed + s.checks_failed, 0, "no check ran");
    assert_eq!(s.dyn_arg_checks, 0, "no dynamic check ran");
    assert!(hb.diagnostics().is_empty(), "and nothing was recorded");
}

#[test]
fn method_override_beats_class_beats_global() {
    // Global Shadow, but the method itself pinned back to Enforce.
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Shadow)
        .build();
    hb.set_method_policy(MethodKey::instance("Talk", "late?"), CheckPolicy::Enforce);
    hb.eval(BAD_RETURN).unwrap();
    let err = hb.eval("Talk.new.late?(5)").unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame, "method override wins");

    // Global Enforce, class shadowed.
    let mut hb = Hummingbird::builder().build();
    hb.set_class_policy("Talk", CheckPolicy::Shadow);
    hb.eval(BAD_RETURN).unwrap();
    hb.eval("Talk.new.late?(5)").unwrap();
    assert_eq!(hb.stats().shadowed_blames, 1, "class override shadows");
}

#[test]
fn check_policy_builtin_sets_global_class_and_method_scopes() {
    // Global scope from the top level.
    let mut hb = Hummingbird::builder().build();
    hb.eval("check_policy \"shadow\"").unwrap();
    hb.eval(BAD_RETURN).unwrap();
    hb.eval("Talk.new.late?(5)").unwrap();
    assert_eq!(hb.stats().shadowed_blames, 1);

    // Class scope from inside the class body; method scope pins back.
    let mut hb = Hummingbird::builder().build();
    hb.eval(
        r#"
class Talk
  check_policy "shadow"
  check_policy :late?, "enforce"
  type :late?, "(Fixnum) -> %bool", { "check" => true }
  def late?(mins)
    mins + 1
  end
  type :tag, "() -> String", { "check" => true }
  def tag
    123
  end
end
"#,
    )
    .unwrap();
    // tag (class policy: shadow) continues; late? (method: enforce) raises.
    hb.eval("Talk.new.tag").unwrap();
    assert_eq!(hb.stats().shadowed_blames, 1);
    let err = hb.eval("Talk.new.late?(5)").unwrap_err();
    assert_eq!(err.kind, ErrorKind::TypeBlame);

    // Explicit class form, anywhere.
    let mut hb = Hummingbird::builder().build();
    hb.eval(BAD_RETURN).unwrap();
    hb.eval("check_policy Talk, :late?, \"off\"").unwrap();
    hb.eval("Talk.new.late?(5)").unwrap();
    assert_eq!(hb.stats().checks_performed + hb.stats().checks_failed, 0);

    // Unknown policy names are argument errors.
    let mut hb = Hummingbird::builder().build();
    assert!(hb.eval("check_policy \"loud\"").is_err());
}

#[test]
fn check_all_respects_shadow_and_off() {
    // Shadow: eager checking still reports the blame (check_all never
    // raises, so Shadow == Enforce here), and the store has it.
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Shadow)
        .build();
    hb.eval(BAD_RETURN).unwrap();
    let diags = hb.check_all();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, DiagCode::ReturnType);

    // Off: the method is skipped entirely.
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Off)
        .build();
    hb.eval(BAD_RETURN).unwrap();
    assert!(hb.check_all().is_empty());
}

struct CollectingSink(Rc<RefCell<Vec<TypeDiagnostic>>>);

impl DiagnosticSink for CollectingSink {
    fn on_diagnostic(&self, d: &TypeDiagnostic) {
        self.0.borrow_mut().push(d.clone());
    }
}

#[test]
fn diagnostic_sink_streams_shadowed_blames() {
    let seen: Rc<RefCell<Vec<TypeDiagnostic>>> = Rc::default();
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Shadow)
        .diagnostics_cap(0) // store nothing; the sink is the channel
        .diagnostic_sink(Rc::new(CollectingSink(seen.clone())))
        .build();
    hb.eval(BAD_RETURN).unwrap();
    hb.eval("Talk.new.late?(5)").unwrap();
    assert!(hb.diagnostics().is_empty(), "cap 0 keeps the store empty");
    let seen = seen.borrow();
    assert_eq!(seen.len(), 1, "the sink still saw the blame as it happened");
    assert_eq!(seen[0].code, DiagCode::ReturnType);
}

#[test]
fn builder_caps_bound_the_stores() {
    // diagnostics_cap: only the most recent window is retained. A blamed
    // method re-blames on every call (failures are never cached).
    let mut hb = Hummingbird::builder()
        .check_policy(CheckPolicy::Shadow)
        .diagnostics_cap(2)
        .check_log_cap(2)
        .build();
    hb.eval(BAD_RETURN).unwrap();
    for _ in 0..5 {
        hb.eval("Talk.new.late?(5)").unwrap();
    }
    assert_eq!(hb.diagnostics().len(), 2, "diagnostic store is windowed");
    let log = hb.engine.take_check_log();
    assert_eq!(log.len(), 2, "check log is windowed");
    assert_eq!(hb.stats().checks_failed, 5, "counters still see every run");
}
