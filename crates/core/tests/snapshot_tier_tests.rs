//! The snapshot × bytecode-tier seam: pushing a `CacheSnapshot` into an
//! *already-warm* runtime (the rolling-deploy artifact push, as opposed
//! to the fresh-process warm boot in `snapshot_tests.rs`) retires the
//! covered local derivations, so their patched fast entries must fall
//! back to the guarded prologue — and re-patch once re-validation lands.
//! Also here: class-level `set_class_policy` changes, which revoke the
//! statically-trivial-policy premise patching relies on, must deopt just
//! like the global/method paths do.

use hummingbird::{CacheSnapshot, CheckPolicy, ExecTier, Hummingbird, SharedCache, SnapshotError};
use std::sync::Arc;

/// The steady-state shape from `exec_tier_tests.rs`: a checked driver
/// looping a checked inner call, so both methods patch after warm-up.
const STEADY_RB: &str = r#"
class Steady
  type :inner, "(Fixnum) -> Fixnum", { "check" => true }
  type :driver, "(Fixnum) -> Fixnum", { "check" => true }
  def inner(x)
    x + 1
  end
  def driver(n)
    i = 0
    acc = 0
    while i < n
      acc = inner(acc)
      i = i + 1
    end
    acc
  end
end
"#;

/// Publishes the steady-state world's derivations into a fresh tier and
/// serializes it — the artifact a control plane would distribute.
fn publish_artifact() -> CacheSnapshot {
    let shared = Arc::new(SharedCache::new());
    let mut publisher = Hummingbird::builder().shared_cache(shared.clone()).build();
    publisher.load_file("steady.rb", STEADY_RB).unwrap();
    publisher.eval("Steady.new.driver(10)").unwrap();
    assert_eq!(publisher.stats().checks_performed, 2, "driver and inner");
    shared.snapshot()
}

#[test]
fn snapshot_load_into_warm_runtime_depatches_then_repatches() {
    let snap = publish_artifact();

    // A warm bytecode-tier tenant: both methods checked, cached, patched.
    let shared = Arc::new(SharedCache::new());
    let mut hb = Hummingbird::builder()
        .exec_tier(ExecTier::Bytecode)
        .shared_cache(shared.clone())
        .build();
    hb.load_file("steady.rb", STEADY_RB).unwrap();
    hb.eval("Steady.new.driver(100)").unwrap();
    let warm = hb.stats();
    assert!(warm.fast_entries_patched >= 1, "{warm:?}");
    assert_eq!(warm.deopts, 0);
    assert_eq!(warm.shared_hits, 0, "this world derived everything itself");

    // Push the artifact into the live system: the covered methods'
    // derivations are retired, so their fast entries must depatch — a
    // patched entry skips the hook probe entirely and would otherwise
    // keep serving under a derivation the artifact superseded.
    let loaded = hb.load_snapshot(&snap).expect("artifact loads");
    assert_eq!(loaded, snap.entry_count());
    let after_push = hb.stats();
    assert!(
        after_push.deopts >= 1,
        "covered methods must depatch to the guarded prologue: {after_push:?}"
    );
    assert!(
        after_push.invalidations >= 1,
        "covered local derivations retired: {after_push:?}"
    );
    assert_eq!(
        after_push.fast_entries_patched, warm.fast_entries_patched,
        "no new patches before re-validation"
    );

    // The next run re-enters through the guarded prologue, re-validates
    // against the pushed artifact — the worlds are identical, so it
    // *adopts* instead of re-running check_sig — and re-patches.
    let v = hb.eval("Steady.new.driver(100)").unwrap();
    assert_eq!(format!("{v:?}"), "100");
    let rewarmed = hb.stats();
    assert!(
        rewarmed.shared_hits >= 1,
        "re-validation adopts from the pushed artifact: {rewarmed:?}"
    );
    assert_eq!(
        rewarmed.checks_performed, warm.checks_performed,
        "identical world: adoption, not re-derivation"
    );
    assert!(
        rewarmed.fast_entries_patched > warm.fast_entries_patched,
        "re-validated derivations re-patch: {rewarmed:?}"
    );
}

#[test]
fn snapshot_load_without_shared_tier_is_rejected() {
    let snap = publish_artifact();
    let mut hb = Hummingbird::builder().exec_tier(ExecTier::Bytecode).build();
    hb.load_file("steady.rb", STEADY_RB).unwrap();
    hb.eval("Steady.new.driver(10)").unwrap();
    let warm = hb.stats();
    assert_eq!(hb.load_snapshot(&snap), Err(SnapshotError::NoSharedTier));
    // Err means nothing happened: the warm state is untouched.
    let s = hb.stats();
    assert_eq!(s.deopts, warm.deopts);
    assert_eq!(s.invalidations, warm.invalidations);
}

#[test]
fn class_policy_change_mid_steady_state_deopts() {
    // PR 6 covered the global (`set_check_policy`) and per-method paths;
    // the per-class override must revoke patching the same way: the hook
    // has to be back in the loop to apply the non-trivial policy.
    let mut hb = Hummingbird::builder().exec_tier(ExecTier::Bytecode).build();
    hb.eval(STEADY_RB).unwrap();
    hb.eval("Steady.new.driver(100)").unwrap();
    let warm = hb.stats();
    assert!(warm.fast_entries_patched >= 1, "{warm:?}");
    assert_eq!(warm.deopts, 0);

    hb.set_class_policy("Steady", CheckPolicy::Shadow);
    let s = hb.stats();
    assert!(
        s.deopts >= 1,
        "class policy change must flush fast entries: {s:?}"
    );

    // While any policy layer is non-trivial nothing re-patches — the
    // per-call policy decision needs the hook — but execution continues.
    hb.eval("Steady.new.driver(10)").unwrap();
    assert_eq!(hb.stats().fast_entries_patched, warm.fast_entries_patched);

    // Restoring Enforce for the class makes the policy surface trivial
    // again, and steady state re-patches on the next guarded dispatch.
    hb.set_class_policy("Steady", CheckPolicy::Enforce);
    hb.eval("Steady.new.driver(10)").unwrap();
    let restored = hb.stats();
    assert!(
        restored.fast_entries_patched > warm.fast_entries_patched,
        "trivial policy surface re-admits fast entries: {restored:?}"
    );
}
