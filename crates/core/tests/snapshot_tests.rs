//! Cache snapshots: the shared derivation tier serialized for
//! cross-process warm boots. These tests cover the soundness side — a
//! snapshot is a set of *candidates*, and the normal adoption gate
//! (epoch fast path, witness replay) decides per tenant. The six-app
//! round trip lives in `hb-apps/tests/snapshot_apps.rs`, and the true
//! fresh-process boot is gated in CI by `tenant_probe --snapshot-smoke`.

use hummingbird::{CacheSnapshot, Hummingbird, SharedCache, SnapshotError};
use std::sync::Arc;

/// Loaded by BOTH worlds as the same file name and content, so the
/// checked method's body fingerprint (and entry id / sig version, which
/// are load-order counters) coincide — exactly the situation where only
/// witness replay can tell the worlds apart.
const TALK_RB: &str = r#"
class Base
  type :m, "() -> Fixnum"
  def m
    1
  end
end
class Sub < Base
end
class Talk
  type :compute, "(Sub) -> Fixnum", { "check" => true }
  def compute(s)
    s.m
  end
end
"#;

/// The publisher's divergence: an annotation on `Sub` itself, shadowing
/// `Base#m` along `Sub`'s chain. Loaded AFTER the first check so every
/// shared counter (entry ids, sig versions) still matches the clean
/// world's.
const SHADOWING_RB: &str = r#"
class Sub
  type :m, "() -> Fixnum"
end
"#;

fn eval_snapshot_world() -> CacheSnapshot {
    let shared = Arc::new(SharedCache::new());
    let mut publisher = Hummingbird::builder().shared_cache(shared.clone()).build();
    publisher.load_file("talk.rb", TALK_RB).unwrap();
    publisher.eval("Talk.new.compute(Sub.new)").unwrap();
    // Now diverge: the shadowing annotation invalidates Talk#compute's
    // derivation locally; the re-triggered check publishes a derivation
    // whose (TApp) witness resolves `m` to Sub#m, not Base#m.
    publisher.load_file("shadow.rb", SHADOWING_RB).unwrap();
    publisher.eval("Talk.new.compute(Sub.new)").unwrap();
    assert_eq!(
        publisher.stats().checks_performed,
        2,
        "sanity: compute checked twice (pre-shadow and re-checked after \
         the shadowing annotation invalidated it)"
    );
    shared.snapshot()
}

#[test]
fn round_trip_preserves_adoption_for_an_identical_world() {
    let shared = Arc::new(SharedCache::new());
    let mut publisher = Hummingbird::builder().shared_cache(shared.clone()).build();
    publisher.load_file("talk.rb", TALK_RB).unwrap();
    publisher.eval("Talk.new.compute(Sub.new)").unwrap();
    let checks = publisher.stats().checks_performed;
    assert!(checks >= 1);

    // Serialize → bytes → parse → load into a brand-new tier.
    let bytes = shared.snapshot().to_bytes();
    let snap = CacheSnapshot::from_bytes(&bytes).unwrap();
    assert_eq!(snap.entry_count(), shared.len());
    let fresh = Arc::new(SharedCache::new());
    assert_eq!(fresh.load_snapshot(&snap).unwrap(), snap.entry_count());

    // A tenant booting the identical world against the restored tier
    // adopts everything: zero `check_sig` runs.
    let mut adopter = Hummingbird::builder().shared_cache(fresh.clone()).build();
    adopter.load_file("talk.rb", TALK_RB).unwrap();
    adopter.eval("Talk.new.compute(Sub.new)").unwrap();
    let s = adopter.stats();
    assert_eq!(s.checks_performed, 0, "warm boot from bytes: no checks");
    assert_eq!(s.shared_hits, checks, "every first call adopted");
}

#[test]
fn snapshot_from_a_shadowing_world_is_rejected_by_witness_replay() {
    let snap = eval_snapshot_world();
    let fresh = Arc::new(SharedCache::new());
    fresh.load_snapshot(&snap).unwrap();

    // The adopter's world has NO shadowing annotation: its table resolves
    // `m` along Sub's chain to Base#m, but the snapshot derivation's
    // witness recorded Sub#m. Same entry id, same sig version, same body
    // fingerprint — the shared lookup *hits* — and witness replay must
    // reject the adoption, forcing a sound local re-check (which passes:
    // the method is fine in this world too).
    let mut adopter = Hummingbird::builder().shared_cache(fresh.clone()).build();
    adopter.load_file("talk.rb", TALK_RB).unwrap();
    adopter.eval("Talk.new.compute(Sub.new)").unwrap();
    let s = adopter.stats();
    assert_eq!(
        s.shared_hits, 0,
        "nothing from the shadowing world may be adopted: {s:?}"
    );
    assert!(
        s.checks_performed >= 1,
        "divergent snapshot must re-check, not adopt: {s:?}"
    );
    assert!(
        fresh.stats().hits >= 1,
        "sanity: the lookup reached the loaded entry (rejection happened \
         at witness replay, not at the probe): {:?}",
        fresh.stats()
    );
}

#[test]
fn corrupt_artifacts_yield_typed_errors_and_leave_a_live_tier_untouched() {
    // A live, serving tier: one publisher's derivations, already adopted
    // from by real tenants.
    let shared = Arc::new(SharedCache::new());
    let mut publisher = Hummingbird::builder().shared_cache(shared.clone()).build();
    publisher.load_file("talk.rb", TALK_RB).unwrap();
    publisher.eval("Talk.new.compute(Sub.new)").unwrap();
    let bytes = shared.snapshot().to_bytes();
    let live_len = shared.len();
    assert!(live_len >= 1);

    // Every corruption mode is refused with a *typed* error before any
    // structure is parsed — and none of the attempts can reach (let
    // alone poison) the live tier, because parsing fails up front.
    let wrong_magic = {
        let mut b = bytes.clone();
        b[..8].copy_from_slice(b"HBSNAPXX");
        b
    };
    assert!(matches!(
        CacheSnapshot::from_bytes(&wrong_magic),
        Err(SnapshotError::BadMagic)
    ));

    let truncated = &bytes[..bytes.len() / 2];
    assert!(matches!(
        CacheSnapshot::from_bytes(truncated),
        Err(SnapshotError::Truncated | SnapshotError::BadChecksum)
    ));

    let bit_flipped = {
        let mut b = bytes.clone();
        let mid = b.len() / 2;
        b[mid] ^= 0x01;
        b
    };
    assert!(matches!(
        CacheSnapshot::from_bytes(&bit_flipped),
        Err(SnapshotError::BadChecksum)
    ));

    // The tier still holds exactly what it held, and a fresh tenant
    // still warm-boots from it at full adoption.
    assert_eq!(shared.len(), live_len, "refusals never touch a live tier");
    let mut adopter = Hummingbird::builder().shared_cache(shared.clone()).build();
    adopter.load_file("talk.rb", TALK_RB).unwrap();
    adopter.eval("Talk.new.compute(Sub.new)").unwrap();
    let s = adopter.stats();
    assert_eq!(s.checks_performed, 0, "tier still serves warm boots: {s:?}");
    assert!(s.shared_hits >= 1);
}
