//! The whole-program view the analyses consume.
//!
//! A [`ProgramView`] is a distilled, immutable picture of a running
//! Hummingbird program: every user-defined method lowered to its CFG,
//! every root (top-level and class-body statement sequence, the code that
//! runs at load time), the class ancestor chains, and the set of
//! `check`-annotated method keys. The embedding layer (`hummingbird`'s
//! `analyze` module) builds it from the live interpreter registry and RDL
//! state — so analysis resolves methods and annotations exactly where the
//! engine does, including methods created by metaprogramming
//! (`define_method`), which no purely syntactic tool would see.

use hb_il::MethodCfg;
use hb_intern::MethodKey;
use hb_syntax::{FileId, Span};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One user-defined method: its key, lowered body and definition span.
#[derive(Clone)]
pub struct MethodUnit {
    pub key: MethodKey,
    pub cfg: Arc<MethodCfg>,
}

/// One root: the statement sequence of a file's top level or of one class
/// body — the code that executes when the file loads, and therefore an
/// entry point of the program for reachability purposes.
#[derive(Clone)]
pub struct RootUnit {
    /// The class whose body the statements ran in (`"Object"` at the
    /// file's top level).
    pub owner: String,
    /// Inside a class body, implicit-`self` calls dispatch at class
    /// level (`self` is the class object).
    pub class_level: bool,
    /// The file the statements came from (diagnostic label only).
    pub file: String,
    pub cfg: Arc<MethodCfg>,
}

/// An annotation governing checks: where it was registered and whether
/// `check` is on for it.
#[derive(Clone, Copy)]
pub struct AnnotationUnit {
    pub span: Span,
    pub check: bool,
    /// The Rails-`params` exception (paper §4): arguments are dynamically
    /// checked on *every* call, so the runtime never patches the checked
    /// fast prologue for this method.
    pub always_dyn_check: bool,
}

/// The distilled whole program.
#[derive(Default)]
pub struct ProgramView {
    pub methods: Vec<MethodUnit>,
    pub roots: Vec<RootUnit>,
    /// Class name → ancestor chain in method-resolution order (the class
    /// itself first, `Object` last) — the engine's `ancestor_syms` walk,
    /// captured by name.
    pub chains: BTreeMap<String, Vec<String>>,
    /// Every registered annotation, keyed exactly as the RDL table keys
    /// them.
    pub annotations: BTreeMap<MethodKey, AnnotationUnit>,
    /// Files warnings may be reported in: app code, not the bracketed
    /// substrate files (`<corelib>`, `<rails/…>`) or `<eval>` snippets.
    /// Roots and call edges still flow through excluded files — only the
    /// *reporting* is scoped.
    pub warn_files: BTreeSet<FileId>,
}

impl ProgramView {
    /// Walks `class`'s ancestor chain (falling back to just the class
    /// itself if the chain is unknown) and returns the first entry
    /// `f` accepts.
    fn along_chain<T>(&self, class: &str, mut f: impl FnMut(&str) -> Option<T>) -> Option<T> {
        match self.chains.get(class) {
            Some(chain) => chain.iter().find_map(|c| f(c)),
            None => f(class),
        }
    }

    /// Resolves the annotation governing `(class, class_level, method)`
    /// along the ancestor chain — the same resolution `Engine::before_call`
    /// performs via `lookup_along`. Returns the annotation's own key
    /// (which may name an ancestor) and its unit.
    pub fn resolve_annotation(
        &self,
        class: &str,
        class_level: bool,
        method: &str,
    ) -> Option<(MethodKey, AnnotationUnit)> {
        self.along_chain(class, |c| {
            let key = if class_level {
                MethodKey::class_level(c, method)
            } else {
                MethodKey::instance(c, method)
            };
            self.annotations.get(&key).map(|a| (key, *a))
        })
    }

    /// True when a `check`-annotation governs the method: at run time its
    /// body executes statically checked, so calls *it* makes are elided.
    pub fn is_checked(&self, class: &str, class_level: bool, method: &str) -> bool {
        self.resolve_annotation(class, class_level, method)
            .is_some_and(|(_, a)| a.check)
    }

    /// Resolves a call to `(class, class_level, method)` to the defining
    /// method unit's key, walking the ancestor chain like dispatch does.
    pub fn resolve_method(
        &self,
        class: &str,
        class_level: bool,
        method: &str,
        defined: &BTreeSet<MethodKey>,
    ) -> Option<MethodKey> {
        self.along_chain(class, |c| {
            let key = if class_level {
                MethodKey::class_level(c, method)
            } else {
                MethodKey::instance(c, method)
            };
            defined.contains(&key).then_some(key)
        })
    }

    /// Whether warnings may be reported at `span`.
    pub fn in_warn_scope(&self, span: Span) -> bool {
        span != Span::dummy() && self.warn_files.contains(&span.file)
    }
}
