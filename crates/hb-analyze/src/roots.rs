//! Collects a program's *roots*: the statement sequences that execute at
//! load time — each file's top level and each class/module body — lowered
//! to CFGs so the call-graph builder can treat them as entry points.
//!
//! Method definitions are skipped here (they only run when called; the
//! registry walk supplies their units), but everything else in a class
//! body — `has_many`, `validates`, `define_method`, plain calls — *is*
//! load-time code, and those macro calls are exactly how Rails-style apps
//! reach large parts of the substrate.

use crate::view::RootUnit;
use hb_il::lower_block_body;
use hb_syntax::{Expr, ExprKind, Program};
use std::sync::Arc;

/// Collects the root units of one parsed file.
pub fn collect_roots(program: &Program, file_name: &str) -> Vec<RootUnit> {
    let mut out = Vec::new();
    walk("Object", false, &program.body, file_name, &mut out);
    out
}

fn walk(owner: &str, class_level: bool, body: &[Expr], file: &str, out: &mut Vec<RootUnit>) {
    let mut stmts: Vec<Expr> = Vec::new();
    for e in body {
        match &e.kind {
            ExprKind::ClassDef { path, body, .. } | ExprKind::ModuleDef { path, body } => {
                // A class body is its own root: implicit-`self` calls in it
                // dispatch on the class object (class level).
                walk(&path.join("::"), true, body, file, out);
            }
            ExprKind::MethodDef(_) => {}
            _ => stmts.push(e.clone()),
        }
    }
    if stmts.is_empty() {
        return;
    }
    let span = stmts
        .iter()
        .skip(1)
        .fold(stmts[0].span, |acc, e| acc.to(e.span));
    let cfg = lower_block_body(&[], &stmts, span);
    out.push(RootUnit {
        owner: owner.to_string(),
        class_level,
        file: file.to_string(),
        cfg: Arc::new(cfg),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_syntax::parse_program;

    #[test]
    fn splits_toplevel_and_class_bodies() {
        let src = "
x = 1
class User
  attr_reader :name
  def save
    true
  end
end
User.new
";
        let p = parse_program(src, "t.rb").unwrap();
        let roots = collect_roots(&p, "t.rb");
        assert_eq!(roots.len(), 2);
        let top = roots.iter().find(|r| r.owner == "Object").unwrap();
        assert!(!top.class_level);
        let user = roots.iter().find(|r| r.owner == "User").unwrap();
        assert!(user.class_level);
        // The method def body is not part of the class-body root.
        assert!(user.cfg.instr_count() >= 1);
    }

    #[test]
    fn no_roots_for_defs_only() {
        let p = parse_program("def lone\n 1\nend", "t.rb").unwrap();
        assert!(collect_roots(&p, "t.rb").is_empty());
    }
}
