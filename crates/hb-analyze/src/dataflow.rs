//! The generic worklist dataflow framework over [`MethodCfg`]s.
//!
//! An analysis implements [`Analysis`]: a fact lattice (`Fact`, `join`),
//! a direction, boundary/top elements and transfer functions over
//! instructions and terminators. [`solve`] runs the standard iterative
//! worklist algorithm to a fixpoint and returns per-block entry/exit
//! states.
//!
//! Forward analyses additionally refine facts *per edge*
//! ([`Analysis::transfer_edge`]) and may prove an edge infeasible
//! ([`Analysis::edge_feasible`]) — that is how constant-condition folding
//! and `is_a?` narrowing make dead branches unreachable: a block no
//! feasible path ever flows into keeps `reached == false` in the
//! solution, which the unreachable-code pass reports directly.

use hb_il::{BlockId, Instr, MethodCfg, Terminator};

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Backward,
}

/// A dataflow analysis over one CFG.
pub trait Analysis {
    /// The lattice element. `join` must be monotone and the lattice of
    /// finite height (both set-union over locals and flat constant maps
    /// are), which bounds the worklist iteration.
    type Fact: Clone + PartialEq;

    fn direction(&self) -> Direction;

    /// The fact at the boundary: the method entry (forward) or every
    /// exit block (backward).
    fn boundary(&self, cfg: &MethodCfg) -> Self::Fact;

    /// The initial fact for non-boundary blocks (the lattice bottom for
    /// the chosen join).
    fn top(&self, cfg: &MethodCfg) -> Self::Fact;

    /// Merges `other` into `into`, returning whether `into` changed.
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool;

    fn transfer_instr(&self, instr: &Instr, fact: &mut Self::Fact);

    fn transfer_term(&self, _term: &Terminator, _fact: &mut Self::Fact) {}

    /// Forward only: refines the fact flowing along one `Branch` edge
    /// (`is_then` distinguishes the two) — the narrowing hook.
    fn transfer_edge(&self, _term: &Terminator, _is_then: bool, _fact: &mut Self::Fact) {}

    /// Forward only: whether any execution can take this edge given the
    /// block's exit fact. Returning `false` starves the successor of
    /// flow, marking it unreachable unless another path feeds it.
    fn edge_feasible(&self, _term: &Terminator, _is_then: bool, _fact: &Self::Fact) -> bool {
        true
    }
}

/// The fixpoint solution: per-block facts at block entry and exit.
pub struct BlockStates<F> {
    pub entry: Vec<F>,
    pub exit: Vec<F>,
    /// Forward only: whether any feasible path from the CFG entry reaches
    /// the block. Backward solves mark every block reached.
    pub reached: Vec<bool>,
}

/// Predecessor lists for every block of `cfg`.
pub fn predecessors(cfg: &MethodCfg) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); cfg.blocks.len()];
    for (i, _) in cfg.blocks.iter().enumerate() {
        let id = BlockId(i as u32);
        for s in cfg.successors(id) {
            preds[s.0 as usize].push(id);
        }
    }
    preds
}

/// Runs `analysis` over `cfg` to a fixpoint.
pub fn solve<A: Analysis>(analysis: &A, cfg: &MethodCfg) -> BlockStates<A::Fact> {
    match analysis.direction() {
        Direction::Forward => solve_forward(analysis, cfg),
        Direction::Backward => solve_backward(analysis, cfg),
    }
}

/// The edges out of a block, tagged with their then/else role for
/// [`Analysis::transfer_edge`] (`Goto` edges count as "then").
fn out_edges(term: &Terminator) -> Vec<(BlockId, bool)> {
    match term {
        Terminator::Goto(b) => vec![(*b, true)],
        Terminator::Branch {
            then_bb, else_bb, ..
        } => vec![(*then_bb, true), (*else_bb, false)],
        Terminator::Return(_) | Terminator::MethodReturn(_) => vec![],
    }
}

fn solve_forward<A: Analysis>(analysis: &A, cfg: &MethodCfg) -> BlockStates<A::Fact> {
    let n = cfg.blocks.len();
    let mut entry: Vec<A::Fact> = (0..n).map(|_| analysis.top(cfg)).collect();
    let mut exit: Vec<A::Fact> = (0..n).map(|_| analysis.top(cfg)).collect();
    let mut reached = vec![false; n];
    let e = cfg.entry.0 as usize;
    entry[e] = analysis.boundary(cfg);
    reached[e] = true;
    let mut worklist: Vec<usize> = vec![e];
    let mut queued = vec![false; n];
    queued[e] = true;
    while let Some(b) = worklist.pop() {
        queued[b] = false;
        let mut fact = entry[b].clone();
        let block = &cfg.blocks[b];
        for i in &block.instrs {
            analysis.transfer_instr(i, &mut fact);
        }
        analysis.transfer_term(&block.term, &mut fact);
        exit[b] = fact;
        for (succ, is_then) in out_edges(&block.term) {
            if !analysis.edge_feasible(&block.term, is_then, &exit[b]) {
                continue;
            }
            let mut edge_fact = exit[b].clone();
            analysis.transfer_edge(&block.term, is_then, &mut edge_fact);
            let s = succ.0 as usize;
            let changed = if !reached[s] {
                entry[s] = edge_fact;
                reached[s] = true;
                true
            } else {
                analysis.join(&mut entry[s], &edge_fact)
            };
            if changed && !queued[s] {
                queued[s] = true;
                worklist.push(s);
            }
        }
    }
    BlockStates {
        entry,
        exit,
        reached,
    }
}

fn solve_backward<A: Analysis>(analysis: &A, cfg: &MethodCfg) -> BlockStates<A::Fact> {
    let n = cfg.blocks.len();
    let preds = predecessors(cfg);
    let mut entry: Vec<A::Fact> = (0..n).map(|_| analysis.top(cfg)).collect();
    let mut exit: Vec<A::Fact> = (0..n).map(|_| analysis.top(cfg)).collect();
    // Every block participates (liveness must cover code the forward
    // reachability pass would prune — passes are independent).
    let mut worklist: Vec<usize> = (0..n).rev().collect();
    let mut queued = vec![true; n];
    while let Some(b) = worklist.pop() {
        queued[b] = false;
        let block = &cfg.blocks[b];
        let succs = cfg.successors(BlockId(b as u32));
        let mut out = if succs.is_empty() {
            analysis.boundary(cfg)
        } else {
            let mut acc = analysis.top(cfg);
            for s in &succs {
                analysis.join(&mut acc, &entry[s.0 as usize]);
            }
            acc
        };
        exit[b] = out.clone();
        analysis.transfer_term(&block.term, &mut out);
        for i in block.instrs.iter().rev() {
            analysis.transfer_instr(i, &mut out);
        }
        if out != entry[b] {
            entry[b] = out;
            for p in &preds[b] {
                let p = p.0 as usize;
                if !queued[p] {
                    queued[p] = true;
                    worklist.push(p);
                }
            }
        }
    }
    BlockStates {
        entry,
        exit,
        reached: vec![true; n],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_il::{BasicBlock, Operand, Rvalue};
    use hb_syntax::Span;
    use std::collections::BTreeSet;

    /// May-assigned locals: forward set union.
    struct MayAssign;
    impl Analysis for MayAssign {
        type Fact = BTreeSet<String>;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self, cfg: &MethodCfg) -> Self::Fact {
            cfg.params.iter().map(|p| p.name.clone()).collect()
        }
        fn top(&self, _cfg: &MethodCfg) -> Self::Fact {
            BTreeSet::new()
        }
        fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool {
            let before = into.len();
            into.extend(other.iter().cloned());
            into.len() != before
        }
        fn transfer_instr(&self, instr: &Instr, fact: &mut Self::Fact) {
            if let hb_il::InstrKind::Assign { local, .. } = &instr.kind {
                fact.insert(local.clone());
            }
        }
    }

    fn diamond() -> MethodCfg {
        // bb0: branch nondet ? bb1 : bb2; bb1: x := 1; bb2: (nothing);
        // bb3: return
        let assign = |local: &str| Instr {
            kind: hb_il::InstrKind::Assign {
                local: local.into(),
                rv: Rvalue::Use(Operand::IntConst(1)),
            },
            span: Span::dummy(),
        };
        MethodCfg {
            name: "m".into(),
            params: vec![],
            blocks: vec![
                BasicBlock {
                    instrs: vec![],
                    term: Terminator::Branch {
                        cond: Operand::Nondet,
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                BasicBlock {
                    instrs: vec![assign("x")],
                    term: Terminator::Goto(BlockId(3)),
                },
                BasicBlock {
                    instrs: vec![],
                    term: Terminator::Goto(BlockId(3)),
                },
                BasicBlock {
                    instrs: vec![],
                    term: Terminator::Return(Operand::NilConst),
                },
            ],
            entry: BlockId(0),
            block_lits: vec![],
            span: Span::dummy(),
        }
    }

    #[test]
    fn forward_join_unions_paths() {
        let cfg = diamond();
        let sol = solve(&MayAssign, &cfg);
        // x is maybe-assigned at the join (one path assigns it) …
        assert!(sol.entry[3].contains("x"));
        // … but not at the entry of the skipping arm.
        assert!(!sol.entry[2].contains("x"));
        assert!(sol.reached.iter().all(|&r| r));
    }

    #[test]
    fn predecessors_inverts_successors() {
        let cfg = diamond();
        let preds = predecessors(&cfg);
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
        assert!(preds[0].is_empty());
    }
}
