//! Whole-program call graph and the passes built on it:
//!
//! * **stale-annotation audit** (`HB1005`) — `check`-annotated methods no
//!   program entry point can reach: their annotation will never be
//!   exercised by the just-in-time checker.
//! * **dyn-check-residue auditor** (`HB1006`) — classifies every resolved
//!   call edge as checked→checked (the engine elides the callee's dynamic
//!   argument checks and, on the bytecode tier, patches the checked fast
//!   prologue), unchecked→checked (the guarded prologue *survives*: every
//!   call pays per-argument dynamic checks), or →unannotated. The
//!   transient-gradual-typing literature shows residual checks dominate
//!   overhead; this pass turns them from a runtime surprise into a static
//!   report.
//!
//! Resolution mirrors the engine: implicit-`self` and known-receiver
//! calls walk the ancestor chain exactly as dispatch does (the chains are
//! captured from the live registry); receivers the flow analysis cannot
//! type fall back to class-hierarchy analysis over same-named
//! definitions. Roots — file top levels and class bodies — are the entry
//! points, and are always *unchecked* callers (top-level code has no
//! annotation).

use crate::dataflow::{solve, Analysis};
use crate::passes::{AbsVal, FlowFact, ForwardFlow};
use crate::view::{MethodUnit, ProgramView};
use hb_il::{CallArg, InstrKind, MethodCfg, Operand, Rvalue};
use hb_intern::MethodKey;
use hb_syntax::{BlameTarget, DiagCode, DiagLabel, LabelRole, Span, TypeDiagnostic};
use std::collections::{BTreeMap, BTreeSet};

/// Who makes a call: a load-time root or a user-defined method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Caller {
    Root(usize),
    Method(MethodKey),
}

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    pub caller: Caller,
    /// The *defining* method's key (dispatch resolution).
    pub callee: MethodKey,
    /// The key the runtime caches and patches under: the receiver class
    /// as the analysis knows it (defaults to the defining class).
    pub receiver: MethodKey,
    pub span: Span,
    /// Abstract values of the positional arguments at the call site, in
    /// order, as the flow analysis knew them — the raw material signature
    /// inference joins over all of a method's in-edges. `None` when the
    /// call shape is opaque (splat, reflective registration, `super`);
    /// inner `None`s are positions the flow could not type.
    pub args: Option<Vec<Option<AbsVal>>>,
}

/// The whole-program call graph.
pub struct CallGraph {
    pub edges: Vec<Edge>,
    /// Methods reachable from any root.
    pub reachable: BTreeSet<MethodKey>,
}

/// Aggregate residue numbers for one program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResidueSummary {
    /// Methods reachable from the roots.
    pub reachable_methods: usize,
    /// checked→checked edges: the callee's checks are elided.
    pub elided_edges: usize,
    /// unchecked→checked edges: the guarded prologue survives.
    pub residual_edges: usize,
    /// Edges to methods with no `check` annotation anywhere on the chain.
    pub unannotated_edges: usize,
    /// Of the elided edges, those elided *through an inferred annotation*
    /// — the callee's governing `check` entry was produced by the
    /// inference pass, not written by the programmer. These edges were
    /// `unannotated` before inference ran.
    pub elided_inferred_edges: usize,
    /// Edges whose callee is a dynamically-defined method
    /// (`define_method`): Rolify's per-iteration registration churn. Such
    /// edges still classify as elided/residual/unannotated above; this
    /// counter marks how many of the program's edges ride on definitions
    /// that the runtime re-creates (and therefore re-patches) per
    /// registration, so a cumulative runtime patch count exceeding the
    /// static prediction is expected exactly when this is non-zero.
    pub dynamic_def_edges: usize,
    /// `check`-annotated methods whose annotation no entry point reaches.
    pub stale_annotations: usize,
    /// Distinct `(receiver class, method)` entries the bytecode tier is
    /// predicted to patch once the program warms up — the static analogue
    /// of the runtime `fast_entries_patched` stat.
    pub predicted_fast_entries: BTreeSet<MethodKey>,
    /// Annotated methods with at least one surviving guarded edge.
    pub residual_methods: BTreeSet<MethodKey>,
}

impl ResidueSummary {
    /// One-line human rendering (the `hb_lint --analyze` footer).
    pub fn render(&self) -> String {
        format!(
            "call edges: {} elided (checked->checked, {} via inferred annotations), \
             {} residual (unchecked->checked), {} unannotated, {} on dynamic definitions; \
             {} reachable methods; {} stale annotations; {} predicted fast entries",
            self.elided_edges,
            self.elided_inferred_edges,
            self.residual_edges,
            self.unannotated_edges,
            self.dynamic_def_edges,
            self.reachable_methods,
            self.stale_annotations,
            self.predicted_fast_entries.len()
        )
    }
}

struct EdgeCollector<'a> {
    view: &'a ProgramView,
    /// Instance-level CHA index: method name → defining keys.
    by_name: BTreeMap<&'a str, Vec<MethodKey>>,
    defined: BTreeSet<MethodKey>,
    edges: Vec<Edge>,
}

impl EdgeCollector<'_> {
    fn resolve(&self, class: &str, class_level: bool, method: &str) -> Option<MethodKey> {
        self.view
            .resolve_method(class, class_level, method, &self.defined)
    }

    fn push(
        &mut self,
        caller: Caller,
        callee: MethodKey,
        receiver: MethodKey,
        span: Span,
        args: Option<Vec<Option<AbsVal>>>,
    ) {
        self.edges.push(Edge {
            caller,
            callee,
            receiver,
            span,
            args,
        });
    }

    /// Resolves one call site and records its edges. `ctx_class`/
    /// `ctx_level` locate implicit-`self`, `fact` types explicit
    /// receivers.
    #[allow(clippy::too_many_arguments)] // one argument per call-site fact
    fn call_site(
        &mut self,
        caller: Caller,
        ctx_class: &str,
        ctx_level: bool,
        flow: &ForwardFlow<'_>,
        fact: &FlowFact,
        recv: &Option<Operand>,
        name: &str,
        args: &[CallArg],
        span: Span,
    ) {
        // Reflective-registration heuristic: a call handed a class object
        // together with a symbol literal (`$router.draw("GET", path,
        // TalksController, :index)`) registers `(class, method)` pairs for
        // later reflective dispatch (`route[0].new.send(route[1])` in the
        // substrate). Record the would-be dispatch edges here, at the
        // registration site — without this, every Rails controller action
        // looks unreachable.
        let mut classes: Vec<String> = Vec::new();
        let mut syms: Vec<&str> = Vec::new();
        for a in args {
            let op = match a {
                CallArg::Pos(op) | CallArg::Splat(op) | CallArg::BlockPass(op) => op,
            };
            if let Operand::SymConst(sym) = op {
                syms.push(sym);
            } else if let Some(AbsVal::ClassObj(k)) = flow.abs_of_operand(op, fact) {
                classes.push(k);
            }
        }
        // Positional-argument abstractions for the inference pass: the
        // call shape is opaque the moment a splat appears.
        let pos_abs: Option<Vec<Option<AbsVal>>> = {
            let mut v = Vec::new();
            let mut plain = true;
            for a in args {
                match a {
                    CallArg::Pos(op) => v.push(flow.abs_of_operand(op, fact)),
                    CallArg::Splat(_) => {
                        plain = false;
                        break;
                    }
                    CallArg::BlockPass(_) => {}
                }
            }
            plain.then_some(v)
        };
        if name != "send" && name != "public_send" && name != "method" {
            for k in &classes {
                for m in &syms {
                    if let Some(callee) = self.resolve(k, false, m) {
                        // Registration, not invocation: the eventual
                        // reflective call's arguments are unknown here.
                        self.push(caller, callee, mk_key(k, false, m), span, None);
                    }
                }
            }
        }
        let recv_abs = match recv {
            None | Some(Operand::SelfRef) => {
                if let Some(callee) = self.resolve(ctx_class, ctx_level, name) {
                    let receiver = mk_key(ctx_class, ctx_level, name);
                    self.push(caller, callee, receiver, span, pos_abs);
                }
                return;
            }
            Some(op) => flow.abs_of_operand(op, fact),
        };
        // `send`/`public_send` with a literal symbol is an ordinary call
        // under another name; the first positional argument is the method
        // name, the rest are the forwarded arguments.
        if (name == "send" || name == "public_send") && !syms.is_empty() {
            let fwd_abs: Option<Vec<Option<AbsVal>>> = pos_abs
                .as_ref()
                .filter(|v| !v.is_empty())
                .map(|v| v[1..].to_vec());
            for m in &syms {
                match &recv_abs {
                    Some(AbsVal::ClassObj(k)) => {
                        if let Some(callee) = self.resolve(k, true, m) {
                            self.push(caller, callee, mk_key(k, true, m), span, fwd_abs.clone());
                        }
                    }
                    Some(AbsVal::Klass(k)) | Some(AbsVal::InstanceOf(k)) => {
                        if let Some(callee) = self.resolve(k, false, m) {
                            self.push(caller, callee, mk_key(k, false, m), span, fwd_abs.clone());
                        }
                    }
                    _ => {
                        if let Some(keys) = self.by_name.get(*m) {
                            for callee in keys.clone() {
                                self.push(caller, callee, callee, span, fwd_abs.clone());
                            }
                        }
                    }
                }
            }
            return;
        }
        match recv_abs {
            Some(AbsVal::ClassObj(k)) => {
                if name == "new" {
                    // Construction dispatches `initialize` on the instance.
                    if let Some(callee) = self.resolve(&k, false, "initialize") {
                        self.push(
                            caller,
                            callee,
                            mk_key(&k, false, "initialize"),
                            span,
                            pos_abs,
                        );
                    }
                } else if let Some(callee) = self.resolve(&k, true, name) {
                    self.push(caller, callee, mk_key(&k, true, name), span, pos_abs);
                }
            }
            Some(AbsVal::Klass(k)) | Some(AbsVal::InstanceOf(k)) => {
                if let Some(callee) = self.resolve(&k, false, name) {
                    self.push(caller, callee, mk_key(&k, false, name), span, pos_abs);
                }
            }
            _ => {
                // Untyped receiver: class-hierarchy analysis over every
                // same-named instance definition.
                if let Some(keys) = self.by_name.get(name) {
                    for callee in keys.clone() {
                        self.push(caller, callee, callee, span, pos_abs.clone());
                    }
                }
            }
        }
    }

    /// Walks one CFG (and its block literals) replaying the forward flow
    /// to type receivers at each call site.
    fn walk_cfg(
        &mut self,
        caller: Caller,
        ctx_class: &str,
        ctx_level: bool,
        cfg: &MethodCfg,
        boundary: BTreeSet<String>,
    ) {
        let flow = ForwardFlow {
            view: self.view,
            boundary_assigned: boundary.clone(),
        };
        let sol = solve(&flow, cfg);
        for (bi, block) in cfg.blocks.iter().enumerate() {
            // Edges from statically dead code would inflate the residue
            // report with calls that never execute; skip them.
            if !sol.reached[bi] {
                continue;
            }
            let mut fact = sol.entry[bi].clone();
            for instr in &block.instrs {
                if let InstrKind::Assign { rv, .. } = &instr.kind {
                    match rv {
                        Rvalue::Call {
                            recv, name, args, ..
                        } => {
                            self.call_site(
                                caller, ctx_class, ctx_level, &flow, &fact, recv, name, args,
                                instr.span,
                            );
                        }
                        Rvalue::Super { .. } => {
                            // `super` dispatches the same name above the
                            // defining class.
                            if let Caller::Method(key) = caller {
                                if let Some(chain) = self.view.chains.get(key.class.as_str()) {
                                    let above: Vec<String> =
                                        chain.iter().skip(1).cloned().collect();
                                    for c in above {
                                        if let Some(callee) = self
                                            .defined
                                            .get(&mk_key(&c, key.class_level, key.method.as_str()))
                                            .copied()
                                        {
                                            self.push(caller, callee, callee, instr.span, None);
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
                flow.transfer_instr(instr, &mut fact);
            }
        }
        if !cfg.block_lits.is_empty() {
            let mut seed = boundary;
            for b in &cfg.blocks {
                for i in &b.instrs {
                    if let InstrKind::Assign { local, .. } = &i.kind {
                        seed.insert(local.clone());
                    }
                }
            }
            for bl in &cfg.block_lits {
                let mut s = seed.clone();
                s.extend(bl.params.iter().map(|p| p.name.clone()));
                self.walk_cfg(caller, ctx_class, ctx_level, &bl.cfg, s);
            }
        }
    }
}

fn mk_key(class: &str, class_level: bool, method: &str) -> MethodKey {
    if class_level {
        MethodKey::class_level(class, method)
    } else {
        MethodKey::instance(class, method)
    }
}

/// Builds the call graph: edges from every root and method, then
/// reachability from the roots.
pub fn build_call_graph(view: &ProgramView) -> CallGraph {
    let defined: BTreeSet<MethodKey> = view.methods.iter().map(|m| m.key).collect();
    let mut by_name: BTreeMap<&str, Vec<MethodKey>> = BTreeMap::new();
    for m in &view.methods {
        if !m.key.class_level {
            by_name
                .entry(m.key.method.as_str())
                .or_default()
                .push(m.key);
        }
    }
    let mut c = EdgeCollector {
        view,
        by_name,
        defined,
        edges: Vec::new(),
    };
    for (i, root) in view.roots.iter().enumerate() {
        c.walk_cfg(
            Caller::Root(i),
            &root.owner.clone(),
            root.class_level,
            &root.cfg.clone(),
            BTreeSet::new(),
        );
    }
    for m in &view.methods {
        let boundary: BTreeSet<String> = m.cfg.params.iter().map(|p| p.name.clone()).collect();
        c.walk_cfg(
            Caller::Method(m.key),
            m.key.class.as_str(),
            m.key.class_level,
            &m.cfg.clone(),
            boundary,
        );
    }

    // Reachability: BFS from the roots.
    let mut out_edges: BTreeMap<Caller, Vec<usize>> = BTreeMap::new();
    for (i, e) in c.edges.iter().enumerate() {
        out_edges.entry(e.caller).or_default().push(i);
    }
    let mut reachable: BTreeSet<MethodKey> = BTreeSet::new();
    let mut work: Vec<Caller> = (0..view.roots.len()).map(Caller::Root).collect();
    while let Some(caller) = work.pop() {
        for &ei in out_edges.get(&caller).map(Vec::as_slice).unwrap_or(&[]) {
            let callee = c.edges[ei].callee;
            if reachable.insert(callee) {
                work.push(Caller::Method(callee));
            }
        }
    }
    CallGraph {
        edges: c.edges,
        reachable,
    }
}

/// Runs the call-graph passes: the stale-annotation audit and the
/// residue auditor. Returns warnings plus the aggregate summary.
pub fn analyze_call_graph(view: &ProgramView) -> (Vec<TypeDiagnostic>, ResidueSummary) {
    let graph = build_call_graph(view);
    let mut out = Vec::new();
    let mut summary = ResidueSummary {
        reachable_methods: graph.reachable.len(),
        ..ResidueSummary::default()
    };

    let unit_by_key: BTreeMap<MethodKey, &MethodUnit> =
        view.methods.iter().map(|m| (m.key, m)).collect();
    let checked = |key: &MethodKey| -> bool {
        view.is_checked(key.class.as_str(), key.class_level, key.method.as_str())
    };

    // --- HB1005: stale annotations --------------------------------------
    for m in &view.methods {
        let Some((ann_key, ann)) = view.resolve_annotation(
            m.key.class.as_str(),
            m.key.class_level,
            m.key.method.as_str(),
        ) else {
            continue;
        };
        if !ann.check || graph.reachable.contains(&m.key) {
            continue;
        }
        summary.stale_annotations += 1;
        // Report at the definition, labeled with the annotation: the span
        // scope keeps substrate-internal annotations out of app reports.
        if view.in_warn_scope(m.cfg.span) {
            out.push(
                TypeDiagnostic::warning(
                    DiagCode::StaleAnnotation,
                    format!(
                        "annotated method {} is unreachable from every program entry point \
                         (stale annotation: the just-in-time checker will never check it)",
                        m.key
                    ),
                    m.cfg.span,
                    BlameTarget::Lint {
                        pass: "stale-annotation",
                    },
                )
                .with_method(m.key)
                .with_label(
                    DiagLabel::new(
                        LabelRole::BlamedAnnotation,
                        "annotation registered here",
                        ann.span,
                    )
                    .with_method(ann_key),
                ),
            );
        }
    }

    // --- HB1006: dyn-check residue ---------------------------------------
    struct Residue {
        elided: usize,
        residual_sites: Vec<Span>,
    }
    let mut per_callee: BTreeMap<MethodKey, Residue> = BTreeMap::new();
    for e in &graph.edges {
        // Dynamic-definition classification comes before the liveness
        // cut: a metaprogrammed method is often reached only through
        // reflective dispatch (`send` with a computed name), which
        // contributes no static in-edge — yet its body's own out-edges
        // are real calls the running program makes.
        let caller_dyn = match e.caller {
            Caller::Root(_) => false,
            Caller::Method(k) => view.dynamic_defs.contains(&k),
        };
        if caller_dyn || view.dynamic_defs.contains(&e.callee) {
            summary.dynamic_def_edges += 1;
        }
        let caller_live = match e.caller {
            Caller::Root(_) => true,
            Caller::Method(k) => graph.reachable.contains(&k) || caller_dyn,
        };
        if !caller_live {
            continue;
        }
        if !checked(&e.callee) {
            summary.unannotated_edges += 1;
            continue;
        }
        let ann = view.resolve_annotation(
            e.callee.class.as_str(),
            e.callee.class_level,
            e.callee.method.as_str(),
        );
        // A checked callee is patched once any dispatch checks it —
        // unless it is always-dynamically-checked (the runtime refuses
        // the fast prologue for those).
        let always_dyn = ann.is_some_and(|(_, a)| a.always_dyn_check);
        if !always_dyn {
            summary.predicted_fast_entries.insert(e.receiver);
        }
        let caller_checked = match e.caller {
            Caller::Root(_) => false,
            Caller::Method(k) => checked(&k),
        };
        let r = per_callee.entry(e.callee).or_insert(Residue {
            elided: 0,
            residual_sites: Vec::new(),
        });
        if caller_checked {
            summary.elided_edges += 1;
            if ann.is_some_and(|(_, a)| a.inferred) {
                summary.elided_inferred_edges += 1;
            }
            r.elided += 1;
        } else {
            summary.residual_edges += 1;
            r.residual_sites.push(e.span);
        }
    }
    // A dynamically-defined method (a `define_method` / `attr_accessor`
    // registry entry) exists only because the running program created
    // it, in the define-on-demand idiom: the definition is itself
    // evidence of dispatch, even when that dispatch is reflective
    // (`send` with a computed name) and so contributes no static call
    // edge. A checked one is predicted to be patched.
    for key in &view.dynamic_defs {
        if checked(key) {
            let always_dyn = view
                .resolve_annotation(key.class.as_str(), key.class_level, key.method.as_str())
                .is_some_and(|(_, a)| a.always_dyn_check);
            if !always_dyn {
                summary.predicted_fast_entries.insert(*key);
            }
        }
    }

    for (callee, r) in &mut per_callee {
        if r.residual_sites.is_empty() {
            continue;
        }
        summary.residual_methods.insert(*callee);
        let span = unit_by_key.get(callee).map(|u| u.cfg.span);
        let Some(span) = span.filter(|s| view.in_warn_scope(*s)) else {
            continue;
        };
        r.residual_sites.sort_by_key(|s| (s.file.0, s.lo, s.hi));
        let mut d = TypeDiagnostic::warning(
            DiagCode::DynCheckResidue,
            format!(
                "dynamic-check residue: {} is reached from {} unchecked call site(s), so its \
                 guarded prologue survives elision ({} elided edge(s))",
                callee,
                r.residual_sites.len(),
                r.elided
            ),
            span,
            BlameTarget::Lint { pass: "residue" },
        )
        .with_method(*callee);
        d = d.with_label(DiagLabel::new(
            LabelRole::CallSite,
            "first unchecked call site",
            r.residual_sites[0],
        ));
        out.push(d);
    }

    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roots::collect_roots;
    use crate::view::{AnnotationUnit, MethodUnit};
    use hb_il::{collect_method_defs, lower_method};
    use hb_syntax::{parse_program, FileId, SourceMap};
    use std::sync::Arc;

    /// Builds a view straight from source: methods by lexical owner,
    /// top-level/class-body roots, flat chains.
    fn view_of(src: &str, annotated: &[(&str, &str)]) -> ProgramView {
        let mut sm = SourceMap::new();
        sm.add_file("t.rb", src);
        let p = parse_program(src, "t.rb").unwrap();
        let mut view = ProgramView::default();
        view.warn_files.insert(FileId(0));
        for d in collect_method_defs(&p) {
            let owner = d.owner.clone();
            view.chains
                .entry(owner.clone())
                .or_insert_with(|| vec![owner.clone(), "Object".into()]);
            let key = mk_key(&owner, d.self_method, &d.def.name);
            view.methods.push(MethodUnit {
                key,
                cfg: Arc::new(lower_method(&d.def)),
            });
        }
        view.chains
            .entry("Object".into())
            .or_insert_with(|| vec!["Object".into()]);
        for (class, method) in annotated {
            view.annotations.insert(
                MethodKey::instance(class, method),
                AnnotationUnit {
                    span: Span::dummy(),
                    check: true,
                    always_dyn_check: false,
                    inferred: false,
                },
            );
        }
        view.roots = collect_roots(&p, "t.rb");
        view
    }

    #[test]
    fn residue_classifies_root_and_checked_edges() {
        let src = "
class A
  def entry
    helper
  end
  def helper
    1
  end
end
a = A.new
a.entry
";
        // Both annotated: root→entry is residual, entry→helper is elided.
        let view = view_of(src, &[("A", "entry"), ("A", "helper")]);
        let (diags, summary) = analyze_call_graph(&view);
        assert_eq!(summary.residual_edges, 1);
        assert_eq!(summary.elided_edges, 1);
        assert_eq!(summary.stale_annotations, 0);
        assert_eq!(summary.predicted_fast_entries.len(), 2);
        // Exactly one residue warning: the root-called entry.
        let residues: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::DynCheckResidue)
            .collect();
        assert_eq!(residues.len(), 1);
        assert_eq!(residues[0].method, Some(MethodKey::instance("A", "entry")));
    }

    #[test]
    fn stale_annotation_flags_unreached_method() {
        let src = "
class A
  def used
    1
  end
  def orphan
    2
  end
end
A.new.used
";
        let view = view_of(src, &[("A", "orphan")]);
        let (diags, summary) = analyze_call_graph(&view);
        assert_eq!(summary.stale_annotations, 1);
        assert!(diags.iter().any(|d| d.code == DiagCode::StaleAnnotation
            && d.method == Some(MethodKey::instance("A", "orphan"))));
    }

    #[test]
    fn constructor_edge_reaches_initialize() {
        let src = "
class A
  def initialize
    setup
  end
  def setup
    1
  end
end
A.new
";
        let view = view_of(src, &[]);
        let graph = build_call_graph(&view);
        assert!(graph
            .reachable
            .contains(&MethodKey::instance("A", "initialize")));
        assert!(graph.reachable.contains(&MethodKey::instance("A", "setup")));
    }
}
