//! The per-method lint passes, built on the dataflow framework:
//!
//! * **use-before-assign** (`HB1001`) — a forward may-assigned analysis
//!   with constant-branch folding: a read no assignment can possibly
//!   reach yields `nil` at run time.
//! * **unreachable code** (`HB1002`) — blocks no feasible path from the
//!   entry reaches (after `return`, after `raise`, or in branches proven
//!   dead by constant conditions and `is_a?` narrowing).
//! * **dead store** (`HB1003`) / **unused local** (`HB1004`) — a backward
//!   liveness analysis.
//!
//! Every pass is deliberately conservative: a warning fires only when the
//! defect holds on *every* execution the analysis cannot exclude, because
//! the six-app golden warning sets gate CI and a flaky heuristic would
//! churn them.

use crate::dataflow::{solve, Analysis, Direction};
use crate::view::ProgramView;
use hb_il::{BlockId, CallArg, Instr, InstrKind, MethodCfg, Operand, Rvalue, StrPiece, Terminator};
use hb_intern::MethodKey;
use hb_syntax::{BlameTarget, DiagCode, Span, TypeDiagnostic};
use std::collections::{BTreeMap, BTreeSet};

/// Context shared by the passes over one CFG.
pub struct PassCtx<'a> {
    pub view: &'a ProgramView,
    /// Human label for messages: `User#save`, `the top level of app.rb`.
    pub label: String,
    /// The method being analyzed, if this CFG is a method body.
    pub method: Option<MethodKey>,
}

/// Abstract value of a local: a flat lattice refined by literals,
/// constructor calls and `is_a?` tests. Absent from the map means ⊤.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsVal {
    True,
    False,
    Nil,
    /// Truthy, class unknown.
    Truthy,
    /// An instance of exactly this class (`K.new`, literals).
    Klass(String),
    /// An instance of this class or a subclass (`is_a?` narrowing).
    InstanceOf(String),
    /// The class object itself (`ConstRef`), receiver of class-level calls.
    ClassObj(String),
    /// The boolean result of `local.is_a?(class)` — provenance that lets
    /// a branch on this value narrow `local` along its then-edge.
    Test {
        local: String,
        class: String,
    },
}

impl AbsVal {
    pub fn truthiness(&self) -> Option<bool> {
        match self {
            AbsVal::True
            | AbsVal::Truthy
            | AbsVal::Klass(_)
            | AbsVal::InstanceOf(_)
            | AbsVal::ClassObj(_) => Some(true),
            AbsVal::False | AbsVal::Nil => Some(false),
            AbsVal::Test { .. } => None,
        }
    }
}

/// The forward product fact: abstract values plus the may-assigned set.
/// One solve feeds both `HB1001` (assigned) and `HB1002` (reachability
/// with narrowing) — and the call-graph builder replays the same transfer
/// to know receiver classes at call sites.
#[derive(Clone, PartialEq, Default)]
pub struct FlowFact {
    pub abs: BTreeMap<String, AbsVal>,
    pub assigned: BTreeSet<String>,
}

/// The forward analysis. `boundary_assigned` seeds the may-assigned set:
/// parameters, plus (for block-literal bodies) every local of the
/// enclosing method — closures see their environment.
pub struct ForwardFlow<'a> {
    pub view: &'a ProgramView,
    pub boundary_assigned: BTreeSet<String>,
}

impl ForwardFlow<'_> {
    pub fn abs_of_operand(&self, op: &Operand, fact: &FlowFact) -> Option<AbsVal> {
        match op {
            Operand::NilConst => Some(AbsVal::Nil),
            Operand::TrueConst => Some(AbsVal::True),
            Operand::FalseConst => Some(AbsVal::False),
            Operand::IntConst(_) => Some(AbsVal::Klass("Integer".into())),
            Operand::FloatConst(_) => Some(AbsVal::Klass("Float".into())),
            Operand::StrConst(_) => Some(AbsVal::Klass("String".into())),
            Operand::SymConst(_) => Some(AbsVal::Klass("Symbol".into())),
            Operand::Local(n) => fact.abs.get(n).cloned(),
            Operand::SelfRef | Operand::Nondet => None,
        }
    }

    /// `recv.is_a?(C)` where `recv`'s class is (partially) known: decided
    /// along the ancestor chain; undecidable receivers produce a
    /// [`AbsVal::Test`] so a branch can still narrow.
    fn eval_is_a(&self, recv: &Operand, recv_abs: Option<&AbsVal>, class: &str) -> Option<AbsVal> {
        let chain_has = |k: &str| -> Option<bool> {
            self.view
                .chains
                .get(k)
                .map(|chain| chain.iter().any(|c| c == class))
        };
        match recv_abs {
            // Exact class: the chain decides fully.
            Some(AbsVal::Klass(k)) => {
                chain_has(k).map(|b| if b { AbsVal::True } else { AbsVal::False })
            }
            // Upper bound: ancestors of the bound are ancestors of every
            // subclass, so a positive answer is definite; a negative one
            // is not (a subclass may mix the module in).
            Some(AbsVal::InstanceOf(k)) => match chain_has(k) {
                Some(true) => Some(AbsVal::True),
                _ => self.test_of(recv, class),
            },
            Some(AbsVal::Nil) => {
                chain_has("NilClass").map(|b| if b { AbsVal::True } else { AbsVal::False })
            }
            Some(AbsVal::ClassObj(_)) => None,
            _ => self.test_of(recv, class),
        }
    }

    fn test_of(&self, recv: &Operand, class: &str) -> Option<AbsVal> {
        match recv {
            Operand::Local(l) if !is_temp(l) => Some(AbsVal::Test {
                local: l.clone(),
                class: class.to_string(),
            }),
            _ => None,
        }
    }

    fn abs_of_rvalue(&self, rv: &Rvalue, fact: &FlowFact) -> Option<AbsVal> {
        match rv {
            Rvalue::Use(op) => self.abs_of_operand(op, fact),
            Rvalue::ConstRef(path) => Some(AbsVal::ClassObj(path.join("::"))),
            Rvalue::StrInterp(_) => Some(AbsVal::Klass("String".into())),
            Rvalue::ArrayLit(_) => Some(AbsVal::Klass("Array".into())),
            Rvalue::HashLit(_) => Some(AbsVal::Klass("Hash".into())),
            Rvalue::RangeLit { .. } => Some(AbsVal::Klass("Range".into())),
            Rvalue::Not(op) => match self
                .abs_of_operand(op, fact)
                .as_ref()
                .and_then(AbsVal::truthiness)
            {
                Some(true) => Some(AbsVal::False),
                Some(false) => Some(AbsVal::True),
                None => None,
            },
            Rvalue::Call {
                recv: Some(r),
                name,
                args,
                ..
            } => {
                let recv_abs = self.abs_of_operand(r, fact);
                match name.as_str() {
                    "new" => match recv_abs {
                        Some(AbsVal::ClassObj(k)) => Some(AbsVal::Klass(k)),
                        _ => None,
                    },
                    "is_a?" | "kind_of?" => match args.first() {
                        Some(CallArg::Pos(c)) => match self.abs_of_operand(c, fact) {
                            Some(AbsVal::ClassObj(class)) => {
                                self.eval_is_a(r, recv_abs.as_ref(), &class)
                            }
                            _ => None,
                        },
                        _ => None,
                    },
                    "instance_of?" => match (recv_abs, args.first()) {
                        (Some(AbsVal::Klass(k)), Some(CallArg::Pos(c))) => {
                            match self.abs_of_operand(c, fact) {
                                Some(AbsVal::ClassObj(class)) => Some(if k == class {
                                    AbsVal::True
                                } else {
                                    AbsVal::False
                                }),
                                _ => None,
                            }
                        }
                        _ => None,
                    },
                    "nil?" => match recv_abs.as_ref().map(|a| a == &AbsVal::Nil) {
                        Some(true) => Some(AbsVal::True),
                        Some(false) => Some(AbsVal::False),
                        None => None,
                    },
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

impl Analysis for ForwardFlow<'_> {
    type Fact = FlowFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, _cfg: &MethodCfg) -> FlowFact {
        FlowFact {
            abs: BTreeMap::new(),
            assigned: self.boundary_assigned.clone(),
        }
    }

    fn top(&self, _cfg: &MethodCfg) -> FlowFact {
        FlowFact::default()
    }

    fn join(&self, into: &mut FlowFact, other: &FlowFact) -> bool {
        let mut changed = false;
        // Flat join on abstract values: disagreeing keys go to ⊤ (absent).
        let keys: Vec<String> = into.abs.keys().cloned().collect();
        for k in keys {
            if other.abs.get(&k) != into.abs.get(&k) {
                into.abs.remove(&k);
                changed = true;
            }
        }
        // Union on may-assigned.
        let before = into.assigned.len();
        into.assigned.extend(other.assigned.iter().cloned());
        changed || into.assigned.len() != before
    }

    fn transfer_instr(&self, instr: &Instr, fact: &mut FlowFact) {
        if let InstrKind::Assign { local, rv } = &instr.kind {
            match self.abs_of_rvalue(rv, fact) {
                Some(v) => {
                    fact.abs.insert(local.clone(), v);
                }
                None => {
                    fact.abs.remove(local);
                }
            }
            fact.assigned.insert(local.clone());
        }
    }

    fn transfer_edge(&self, term: &Terminator, is_then: bool, fact: &mut FlowFact) {
        // `is_a?` narrowing: on the then-edge of a branch over a test
        // value, the tested local is an instance of the tested class.
        if let Terminator::Branch {
            cond: Operand::Local(t),
            ..
        } = term
        {
            if is_then {
                if let Some(AbsVal::Test { local, class }) = fact.abs.get(t).cloned() {
                    fact.abs.insert(local, AbsVal::InstanceOf(class));
                }
            }
        }
    }

    fn edge_feasible(&self, term: &Terminator, is_then: bool, fact: &FlowFact) -> bool {
        if let Terminator::Branch { cond, .. } = term {
            if let Some(t) = self
                .abs_of_operand(cond, fact)
                .as_ref()
                .and_then(AbsVal::truthiness)
            {
                return t == is_then;
            }
        }
        true
    }
}

/// Backward liveness: the set of locals whose current value may still be
/// read.
pub struct Liveness;

impl Analysis for Liveness {
    type Fact = BTreeSet<String>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self, _cfg: &MethodCfg) -> BTreeSet<String> {
        BTreeSet::new()
    }

    fn top(&self, _cfg: &MethodCfg) -> BTreeSet<String> {
        BTreeSet::new()
    }

    fn join(&self, into: &mut BTreeSet<String>, other: &BTreeSet<String>) -> bool {
        let before = into.len();
        into.extend(other.iter().cloned());
        into.len() != before
    }

    fn transfer_instr(&self, instr: &Instr, fact: &mut BTreeSet<String>) {
        if let InstrKind::Assign { local, .. } = &instr.kind {
            fact.remove(local);
        }
        instr_each_read(instr, &mut |l| {
            fact.insert(l.to_string());
        });
    }

    fn transfer_term(&self, term: &Terminator, fact: &mut BTreeSet<String>) {
        term_each_read(term, &mut |l| {
            fact.insert(l.to_string());
        });
    }
}

// ---------------------------------------------------------------------------
// Read/write visitors over the IL.

pub fn is_temp(name: &str) -> bool {
    name.starts_with('%')
}

fn operand_read(op: &Operand, f: &mut impl FnMut(&str)) {
    if let Operand::Local(n) = op {
        f(n);
    }
}

fn rvalue_each_read(rv: &Rvalue, f: &mut impl FnMut(&str)) {
    match rv {
        Rvalue::Use(op) | Rvalue::Not(op) | Rvalue::Cast { value: op, .. } => operand_read(op, f),
        Rvalue::IVar(_) | Rvalue::CVar(_) | Rvalue::GVar(_) | Rvalue::ConstRef(_) => {}
        Rvalue::StrInterp(pieces) => {
            for p in pieces {
                if let StrPiece::Dyn(op) = p {
                    operand_read(op, f);
                }
            }
        }
        Rvalue::ArrayLit(ops) => ops.iter().for_each(|o| operand_read(o, f)),
        Rvalue::HashLit(pairs) => {
            for (k, v) in pairs {
                operand_read(k, f);
                operand_read(v, f);
            }
        }
        Rvalue::RangeLit { lo, hi, .. } => {
            operand_read(lo, f);
            operand_read(hi, f);
        }
        Rvalue::Call { recv, args, .. } => {
            if let Some(r) = recv {
                operand_read(r, f);
            }
            for a in args {
                match a {
                    CallArg::Pos(op) | CallArg::Splat(op) | CallArg::BlockPass(op) => {
                        operand_read(op, f)
                    }
                }
            }
        }
        Rvalue::Yield(ops) => ops.iter().for_each(|o| operand_read(o, f)),
        Rvalue::Super { args } => {
            if let Some(ops) = args {
                ops.iter().for_each(|o| operand_read(o, f));
            }
        }
        Rvalue::RescueBind(_) => {}
    }
}

fn instr_each_read(instr: &Instr, f: &mut impl FnMut(&str)) {
    match &instr.kind {
        InstrKind::Assign { rv, .. } => rvalue_each_read(rv, f),
        InstrKind::SetIVar { value, .. }
        | InstrKind::SetCVar { value, .. }
        | InstrKind::SetGVar { value, .. }
        | InstrKind::SetConst { value, .. } => operand_read(value, f),
    }
}

fn term_each_read(term: &Terminator, f: &mut impl FnMut(&str)) {
    match term {
        Terminator::Branch { cond, .. } => operand_read(cond, f),
        Terminator::Return(op) | Terminator::MethodReturn(op) => operand_read(op, f),
        Terminator::Goto(_) => {}
    }
}

/// Locals mentioned (read or written) anywhere in `cfg` *and* its nested
/// block literals.
fn mentions(cfg: &MethodCfg, reads: &mut BTreeSet<String>, writes: &mut BTreeSet<String>) {
    for b in &cfg.blocks {
        for i in &b.instrs {
            if let InstrKind::Assign { local, .. } = &i.kind {
                writes.insert(local.clone());
            }
            instr_each_read(i, &mut |l| {
                reads.insert(l.to_string());
            });
        }
        term_each_read(&b.term, &mut |l| {
            reads.insert(l.to_string());
        });
    }
    for bl in &cfg.block_lits {
        for p in &bl.params {
            writes.insert(p.name.clone());
        }
        mentions(&bl.cfg, reads, writes);
    }
}

/// The if-arm result-propagation artifact the lowering emits into
/// otherwise-unreachable join shims: `%t := other` with a `Use` rvalue.
/// Not user code; never reported.
fn is_artifact(instr: &Instr) -> bool {
    matches!(
        &instr.kind,
        InstrKind::Assign { local, rv: Rvalue::Use(_) } if is_temp(local)
    )
}

/// A call that never returns: code after it in the same block is dead.
fn is_diverging(instr: &Instr) -> bool {
    matches!(
        &instr.kind,
        InstrKind::Assign {
            rv: Rvalue::Call { recv: None, name, .. },
            ..
        } if name == "raise"
    )
}

/// A side-effect-free rvalue: overwriting its result unread is a dead
/// store. Calls (even pure-looking ones) are excluded — the *local* may
/// be dead but the call still runs.
fn is_pure(rv: &Rvalue) -> bool {
    !matches!(
        rv,
        Rvalue::Call { .. }
            | Rvalue::Yield(_)
            | Rvalue::Super { .. }
            | Rvalue::Cast { .. }
            | Rvalue::RescueBind(_)
    )
}

// ---------------------------------------------------------------------------
// The pass driver.

fn warn(
    ctx: &PassCtx<'_>,
    code: DiagCode,
    pass: &'static str,
    message: String,
    span: Span,
) -> TypeDiagnostic {
    let d = TypeDiagnostic::warning(code, message, span, BlameTarget::Lint { pass });
    match ctx.method {
        Some(k) => d.with_method(k),
        None => d,
    }
}

/// Runs every per-method pass over one CFG (recursing into block
/// literals) and returns the warnings.
pub fn analyze_cfg(ctx: &PassCtx<'_>, cfg: &MethodCfg) -> Vec<TypeDiagnostic> {
    let params: BTreeSet<String> = cfg.params.iter().map(|p| p.name.clone()).collect();
    let mut out = Vec::new();
    analyze_cfg_inner(ctx, cfg, params, &BTreeSet::new(), &mut out);
    let mut seen = BTreeSet::new();
    out.retain(|d| {
        seen.insert((
            d.code,
            d.span.file.0,
            d.span.lo,
            d.span.hi,
            d.message.clone(),
        ))
    });
    out
}

fn analyze_cfg_inner(
    ctx: &PassCtx<'_>,
    cfg: &MethodCfg,
    boundary_assigned: BTreeSet<String>,
    // Enclosing-scope locals (when this CFG is a block literal): stores to
    // them feed the enclosing method, so they are exempt from the
    // dead-store/unused passes.
    outer: &BTreeSet<String>,
    out: &mut Vec<TypeDiagnostic>,
) {
    let flow = ForwardFlow {
        view: ctx.view,
        boundary_assigned: boundary_assigned.clone(),
    };
    let sol = solve(&flow, cfg);

    // --- HB1001: use-before-assign -------------------------------------
    let mut reported_uba: BTreeSet<String> = BTreeSet::new();
    for (bi, block) in cfg.blocks.iter().enumerate() {
        if !sol.reached[bi] {
            continue;
        }
        let mut fact = sol.entry[bi].clone();
        for instr in &block.instrs {
            if !is_artifact(instr) && ctx.view.in_warn_scope(instr.span) {
                instr_each_read(instr, &mut |l| {
                    if !is_temp(l)
                        && !fact.assigned.contains(l)
                        && reported_uba.insert(l.to_string())
                    {
                        out.push(warn(
                            ctx,
                            DiagCode::UseBeforeAssign,
                            "use-before-assign",
                            format!(
                                "local `{l}` is read before any assignment can reach it in {}",
                                ctx.label
                            ),
                            instr.span,
                        ));
                    }
                });
            }
            flow.transfer_instr(instr, &mut fact);
        }
    }

    // --- HB1002: unreachable code --------------------------------------
    let preds = crate::dataflow::predecessors(cfg);
    let mut dead_spans: Vec<Span> = Vec::new();
    for (bi, block) in cfg.blocks.iter().enumerate() {
        if sol.reached[bi] {
            // Reached block: anything after a diverging call is dead.
            let mut diverged = false;
            for instr in &block.instrs {
                if diverged && !is_artifact(instr) {
                    dead_spans.push(instr.span);
                    break;
                }
                if is_diverging(instr) {
                    diverged = true;
                }
            }
            continue;
        }
        // Report only the *entry* of a dead region: a block with no
        // predecessors at all (the fresh block the lowering opens after a
        // `return`), or one fed solely by infeasible edges from reached
        // blocks. Dead blocks dominated by other dead blocks stay quiet.
        let entry_of_region =
            preds[bi].is_empty() || preds[bi].iter().any(|p| sol.reached[p.0 as usize]);
        if !entry_of_region || BlockId(bi as u32) == cfg.entry {
            continue;
        }
        if let Some(instr) = block.instrs.iter().find(|i| !is_artifact(i)) {
            dead_spans.push(instr.span);
        }
    }
    dead_spans.sort_by_key(|s| (s.file.0, s.lo, s.hi));
    dead_spans.dedup();
    for span in dead_spans {
        if ctx.view.in_warn_scope(span) {
            out.push(warn(
                ctx,
                DiagCode::UnreachableCode,
                "unreachable",
                format!("unreachable code in {}", ctx.label),
                span,
            ));
        }
    }

    // --- HB1003/HB1004: dead stores and unused locals -------------------
    // Locals visible to closures escape the straight-line analysis.
    let mut escape_reads = BTreeSet::new();
    let mut escaped = BTreeSet::new();
    for bl in &cfg.block_lits {
        mentions(&bl.cfg, &mut escape_reads, &mut escaped);
    }
    escaped.extend(escape_reads.iter().cloned());

    let params: BTreeSet<String> = cfg.params.iter().map(|p| p.name.clone()).collect();
    let eligible = |l: &str| {
        !is_temp(l)
            && !l.starts_with('_')
            && !params.contains(l)
            && !escaped.contains(l)
            && !outer.contains(l)
    };

    // Whole-method read set and rescue-bound exemptions for HB1004.
    let mut all_reads = escape_reads;
    let mut rescue_bound = BTreeSet::new();
    let mut first_write: BTreeMap<String, Span> = BTreeMap::new();
    for block in &cfg.blocks {
        for instr in &block.instrs {
            instr_each_read(instr, &mut |l| {
                all_reads.insert(l.to_string());
            });
            if let InstrKind::Assign { local, rv } = &instr.kind {
                if matches!(rv, Rvalue::RescueBind(_)) {
                    rescue_bound.insert(local.clone());
                }
                first_write
                    .entry(local.clone())
                    .and_modify(|s| {
                        if (instr.span.file.0, instr.span.lo) < (s.file.0, s.lo) {
                            *s = instr.span;
                        }
                    })
                    .or_insert(instr.span);
            }
        }
        term_each_read(&block.term, &mut |l| {
            all_reads.insert(l.to_string());
        });
    }
    let mut unused: BTreeSet<String> = BTreeSet::new();
    for (local, span) in &first_write {
        if eligible(local)
            && !all_reads.contains(local)
            && !rescue_bound.contains(local)
            && ctx.view.in_warn_scope(*span)
        {
            unused.insert(local.clone());
            out.push(warn(
                ctx,
                DiagCode::UnusedLocal,
                "unused-local",
                format!(
                    "local `{local}` is assigned but never read in {}",
                    ctx.label
                ),
                *span,
            ));
        }
    }

    let live = solve(&Liveness, cfg);
    for (bi, block) in cfg.blocks.iter().enumerate() {
        if !sol.reached[bi] {
            continue; // already reported as unreachable
        }
        // `exit` in a backward solution is the fact *before* the
        // terminator's own reads; apply them first.
        let mut fact = live.exit[bi].clone();
        Liveness.transfer_term(&block.term, &mut fact);
        for instr in block.instrs.iter().rev() {
            if let InstrKind::Assign { local, rv } = &instr.kind {
                let was_live = fact.contains(local);
                if !was_live
                    && eligible(local)
                    && is_pure(rv)
                    && !unused.contains(local)
                    && all_reads.contains(local)
                    && ctx.view.in_warn_scope(instr.span)
                {
                    out.push(warn(
                        ctx,
                        DiagCode::DeadStore,
                        "dead-store",
                        format!(
                            "value assigned to `{local}` is never read (dead store) in {}",
                            ctx.label
                        ),
                        instr.span,
                    ));
                }
            }
            Liveness.transfer_instr(instr, &mut fact);
        }
    }

    // --- Recurse into block literals ------------------------------------
    if !cfg.block_lits.is_empty() {
        // Closures see every enclosing local; seed them all as assigned so
        // HB1001 stays zero-false-positive inside blocks, and carry them
        // as `outer` so stores to them are never "dead" in the closure.
        let mut enclosing_reads = BTreeSet::new();
        let mut enclosing = boundary_assigned;
        mentions(cfg, &mut enclosing_reads, &mut enclosing);
        enclosing.extend(outer.iter().cloned());
        for bl in &cfg.block_lits {
            let mut seed = enclosing.clone();
            seed.extend(bl.params.iter().map(|p| p.name.clone()));
            analyze_cfg_inner(ctx, &bl.cfg, seed, &enclosing, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ProgramView;
    use hb_il::lower_method;
    use hb_syntax::{parse_program, ExprKind, FileId};

    fn analyze_src(src: &str) -> Vec<TypeDiagnostic> {
        let p = parse_program(src, "t.rb").unwrap();
        let def = p
            .body
            .iter()
            .find_map(|e| match &e.kind {
                ExprKind::MethodDef(d) => Some(d.clone()),
                ExprKind::ClassDef { body, .. } => body.iter().find_map(|e| match &e.kind {
                    ExprKind::MethodDef(d) => Some(d.clone()),
                    _ => None,
                }),
                _ => None,
            })
            .expect("no def");
        let cfg = lower_method(&def);
        let mut view = ProgramView::default();
        view.warn_files.insert(FileId(0));
        view.chains
            .insert("User".into(), vec!["User".into(), "Object".into()]);
        view.chains
            .insert("String".into(), vec!["String".into(), "Object".into()]);
        let ctx = PassCtx {
            view: &view,
            label: "t#m".into(),
            method: None,
        };
        analyze_cfg(&ctx, &cfg)
    }

    fn codes(diags: &[TypeDiagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn use_before_assign_on_self_increment() {
        let d = analyze_src("def m\n x = x + 1\n x\nend");
        assert!(codes(&d).contains(&"HB1001"), "{:?}", codes(&d));
    }

    #[test]
    fn no_uba_for_branch_assigned_local() {
        let d = analyze_src("def m(c)\n if c\n  x = 1\n end\n x\nend");
        assert!(!codes(&d).contains(&"HB1001"), "{:?}", codes(&d));
    }

    #[test]
    fn unreachable_after_return() {
        let d = analyze_src("def m\n return 1\n puts 2\nend");
        assert_eq!(codes(&d), vec!["HB1002"]);
    }

    #[test]
    fn unreachable_after_raise_same_block() {
        let d = analyze_src("def m\n raise \"boom\"\n puts 2\nend");
        assert!(codes(&d).contains(&"HB1002"), "{:?}", codes(&d));
    }

    #[test]
    fn unreachable_under_constant_false_branch() {
        let d = analyze_src("def m\n if false\n  puts 1\n end\n 2\nend");
        assert!(codes(&d).contains(&"HB1002"), "{:?}", codes(&d));
    }

    #[test]
    fn narrowing_kills_impossible_is_a_branch() {
        let d = analyze_src("def m\n u = User.new\n if u.is_a?(String)\n  puts 1\n end\n u\nend");
        assert!(codes(&d).contains(&"HB1002"), "{:?}", codes(&d));
    }

    #[test]
    fn narrowing_keeps_possible_branch() {
        let d = analyze_src("def m(u)\n if u.is_a?(User)\n  puts 1\n end\n u\nend");
        assert!(codes(&d).is_empty(), "{:?}", codes(&d));
    }

    #[test]
    fn dead_store_reported_once() {
        let d = analyze_src("def m\n x = 1\n x = 2\n x\nend");
        assert_eq!(codes(&d), vec!["HB1003"]);
    }

    #[test]
    fn unused_local_reported() {
        let d = analyze_src("def m\n x = 1\n 2\nend");
        assert_eq!(codes(&d), vec!["HB1004"]);
    }

    #[test]
    fn underscore_and_params_exempt() {
        let d = analyze_src("def m(a)\n _ignored = 1\n 2\nend");
        assert!(codes(&d).is_empty(), "{:?}", codes(&d));
    }

    #[test]
    fn block_captured_locals_not_dead() {
        let d =
            analyze_src("def m(xs)\n acc = 0\n xs.each do |x|\n  acc = acc + x\n end\n acc\nend");
        assert!(codes(&d).is_empty(), "{:?}", codes(&d));
    }

    #[test]
    fn clean_method_is_quiet() {
        let d = analyze_src("def m(a, b)\n c = a + b\n c * 2\nend");
        assert!(codes(&d).is_empty(), "{:?}", codes(&d));
    }
}
