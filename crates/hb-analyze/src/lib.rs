//! # hb-analyze — whole-program static analysis for Hummingbird
//!
//! A lint suite over the [`hb_il`] CFG IL, complementing the engine's
//! just-in-time type checker with classic dataflow analyses the checker
//! itself does not run:
//!
//! | code   | pass                | what it reports                                   |
//! |--------|---------------------|---------------------------------------------------|
//! | HB1001 | use-before-assign   | a local read before any assignment can reach it   |
//! | HB1002 | unreachable-code    | code after `return`/`raise`, branches dead under narrowing |
//! | HB1003 | dead-store          | a pure assignment whose value is never read       |
//! | HB1004 | unused-local        | a local assigned but never read anywhere          |
//! | HB1005 | stale-annotation    | a `check`-annotated method no entry point reaches |
//! | HB1006 | dyn-check-residue   | a checked method reached from unchecked callers: its guarded prologue survives elision |
//! | HB2001 | inferable-signature | a candidate signature the checker refuted, with the ready-to-paste `type` line |
//!
//! The crate has four layers:
//!
//! 1. [`dataflow`] — the generic worklist framework (`Analysis` trait,
//!    forward/backward solve, per-edge narrowing and feasibility).
//! 2. [`passes`] — the per-method passes (HB1001–HB1004), built on one
//!    forward flow analysis (definite assignment × a flat abstract-value
//!    lattice with `is_a?` narrowing) and one backward liveness analysis.
//! 3. [`callgraph`] — the whole-program layer (HB1005–HB1006): a
//!    call-graph builder that replays the flow facts to type receivers,
//!    reachability from load-time roots, and the dynamic-check-residue
//!    auditor whose [`callgraph::ResidueSummary`] cross-checks the
//!    runtime's `fast_entries_patched` statistic.
//! 4. [`infer`] — candidate signature generation for checker-verified
//!    whole-program inference: parameter types from call-graph in-edge
//!    argument abstractions, return types from the method's own
//!    dataflow. Candidates are only *plausible* — the embedding layer
//!    verifies each through the real checker against a hypothesis
//!    world, adopts survivors as `Inferred` annotations, and reports
//!    refuted ones as HB2001.
//!
//! The crate is deliberately runtime-free: it consumes a
//! [`ProgramView`] — methods, roots, ancestor chains and annotations —
//! that the embedding layer distills from the live interpreter, so
//! resolution matches the engine (including `define_method`-created
//! methods) without this crate depending on it. Per-unit analysis
//! ([`analyze_unit`]) is a pure function of the view, so callers may fan
//! units across worker threads and sort the harvest; results are
//! deterministic by construction.

pub mod callgraph;
pub mod dataflow;
pub mod infer;
pub mod passes;
pub mod roots;
pub mod view;

pub use callgraph::{
    analyze_call_graph, build_call_graph, CallGraph, Caller, Edge, ResidueSummary,
};
pub use dataflow::{predecessors, solve, Analysis, BlockStates, Direction};
pub use infer::{infer_candidates, SigCandidate};
pub use passes::{analyze_cfg, PassCtx};
pub use roots::collect_roots;
pub use view::{AnnotationUnit, MethodUnit, ProgramView, RootUnit};

use hb_intern::MethodKey;
use hb_syntax::TypeDiagnostic;

/// Runs the per-method passes (HB1001–HB1004) over one unit — a method or
/// a root. Pure: safe to call from any thread with a shared view.
pub fn analyze_unit(
    view: &ProgramView,
    label: String,
    method: Option<MethodKey>,
    cfg: &hb_il::MethodCfg,
) -> Vec<TypeDiagnostic> {
    let ctx = PassCtx {
        view,
        label,
        method,
    };
    analyze_cfg(&ctx, cfg)
}
