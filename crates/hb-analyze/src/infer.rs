//! Candidate signature generation for checker-verified whole-program
//! type inference — the static half of `Hummingbird::infer`.
//!
//! For every *reachable, unannotated, app-scope* method the pass solves a
//! small constraint system to a candidate `type` signature:
//!
//! * **parameter types** come from the call graph: each in-edge carries
//!   the abstract values ([`AbsVal`]) of its positional arguments as the
//!   forward flow analysis knew them at the call site, and the candidate
//!   parameter type at position `i` is the *union* over all in-edges.
//!   An edge with an opaque call shape (splat, reflective dispatch,
//!   `super`), a mismatched positional arity, or an untypable argument
//!   widens the affected positions to `%any` — never guesses.
//! * **the return type** comes from the method's own dataflow: the join
//!   of the abstract values flowing into its `return` terminators, `%any`
//!   when any return site is untypable.
//!
//! Nothing here is trusted: a candidate is only *plausible*. The dynamic
//! half (`core`'s adoption path) runs every candidate through the real
//! checker (`hb_check::verify_candidate`) against a hypothesis world and
//! adopts only proven signatures — soundness is inherited from the
//! checker, never asserted by these heuristics.
//!
//! Abstract values map to checker types the way the *runtime* classes
//! them: integer literals are `Fixnum` (every runtime integer is), which
//! also matches the only annotated arithmetic surface in the corelib.

use crate::callgraph::{CallGraph, Caller};
use crate::dataflow::{solve, Analysis};
use crate::passes::{AbsVal, ForwardFlow};
use crate::view::ProgramView;
use hb_il::{IlParamKind, MethodCfg, Terminator};
use hb_intern::MethodKey;
use hb_syntax::Span;
use hb_types::{MethodType, Type};
use std::collections::BTreeMap;

/// One candidate signature: plausible by dataflow, not yet verified.
#[derive(Debug, Clone)]
pub struct SigCandidate {
    pub key: MethodKey,
    /// The candidate method type (required positional parameters only).
    pub mt: MethodType,
    /// The method definition's span (where a diagnostic/adoption points).
    pub span: Span,
}

impl SigCandidate {
    /// The candidate as a ready-to-paste annotation line:
    /// `type Talk, "venue", "(String) -> String"`.
    pub fn annotation_line(&self) -> String {
        let target = if self.key.class_level {
            format!("{}, :self, \"{}\"", self.key.class, self.key.method)
        } else {
            format!("{}, \"{}\"", self.key.class, self.key.method)
        };
        format!("type {target}, \"{}\"", self.mt)
    }
}

/// Maps an abstract value to the checker type the runtime would give the
/// same value. `None` means the lattice point carries no type information
/// (`Truthy`, `is_a?` test results, class objects).
pub fn type_of_abs(a: &AbsVal) -> Option<Type> {
    match a {
        AbsVal::True | AbsVal::False => Some(Type::Bool),
        AbsVal::Nil => Some(Type::Nil),
        // The flow lattice files integer literals under "Integer", but
        // every runtime integer is a Fixnum instance and the corelib's
        // arithmetic annotations live on Fixnum — align with the checker.
        AbsVal::Klass(k) | AbsVal::InstanceOf(k) => Some(Type::nominal(match k.as_str() {
            "Integer" => "Fixnum",
            other => other,
        })),
        AbsVal::Truthy | AbsVal::ClassObj(_) | AbsVal::Test { .. } => None,
    }
}

/// True when `cfg` (or any nested block literal) contains an explicit
/// `return` out of the enclosing method — those CFGs' return types cannot
/// be read off the top-level terminators alone.
fn block_lits_method_return(cfg: &MethodCfg) -> bool {
    cfg.block_lits.iter().any(|bl| {
        bl.cfg
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::MethodReturn(_)))
            || block_lits_method_return(&bl.cfg)
    })
}

/// Infers the method's return type from its own dataflow: the union of
/// the abstract values at every reachable `return` terminator, `%any`
/// when any of them is untypable (or when a nested block literal returns
/// out of the method).
fn infer_ret(view: &ProgramView, cfg: &MethodCfg) -> Type {
    if block_lits_method_return(cfg) {
        return Type::Any;
    }
    let flow = ForwardFlow {
        view,
        boundary_assigned: cfg.params.iter().map(|p| p.name.clone()).collect(),
    };
    let sol = solve(&flow, cfg);
    let mut parts: Vec<Type> = Vec::new();
    for (bi, block) in cfg.blocks.iter().enumerate() {
        if !sol.reached[bi] {
            continue;
        }
        let (Terminator::Return(op) | Terminator::MethodReturn(op)) = &block.term else {
            continue;
        };
        let mut fact = sol.entry[bi].clone();
        for instr in &block.instrs {
            flow.transfer_instr(instr, &mut fact);
        }
        match flow
            .abs_of_operand(op, &fact)
            .as_ref()
            .and_then(type_of_abs)
        {
            Some(t) => parts.push(t),
            None => return Type::Any,
        }
    }
    if parts.is_empty() {
        Type::Any
    } else {
        Type::union_of(parts)
    }
}

/// Generates candidate signatures for every reachable, unannotated,
/// app-scope method whose parameters are plain required positionals.
/// Deterministic: candidates come out sorted by method key.
pub fn infer_candidates(view: &ProgramView, graph: &CallGraph) -> Vec<SigCandidate> {
    // In-edge argument abstractions per callee (live callers only).
    let mut in_args: BTreeMap<MethodKey, Vec<&Option<Vec<Option<AbsVal>>>>> = BTreeMap::new();
    for e in &graph.edges {
        // A self-recursive edge is excluded from parameter accumulation:
        // the candidate hypothesis already covers it, and verification
        // checks the recursive call against the hypothesis world — the
        // fixpoint the overlay exists for. (Recursive argument values
        // are rarely typable by the flow lattice anyway; counting them
        // would only poison the position to `%any`.)
        let caller_live = match e.caller {
            Caller::Root(_) => true,
            Caller::Method(k) if k == e.callee => false,
            Caller::Method(k) => graph.reachable.contains(&k),
        };
        if caller_live {
            in_args.entry(e.callee).or_default().push(&e.args);
        }
    }

    let mut out = Vec::new();
    for m in &view.methods {
        if !graph.reachable.contains(&m.key) {
            continue;
        }
        // Any governing annotation — even `check: false` (trusted
        // library) — disqualifies: inference fills gaps, never overrides
        // what the program declared. The exception is an annotation a
        // *previous inference run* produced: those are re-derived, so a
        // reload that changed the body converges on a fresh signature
        // instead of pinning the method to a stale inferred one.
        if view
            .resolve_annotation(
                m.key.class.as_str(),
                m.key.class_level,
                m.key.method.as_str(),
            )
            .is_some_and(|(_, a)| !a.inferred)
        {
            continue;
        }
        // Only app code: substrate methods (<corelib>, <rails/…>) are
        // unannotated by design.
        if !view.in_warn_scope(m.cfg.span) {
            continue;
        }
        // Optional/rest/block parameters need richer signature shapes
        // than the candidate solver produces; skip them.
        if m.cfg.params.iter().any(|p| p.kind != IlParamKind::Required) {
            continue;
        }
        let n = m.cfg.params.len();
        // Per-position accumulation: union of typed in-flows, poisoned to
        // `%any` by any opaque edge, arity mismatch or untyped argument.
        let mut parts: Vec<Vec<Type>> = vec![Vec::new(); n];
        let mut poisoned: Vec<bool> = vec![false; n];
        for edge_args in in_args.get(&m.key).map(Vec::as_slice).unwrap_or(&[]) {
            match edge_args {
                Some(v) if v.len() == n => {
                    for (i, a) in v.iter().enumerate() {
                        match a.as_ref().and_then(type_of_abs) {
                            Some(t) => {
                                if !parts[i].contains(&t) {
                                    parts[i].push(t);
                                }
                            }
                            None => poisoned[i] = true,
                        }
                    }
                }
                _ => poisoned.iter_mut().for_each(|p| *p = true),
            }
        }
        let params: Vec<Type> = parts
            .into_iter()
            .zip(&poisoned)
            .map(|(mut p, &dirty)| {
                if dirty || p.is_empty() {
                    Type::Any
                } else {
                    // Stable candidate text regardless of edge order.
                    p.sort_by_key(|t| t.to_string());
                    Type::union_of(p)
                }
            })
            .collect();
        let ret = infer_ret(view, &m.cfg);
        out.push(SigCandidate {
            key: m.key,
            mt: MethodType::simple(params, ret),
            span: m.cfg.span,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build_call_graph;
    use crate::roots::collect_roots;
    use crate::view::{AnnotationUnit, MethodUnit};
    use hb_il::{collect_method_defs, lower_method};
    use hb_syntax::{parse_program, FileId, SourceMap};
    use std::sync::Arc;

    fn view_of(src: &str, annotated: &[(&str, &str)]) -> ProgramView {
        let mut sm = SourceMap::new();
        sm.add_file("t.rb", src);
        let p = parse_program(src, "t.rb").unwrap();
        let mut view = ProgramView::default();
        view.warn_files.insert(FileId(0));
        for d in collect_method_defs(&p) {
            let owner = d.owner.clone();
            view.chains
                .entry(owner.clone())
                .or_insert_with(|| vec![owner.clone(), "Object".into()]);
            let key = if d.self_method {
                MethodKey::class_level(&owner, &d.def.name)
            } else {
                MethodKey::instance(&owner, &d.def.name)
            };
            view.methods.push(MethodUnit {
                key,
                cfg: Arc::new(lower_method(&d.def)),
            });
        }
        view.chains
            .entry("Object".into())
            .or_insert_with(|| vec!["Object".into()]);
        for (class, method) in annotated {
            view.annotations.insert(
                MethodKey::instance(class, method),
                AnnotationUnit {
                    span: Span::dummy(),
                    check: true,
                    always_dyn_check: false,
                    inferred: false,
                },
            );
        }
        view.roots = collect_roots(&p, "t.rb");
        view
    }

    fn candidate_of(view: &ProgramView, class: &str, method: &str) -> Option<SigCandidate> {
        let graph = build_call_graph(view);
        infer_candidates(view, &graph)
            .into_iter()
            .find(|c| c.key == MethodKey::instance(class, method))
    }

    #[test]
    fn literal_args_and_ret_infer_exact_types() {
        let src = "
class A
  def bump(n)
    n
  end
end
A.new.bump(1)
";
        let c = candidate_of(&view_of(src, &[]), "A", "bump").unwrap();
        assert_eq!(c.mt.to_string(), "(Fixnum) -> %any");
    }

    #[test]
    fn literal_return_infers_ret_type() {
        let src = "
class A
  def tag(s)
    \"x\"
  end
end
A.new.tag(\"y\")
";
        let c = candidate_of(&view_of(src, &[]), "A", "tag").unwrap();
        assert_eq!(c.mt.to_string(), "(String) -> String");
    }

    #[test]
    fn disagreeing_callers_union_the_parameter() {
        let src = "
class A
  def show(v)
    \"s\"
  end
end
a = A.new
a.show(1)
a.show(\"two\")
";
        let c = candidate_of(&view_of(src, &[]), "A", "show").unwrap();
        assert_eq!(c.mt.to_string(), "(Fixnum or String) -> String");
    }

    #[test]
    fn opaque_edge_widens_to_any() {
        let src = "
class A
  def show(v)
    \"s\"
  end
end
a = A.new
a.show(*[1])
";
        let c = candidate_of(&view_of(src, &[]), "A", "show").unwrap();
        assert_eq!(c.mt.to_string(), "(%any) -> String");
    }

    #[test]
    fn annotated_methods_are_skipped() {
        let src = "
class A
  def bump(n)
    n
  end
end
A.new.bump(1)
";
        let view = view_of(src, &[("A", "bump")]);
        assert!(candidate_of(&view, "A", "bump").is_none());
    }

    #[test]
    fn unreachable_methods_are_skipped() {
        let src = "
class A
  def orphan(n)
    n
  end
end
A.new
";
        let view = view_of(src, &[]);
        assert!(candidate_of(&view, "A", "orphan").is_none());
    }

    #[test]
    fn annotation_line_renders_ready_to_paste() {
        let src = "
class A
  def tag(s)
    \"x\"
  end
end
A.new.tag(\"y\")
";
        let c = candidate_of(&view_of(src, &[]), "A", "tag").unwrap();
        assert_eq!(
            c.annotation_line(),
            "type A, \"tag\", \"(String) -> String\""
        );
    }
}
